"""The policy registry: resolution, aliases, plugins, parallel workers.

The headline regression here is the one the registry was built to fix:
a *custom* policy registered by user code used to be invisible to the
parallel sweep engine (``run_flow_sweep(jobs=2)``), because worker
processes resolved policies against a static dict baked into
``repro.core.policy``.  Now tasks carry registry names — qualified with
the registering module for plugins — and a worker resolves them through
the same registry the parent used.
"""

import pytest

from repro.core import CrossroadsIM, IMConfig
from repro.core.registry import (
    PolicySpec,
    available_policies,
    extension_policies,
    iter_policies,
    normalize_policy,
    policy,
    portable_name,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.core.scheduler import ConflictScheduler
from repro.sim.flowsweep import run_flow, run_flow_sweep
from repro.vehicle import CrossroadsVehicle, VtimVehicle


def _build_toy_im(env, radio, geometry, conflicts=None, config=None,
                  compute=None, aim_config=None):
    """A stock Crossroads IM under a toy plugin name."""
    scheduler = ConflictScheduler(conflicts, v_min=config.v_min)
    return CrossroadsIM(env, radio, scheduler, config=config, compute=compute)


@pytest.fixture
def toy_policy():
    """Register a toy plugin policy for the duration of one test."""
    spec = register_policy(
        "toy-crossroads",
        _build_toy_im,
        CrossroadsVehicle,
        aliases=("toy",),
        extension=True,
        description="Stock Crossroads under a plugin name (test fixture).",
        provider=__name__,
    )
    yield spec
    unregister_policy("toy-crossroads")


class TestRegistry:
    def test_builtins_registered(self):
        assert available_policies() == ("vt-im", "crossroads", "aim")
        assert "batch-crossroads" in extension_policies()
        names = [spec.name for spec in iter_policies()]
        assert names[:3] == ["vt-im", "crossroads", "aim"]

    def test_alias_resolution(self):
        assert normalize_policy("VTIM") == "vt-im"
        assert normalize_policy("qb-im") == "aim"
        assert normalize_policy("Batch_Crossroads") == "batch-crossroads"
        with pytest.raises(ValueError):
            normalize_policy("nonsense")

    def test_resolve_accepts_spec_and_alias(self, toy_policy):
        assert resolve_policy(toy_policy) is toy_policy
        assert resolve_policy("toy") is toy_policy
        assert resolve_policy("TOY-crossroads") is toy_policy

    def test_duplicate_name_rejected(self, toy_policy):
        with pytest.raises(ValueError, match="already registered"):
            register_policy(
                "toy-crossroads", _build_toy_im, CrossroadsVehicle,
                provider="somewhere.else",
            )

    def test_reimport_same_provider_is_idempotent(self, toy_policy):
        again = register_policy(
            "toy-crossroads", _build_toy_im, CrossroadsVehicle,
            aliases=("toy",), extension=True, provider=__name__,
        )
        assert again is toy_policy

    def test_alias_collision_rejected(self, toy_policy):
        with pytest.raises(ValueError, match="alias"):
            register_policy(
                "other-policy", _build_toy_im, CrossroadsVehicle,
                aliases=("toy",), provider=__name__,
            )
        unregister_policy("other-policy")  # no-op; partial state guard

    def test_portable_names(self, toy_policy):
        # Built-ins resolve anywhere by plain name; plugins qualify.
        assert portable_name("crossroads") == "crossroads"
        assert portable_name("toy") == f"{__name__}:toy-crossroads"

    def test_qualified_name_resolves(self, toy_policy):
        spec = resolve_policy(f"{__name__}:toy-crossroads")
        assert spec is toy_policy

    def test_decorator_registration(self):
        @policy("decorated-toy", vehicle_cls=VtimVehicle,
                extension=True, provider=__name__)
        def build(env, radio, geometry, conflicts=None, config=None,
                  compute=None, aim_config=None):
            scheduler = ConflictScheduler(conflicts, v_min=config.v_min)
            return CrossroadsIM(env, radio, scheduler, config=config,
                                compute=compute)

        try:
            spec = resolve_policy("decorated-toy")
            assert spec.im_builder is build
            assert spec.vehicle_cls is VtimVehicle
        finally:
            unregister_policy("decorated-toy")

    def test_spec_doc_fallback(self):
        spec = PolicySpec("x", _build_toy_im, CrossroadsVehicle)
        assert spec.doc.startswith("A stock Crossroads IM")


class TestCustomPolicyEndToEnd:
    """A registered plugin runs everywhere the built-ins do."""

    def test_runs_in_world(self, toy_policy):
        point = run_flow("toy-crossroads", 0.3, n_cars=6, seed=5)
        assert point.result.policy == "toy-crossroads"
        assert point.result.safe
        # Identical machinery to stock Crossroads => identical outcome.
        stock = run_flow("crossroads", 0.3, n_cars=6, seed=5)
        assert point.result.summary() == stock.result.summary()

    def test_parallel_sweep_resolves_custom_policy(self, toy_policy):
        """Regression: plugin policies used to crash jobs>1 sweeps."""
        flows = (0.3, 0.5)
        parallel = run_flow_sweep(
            policies=["toy-crossroads"], flow_rates=flows,
            n_cars=6, seed=5, jobs=2,
        )
        serial = run_flow_sweep(
            policies=["toy-crossroads"], flow_rates=flows,
            n_cars=6, seed=5, jobs=1,
        )
        assert set(parallel) == {"toy-crossroads"}
        par_points = parallel["toy-crossroads"]
        ser_points = serial["toy-crossroads"]
        assert [p.flow_rate for p in par_points] == list(flows)
        for par, ser in zip(par_points, ser_points):
            assert par.result.summary() == ser.result.summary()

    def test_mixed_builtin_and_plugin_sweep(self, toy_policy):
        sweep = run_flow_sweep(
            policies=["crossroads", "toy"], flow_rates=(0.4,),
            n_cars=5, seed=9, jobs=2,
        )
        assert set(sweep) == {"crossroads", "toy-crossroads"}

    def test_make_im_config_default(self, toy_policy):
        # make_im still builds a default IMConfig and conflict table.
        from repro.core import make_im
        from repro.des import Environment
        from repro.geometry import IntersectionGeometry
        from repro.network.channel import Channel

        env = Environment()
        channel = Channel(env)
        im = make_im("toy", env, channel, IntersectionGeometry())
        assert isinstance(im, CrossroadsIM)
        assert isinstance(im.config, IMConfig)
