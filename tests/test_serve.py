"""Serve-mode subsystem tests: SocketTransport accounting, detach
semantics (both transports), in-process server transactions, overload
shedding, wire-error hardening and the HTTP ``/metrics`` endpoint.

Everything here runs on the in-process queue pipe or localhost TCP —
no external network, sub-second wall time per test (the DES behind the
bridge still does all the timekeeping, scaled up).
"""

import asyncio

import pytest

from repro.des import Environment
from repro.geometry.layout import Approach, Movement, Turn
from repro.network.channel import Channel
from repro.network.messages import (
    Ack,
    AimReject,
    CrossingRequest,
    CrossroadsCommand,
    ExitNotification,
    SyncRequest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import parse_prometheus, to_prometheus
from repro.serve import ImServer, ServeClient, ServeConfig, SocketTransport
from repro.vehicle.spec import VehicleInfo, VehicleSpec


def _request(sender, index=0, tt=1.0):
    return CrossingRequest(
        sender=sender,
        receiver="IM",
        tt=tt,
        dt=6.0,
        vc=2.0,
        vehicle_info=VehicleInfo(
            vehicle_id=index,
            spec=VehicleSpec(),
            movement=Movement(
                entry=(
                    Approach.NORTH, Approach.EAST,
                    Approach.SOUTH, Approach.WEST,
                )[index % 4],
                turn=Turn.STRAIGHT,
            ),
        ),
    )


class TestSocketTransport:
    def test_local_delivery_and_accounting(self):
        env = Environment()
        transport = SocketTransport(env)
        radio = transport.attach("IM")
        message = Ack(sender="V0", receiver="IM", acked_seq=1)
        transport.transmit(message)
        assert radio.inbox.items == [message]
        assert transport.stats.sent == 1
        assert transport.stats.delivered == 1
        assert transport.stats.by_type.get("Ack") == 1

    def test_duplicate_dropped_by_radio(self):
        env = Environment()
        transport = SocketTransport(env)
        transport.attach("IM")
        message = Ack(sender="V0", receiver="IM", acked_seq=1)
        transport.transmit(message)
        transport.transmit(message)  # same seq: radio dedup
        assert transport.stats.delivered == 1
        assert transport.stats.dupes_by_endpoint.get("IM") == 1

    def test_detach_never_raises_and_counts_no_route(self):
        env = Environment()
        transport = SocketTransport(env)
        transport.attach("IM")
        transport.detach("IM")
        transport.detach("IM")  # idempotent
        transport.transmit(Ack(sender="V0", receiver="IM", acked_seq=1))
        assert transport.stats.lost == 1
        assert transport.stats.by_reason.get("no_route") == 1

    def test_route_carries_non_local_traffic(self):
        env = Environment()
        transport = SocketTransport(env)
        shipped = []
        transport.register_route("V7", shipped.append)
        message = Ack(sender="IM", receiver="V7", acked_seq=3)
        transport.transmit(message)
        assert shipped == [message]
        assert transport.stats.delivered == 1
        transport.unregister_route("V7")
        transport.transmit(Ack(sender="IM", receiver="V7", acked_seq=4))
        assert transport.stats.by_reason.get("no_route") == 1
        assert transport.routes() == 0

    def test_deliver_local_and_drop_accounting(self):
        env = Environment()
        metrics = MetricsRegistry(bucket_dt=1.0)
        transport = SocketTransport(env, metrics=metrics)
        transport.attach("IM")
        transport.deliver_local(_request("V0"))
        transport.deliver_local(Ack(sender="x", receiver="gone", acked_seq=1))
        transport.drop(_request("V1", index=1), "overload")
        assert transport.stats.sent == 3
        assert transport.stats.delivered == 1
        assert transport.stats.by_reason == {"no_route": 1, "overload": 1}
        names = {entry["name"] for entry in metrics.snapshot()["series"]}
        assert {"net.sent", "net.delivered", "net.dropped"} <= names

    def test_on_deliver_hook_sees_delivered_only(self):
        env = Environment()
        seen = []
        transport = SocketTransport(env, on_deliver=seen.append)
        transport.attach("IM")
        message = Ack(sender="V0", receiver="IM", acked_seq=1)
        transport.transmit(message)
        transport.transmit(message)  # duplicate: hook must not fire
        transport.transmit(Ack(sender="V0", receiver="gone", acked_seq=2))
        assert seen == [message]


class TestChannelDetach:
    """Satellite: ``Transport.detach`` semantics on the stock channel —
    in-flight traffic to a detached endpoint is dropped and attributed,
    never raised into the delivery process."""

    def test_in_flight_message_to_detached_endpoint_dropped(self):
        env = Environment()
        channel = Channel(env)
        channel.attach("IM")
        channel.attach("V0")
        channel.transmit(Ack(sender="V0", receiver="IM", acked_seq=1))
        channel.detach("IM")  # mid-flight: transmit scheduled, not delivered
        env.run(until=1.0)  # must not raise
        assert channel.stats.delivered == 0
        assert channel.stats.by_reason.get("no_route") == 1

    def test_transmit_to_never_attached_endpoint_dropped(self):
        env = Environment()
        channel = Channel(env)
        channel.attach("V0")
        channel.transmit(Ack(sender="V0", receiver="nobody", acked_seq=1))
        env.run(until=1.0)
        assert channel.stats.by_reason.get("no_route") == 1


def _run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(body, **config_kwargs):
    """Run ``body(server, client)`` against an in-process server."""
    config_kwargs.setdefault("policy", "crossroads")
    config_kwargs.setdefault("time_scale", 20.0)
    server = ImServer(ServeConfig(**config_kwargs))
    await server.start(listen=False)
    link = server.connect_local()
    client = ServeClient(
        link, address="V0", time_scale=server.config.time_scale
    )
    await client.start()
    try:
        return await body(server, client)
    finally:
        await client.close()
        await server.shutdown()


class TestInProcessServe:
    def test_crossing_transaction_granted(self):
        async def body(server, client):
            await client.sync_clock()
            reply = await client.request(
                _request("V0", tt=client.local_time() + 1.0), timeout=5.0
            )
            assert isinstance(reply, CrossroadsCommand)
            assert reply.sender == "IM" and reply.receiver == "V0"
            await client.send(
                ExitNotification(sender="V0", receiver="IM")
            )
            await asyncio.sleep(0.05)
            assert server.im.stats.accepts == 1
            assert server.im.stats.rejects == 0
            # The link acks fed the estimator on both request and exit.
            assert server.estimator.count >= 1
            assert server.wc_rtd_estimate() > 0.0

        _run(_with_server(body))

    def test_wc_rtd_estimate_applied_to_im_config(self):
        async def body(server, client):
            await client.sync_clock()
            for i in range(6):  # min_samples acks before the sampler tick
                await client.request(
                    _request("V0", index=i, tt=client.local_time() + 1.0),
                    timeout=5.0,
                )
                await client.send(
                    ExitNotification(sender="V0", receiver="IM")
                )
            await asyncio.sleep(0.2)  # >= one sample_dt at time_scale
            assert server.estimator.count >= server.config.min_samples
            assert server.im.config.wc_rtd == pytest.approx(
                max(server.wc_rtd_estimate(), 1e-3)
            )
            names = {
                entry["name"]
                for entry in server.metrics.snapshot()["series"]
            }
            assert "serve.wc_rtd_estimate" in names
            assert "serve.rtd_seconds" in names

        _run(_with_server(body, sample_dt=0.5, min_samples=5))

    def test_overload_sheds_with_reject_and_accounting(self):
        async def body(server, client):
            await client.sync_clock()
            pending = [
                asyncio.ensure_future(client.request(
                    _request(f"V{i}", index=i,
                             tt=client.local_time() + 1.0),
                    timeout=5.0,
                ))
                for i in range(30)
            ]
            replies = await asyncio.gather(*pending)
            rejects = [r for r in replies if isinstance(r, AimReject)]
            grants = [r for r in replies if isinstance(r, CrossroadsCommand)]
            assert len(rejects) > 0, "queue bound 2 must shed a 30-burst"
            assert len(grants) > 0
            assert all(r is not None for r in replies)
            stats = server.transport.stats
            assert stats.by_reason.get("overload") == len(rejects)
            assert server.im.stats.peak_queue <= server.config.max_queue
            overload = [
                entry for entry in server.metrics.snapshot()["series"]
                if entry["name"] == "serve.overload"
            ]
            assert overload and overload[0]["total"] == len(rejects)
            # Server must still serve after the burst.
            reply = await client.request(
                _request("V99", index=99, tt=client.local_time() + 5.0),
                timeout=5.0,
            )
            assert reply is not None

        _run(_with_server(body, max_queue=2))

    def test_garbage_frames_counted_not_fatal(self):
        async def body(server, client):
            await client.sync_clock()
            # Inject frames whose payloads are not valid wire messages:
            # the server must count them and keep the connection alive.
            for junk in (b"", b"\x00", b"\xc5\x01 not json", b"\xff" * 32):
                client.link.write_frame(junk)
            await client.link.drain()
            await asyncio.sleep(0.05)
            reply = await client.request(
                _request("V0", tt=client.local_time() + 1.0), timeout=5.0
            )
            assert isinstance(reply, CrossroadsCommand)
            errors = [
                entry for entry in server.metrics.snapshot()["series"]
                if entry["name"] == "serve.wire_errors"
            ]
            assert errors and errors[0]["total"] == 4.0

        _run(_with_server(body))

    def test_unknown_message_types_are_dropped_silently(self):
        async def body(server, client):
            # A SyncRequest for a bogus receiver: routed nowhere.
            await client.send(
                SyncRequest(sender="V0", receiver="nobody", t0=0.0)
            )
            await asyncio.sleep(0.05)
            assert server.transport.stats.by_reason.get("no_route", 0) >= 1

        _run(_with_server(body))


class TestTcpServe:
    def test_tcp_transaction_and_http_metrics(self):
        async def body():
            server = ImServer(ServeConfig(
                policy="crossroads", port=0, http_port=0, time_scale=20.0,
            ))
            await server.start()
            try:
                client = await ServeClient.connect(
                    "127.0.0.1", server.port,
                    address="V0", time_scale=20.0,
                )
                await client.sync_clock()
                reply = await client.request(
                    _request("V0", tt=client.local_time() + 1.0),
                    timeout=5.0,
                )
                assert isinstance(reply, CrossroadsCommand)
                await client.close()

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.http_port
                )
                writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                head, _, text = raw.decode().partition("\r\n\r\n")
                assert "200" in head.splitlines()[0]
                parsed = parse_prometheus(text)
                names = {name for name, _labels, _value in parsed}
                assert any(n.endswith("serve_rtd_seconds_count")
                           for n in names)
                assert any("serve_wc_rtd_estimate" in n for n in names)
                assert any("net_delivered" in n for n in names)
            finally:
                await server.shutdown()

        _run(body())

    def test_http_health_and_404(self):
        async def body():
            server = ImServer(ServeConfig(port=0, http_port=0))
            await server.start()
            try:
                async def fetch(path):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.http_port
                    )
                    writer.write(
                        f"GET {path} HTTP/1.1\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    return raw.decode().splitlines()[0]

                assert "200" in await fetch("/healthz")
                assert "404" in await fetch("/nope")
            finally:
                await server.shutdown()

        _run(body())
