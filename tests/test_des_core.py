"""Unit tests for the DES kernel event loop."""

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class TestEnvironmentBasics:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_empty_schedule_is_noop(self):
        env = Environment()
        env.run()
        assert env.now == 0.0

    def test_step_on_empty_schedule_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")


class TestTimeout:
    def test_timeout_fires_at_right_time(self):
        env = Environment()
        times = []

        def proc(env):
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.5]

    def test_timeouts_fire_in_order(self):
        env = Environment()
        order = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(env, 3.0, "c"))
        env.process(proc(env, 1.0, "a"))
        env.process(proc(env, 2.0, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fifo_by_creation(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        env.process(proc(env, "first"))
        env.process(proc(env, "second"))
        env.run()
        assert order == ["first", "second"]

    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_value_passed_through(self):
        env = Environment()
        seen = []

        def proc(env):
            value = yield env.timeout(1.0, value="payload")
            seen.append(value)

        env.process(proc(env))
        env.run()
        assert seen == ["payload"]

    def test_zero_delay_timeout(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(0.0)
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [0.0]


class TestEvents:
    def test_succeed_delivers_value(self):
        env = Environment()
        ev = env.event()
        got = []

        def waiter(env, ev):
            value = yield ev
            got.append(value)

        def trigger(env, ev):
            yield env.timeout(1.0)
            ev.succeed(42)

        env.process(waiter(env, ev))
        env.process(trigger(env, ev))
        env.run()
        assert got == [42]

    def test_double_trigger_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_raises_in_waiter(self):
        env = Environment()
        ev = env.event()
        caught = []

        def waiter(env, ev):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter(env, ev))
        ev.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failure_propagates_to_run(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("unheard"))
        with pytest.raises(RuntimeError, match="unheard"):
            env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        proc = env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()
        assert not proc.ok


class TestProcesses:
    def test_return_value_becomes_process_value(self):
        env = Environment()

        def sub(env):
            yield env.timeout(1.0)
            return "result"

        def main(env, out):
            value = yield env.process(sub(env))
            out.append(value)

        out = []
        env.process(main(env, out))
        env.run()
        assert out == ["result"]

    def test_run_until_process_returns_its_value(self):
        env = Environment()

        def p(env):
            yield env.timeout(2.0)
            return 7

        assert env.run(until=env.process(p(env))) == 7

    def test_is_alive_lifecycle(self):
        env = Environment()

        def p(env):
            yield env.timeout(1.0)

        proc = env.process(p(env))
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_exception_in_process_propagates(self):
        env = Environment()

        def p(env):
            yield env.timeout(1.0)
            raise ValueError("inner")

        env.process(p(env))
        with pytest.raises(ValueError, match="inner"):
            env.run()

    def test_exception_caught_by_parent(self):
        env = Environment()

        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child died")

        def parent(env, log):
            try:
                yield env.process(child(env))
            except ValueError:
                log.append("caught")

        log = []
        env.process(parent(env, log))
        env.run()
        assert log == ["caught"]

    def test_non_generator_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_active_process_visible_during_execution(self):
        env = Environment()
        seen = []

        def p(env):
            seen.append(env.active_process)
            yield env.timeout(1.0)

        proc = env.process(p(env))
        env.run()
        assert seen == [proc]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                log.append((env.now, i.cause))

        proc = env.process(sleeper(env))

        def interrupter(env, proc):
            yield env.timeout(1.0)
            proc.interrupt("wake up")

        env.process(interrupter(env, proc))
        env.run()
        assert log == [(1.0, "wake up")]

    def test_interrupt_dead_process_raises(self):
        env = Environment()

        def p(env):
            yield env.timeout(1.0)

        proc = env.process(p(env))
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        proc = env.process(sleeper(env))

        def interrupter(env, proc):
            yield env.timeout(2.0)
            proc.interrupt()

        env.process(interrupter(env, proc))
        env.run()
        assert log == [3.0]


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()
        done = []

        def p(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            result = yield AllOf(env, [t1, t2])
            done.append((env.now, sorted(result.values())))

        env.process(p(env))
        env.run()
        assert done == [(3.0, ["a", "b"])]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def p(env):
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(3.0, value="slow")
            result = yield AnyOf(env, [t1, t2])
            done.append((env.now, list(result.values())))

        env.process(p(env))
        env.run()
        assert done == [(1.0, ["fast"])]

    def test_empty_all_of_triggers_immediately(self):
        env = Environment()
        cond = AllOf(env, [])
        assert cond.triggered

    def test_any_of_with_already_processed_event(self):
        env = Environment()
        log = []

        def p(env):
            t = env.timeout(1.0)
            yield t
            # t is processed now; AnyOf should still fire.
            result = yield AnyOf(env, [t, env.timeout(50.0)])
            log.append(env.now)

        env.process(p(env))
        env.run(until=5.0)
        assert log == [1.0]


class TestDeterminism:
    def test_two_identical_runs_agree(self):
        def build():
            env = Environment()
            trace = []

            def a(env):
                for _ in range(5):
                    yield env.timeout(0.7)
                    trace.append(("a", env.now))

            def b(env):
                for _ in range(5):
                    yield env.timeout(1.1)
                    trace.append(("b", env.now))

            env.process(a(env))
            env.process(b(env))
            env.run()
            return trace

        assert build() == build()
