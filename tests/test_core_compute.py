"""Tests for the IM computation-delay models."""

import pytest

from repro.core import AimComputeModel, LinearComputeModel


class TestLinearComputeModel:
    def test_base_cost(self):
        model = LinearComputeModel(base=0.030, per_reservation=0.002)
        assert model.service_time(reservations=0) == pytest.approx(0.030)

    def test_per_reservation_cost(self):
        model = LinearComputeModel(base=0.030, per_reservation=0.002)
        assert model.service_time(reservations=5) == pytest.approx(0.040)

    def test_charge_accumulates(self):
        model = LinearComputeModel(base=0.030, per_reservation=0.0)
        model.charge(reservations=0)
        model.charge(reservations=0)
        assert model.total_time == pytest.approx(0.060)
        assert model.requests == 2

    def test_four_simultaneous_arrivals_near_paper_worst_case(self):
        """Ch 4: four simultaneous arrivals -> ~135 ms worst-case delay.

        With the calibrated defaults, the fourth queued request waits
        three earlier services plus its own.
        """
        model = LinearComputeModel()
        total = sum(model.service_time(reservations=k) for k in range(4))
        assert 0.10 < total < 0.16

    def test_invalid(self):
        with pytest.raises(ValueError):
            LinearComputeModel(base=-1.0)
        with pytest.raises(ValueError):
            LinearComputeModel().service_time(reservations=-1)


class TestAimComputeModel:
    def test_cost_scales_with_cells(self):
        model = AimComputeModel(base=0.005, per_cell=5e-5)
        assert model.service_time(cells=1000) == pytest.approx(0.055)
        assert model.service_time(cells=0) == pytest.approx(0.005)

    def test_more_expensive_than_linear_for_typical_request(self):
        """A typical AIM request sweeps hundreds of cells and costs a
        multiple of a VT/Crossroads request (Ch 7.2's overhead gap)."""
        aim = AimComputeModel()
        linear = LinearComputeModel()
        assert aim.service_time(cells=800) > linear.service_time(reservations=5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            AimComputeModel(per_cell=-1.0)
        with pytest.raises(ValueError):
            AimComputeModel().service_time(cells=-1)
