"""Unit tests for the shared node-runtime engine (``repro.sim.engine``).

Two seams introduced by the engine extraction get direct coverage here:

* :func:`~repro.sim.engine.lane_predecessor` — the single
  car-following headway helper that both the single-intersection
  :class:`World` and the corridor :class:`GridWorld` now bind per
  spawn (it used to be two copy-pasted closures);
* the scenario seams on a grid — ``install`` scripting behaviours
  through ``GridWorld.on_spawn`` and per-node
  :class:`~repro.scenarios.SafetyOracle` s attached via
  :func:`~repro.scenarios.attach_oracles`, with violations attributed
  to the right node in ``GridResult.violations``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.sim.engine import lane_predecessor


@dataclass
class _Stub:
    """Minimal stand-in for a spawned agent: the helper only reads
    ``done``."""

    name: str
    done: bool = False


class TestLanePredecessor:
    """The lane-predecessor headway contract.

    The returned leader is the *nearest earlier spawn still on the
    road*; despawned vehicles are transparent; vehicles spawned later
    than the caller never lead it, even though they share the lane
    list object.
    """

    def test_empty_lane_has_no_leader(self):
        assert lane_predecessor([], 0) is None

    def test_nearest_earlier_vehicle_leads(self):
        a, b = _Stub("a"), _Stub("b")
        lane = [a, b]
        assert lane_predecessor(lane, 2) is b
        assert lane_predecessor(lane, 1) is a

    def test_done_vehicles_are_transparent(self):
        a, b, c = _Stub("a"), _Stub("b", done=True), _Stub("c", done=True)
        lane = [a, b, c]
        # Both immediate leaders have despawned: the scan falls through
        # to the nearest one still on the road.
        assert lane_predecessor(lane, 3) is a
        a.done = True
        assert lane_predecessor(lane, 3) is None

    def test_spawn_position_is_frozen_not_live(self):
        """The per-spawn binding captures the lane *object* (shared
        with later spawns) but the index *value*: a vehicle appended
        after me never becomes my predecessor."""
        a = _Stub("a")
        lane = [a]
        me = partial(lane_predecessor, lane, len(lane))
        later = _Stub("later")
        lane.append(later)
        assert me() is a
        a.done = True
        # With my only true leader gone the road ahead is clear, even
        # though the lane list now has a live entry behind me.
        assert me() is None

    def test_world_binds_the_shared_helper(self):
        """A live World spawn resolves its predecessor through the
        engine helper with the same semantics."""
        from repro.sim.world import World
        from repro.traffic.generator import (
            Approach,
            Arrival,
            Movement,
            Turn,
            VehicleSpec,
        )

        movement = Movement(Approach.WEST, Turn.STRAIGHT)
        arrivals = [
            Arrival(time=0.0, movement=movement, spec=VehicleSpec(), speed=1.0),
            Arrival(time=0.5, movement=movement, spec=VehicleSpec(), speed=1.0),
        ]
        world = World("crossroads", arrivals, seed=1)
        world.env.run(until=1.0)
        first, second = world.vehicles
        assert second.predecessor() is first
        assert first.predecessor() is None


class TestGridScenarioSeams:
    """Scripted misbehaviour + safety oracles on a 3-node corridor.

    The corridor runs the same ``on_spawn``/``safety_checks`` seams as
    a single world: ``install`` needs no grid-specific code, and each
    node's oracle sees only its own intersection, so
    ``GridResult.violations`` attributes findings per node.
    """

    def _run_corridor(self):
        from repro.grid import GridPoissonTraffic, GridWorld, corridor_spec
        from repro.scenarios import BehaviourSpec, attach_oracles, install

        spec = corridor_spec(3)
        arrivals = GridPoissonTraffic(spec, 0.4, seed=11).generate(12)
        world = GridWorld(spec, arrivals, seed=21)
        assert world.on_spawn is None
        install(world, [
            # Vehicle 2 spawns at N2 at t=0.76; hijacked at t=1.0 it
            # crosses the line with no live grant — the TE violator.
            BehaviourSpec(kind="run_red_light", vehicle_id=2, start=1.0),
            # Vehicle 1 spawns at N0 and dies 0.5 m into the box for
            # six seconds; followers pile into it.
            BehaviourSpec(kind="stall_in_box", vehicle_id=1, start=0.0,
                          duration=6.0, value=0.5),
        ])
        oracles = attach_oracles(world)
        return world, oracles, world.run()

    def test_per_node_violation_attribution(self):
        world, oracles, result = self._run_corridor()
        # Every node is monitored; findings land on the right node.
        assert set(result.violations) == {"N0", "N1", "N2"}
        n0_kinds = {v.kind for v in result.violations["N0"]}
        n2_kinds = {v.kind for v in result.violations["N2"]}
        assert "collision" in n0_kinds
        assert all(v.vehicle_id == 1 for v in result.violations["N0"])
        assert n2_kinds == {"ungranted_entry"}
        assert all(v.vehicle_id == 2 for v in result.violations["N2"])
        assert result.violations["N1"] == ()
        # The per-node SimResult ground truth agrees with the oracle's
        # attribution: all collisions at the stall node, none elsewhere.
        assert result.per_node["N0"].collisions == len(
            [v for v in result.violations["N0"] if v.kind == "collision"]
        )
        assert result.per_node["N1"].collisions == 0
        assert result.per_node["N2"].collisions == 0
        assert result.summary()["collisions"] == float(
            result.per_node["N0"].collisions
        )

    def test_oracles_live_on_the_runtimes(self):
        world, oracles, result = self._run_corridor()
        for name, oracle in oracles.items():
            runtime = world.nodes[name]
            assert runtime.oracle is oracle
            assert oracle._tick in runtime.safety_checks
        # The stall behaviour actually fired on the grid (the on_spawn
        # seam reached the node runtime's spawn path).
        stalled = [
            v for v in world.vehicles
            if getattr(v, "_scenario_stalled", False)
        ]
        assert [v.info.vehicle_id for v in stalled] == [1]
        # Misbehaviour disrupts but does not wedge the corridor.
        assert result.summary()["completed"] == 12.0
