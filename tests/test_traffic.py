"""Tests for traffic generation and the scale-model scenarios."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Approach, Turn
from repro.traffic import Arrival, PoissonTraffic, Scenario, TurnMix, scale_model_scenarios
from repro.vehicle import VehicleSpec


class TestTurnMix:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TurnMix(left=0.5, straight=0.5, right=0.5)

    def test_draw_distribution(self):
        mix = TurnMix(left=0.2, straight=0.6, right=0.2)
        rng = np.random.default_rng(0)
        draws = [mix.draw(rng) for _ in range(3000)]
        frac_straight = sum(1 for d in draws if d is Turn.STRAIGHT) / len(draws)
        assert frac_straight == pytest.approx(0.6, abs=0.04)

    def test_degenerate_mix(self):
        mix = TurnMix(left=0.0, straight=1.0, right=0.0)
        rng = np.random.default_rng(0)
        assert all(mix.draw(rng) is Turn.STRAIGHT for _ in range(50))


class TestArrival:
    def test_validation(self):
        with pytest.raises(ValueError):
            Arrival(time=-1.0, movement=None, speed=1.0)
        from repro.geometry import Movement

        with pytest.raises(ValueError):
            Arrival(
                time=0.0,
                movement=Movement(Approach.SOUTH, Turn.STRAIGHT),
                speed=99.0,  # above v_max
            )


class TestPoissonTraffic:
    def test_reproducible_with_seed(self):
        a = PoissonTraffic(0.5, seed=1).generate(30)
        b = PoissonTraffic(0.5, seed=1).generate(30)
        assert [x.time for x in a] == [x.time for x in b]
        assert [x.movement.key for x in a] == [x.movement.key for x in b]

    def test_count(self):
        assert len(PoissonTraffic(0.5, seed=2).generate(25)) == 25

    def test_sorted_by_time(self):
        arrivals = PoissonTraffic(0.8, seed=3).generate(50)
        times = [a.time for a in arrivals]
        assert times == sorted(times)

    def test_min_headway_per_lane(self):
        arrivals = PoissonTraffic(2.0, min_headway=0.5, seed=4).generate(80)
        per_lane = {}
        for a in arrivals:
            per_lane.setdefault(a.movement.entry, []).append(a.time)
        for times in per_lane.values():
            gaps = np.diff(times)
            assert (gaps >= 0.5 - 1e-9).all()

    def test_mean_rate_roughly_matches(self):
        """Merged arrival rate ~ 4 * flow (one process per lane)."""
        flow = 0.5
        arrivals = PoissonTraffic(flow, min_headway=0.0, seed=5).generate(400)
        duration = arrivals[-1].time
        measured = len(arrivals) / duration
        assert measured == pytest.approx(4 * flow, rel=0.25)

    def test_speeds_in_range(self):
        arrivals = PoissonTraffic(0.5, speed_range=(2.0, 3.0), seed=6).generate(50)
        assert all(2.0 <= a.speed <= 3.0 for a in arrivals)

    def test_all_approaches_used(self):
        arrivals = PoissonTraffic(0.5, seed=7).generate(100)
        assert {a.movement.entry for a in arrivals} == set(Approach)

    @given(st.integers(1, 60), st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_generate_always_returns_n(self, n, seed):
        assert len(PoissonTraffic(0.3, seed=seed).generate(n)) == n

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PoissonTraffic(0.0)
        with pytest.raises(ValueError):
            PoissonTraffic(0.5, speed_range=(3.0, 2.0))
        with pytest.raises(ValueError):
            PoissonTraffic(0.5).generate(0)


class TestScaleModelScenarios:
    def test_ten_scenarios(self):
        scenarios = scale_model_scenarios()
        assert len(scenarios) == 10
        assert scenarios[0].name == "S1-worst"
        assert scenarios[-1].name == "S10-best"

    def test_five_vehicles_each(self):
        for s in scale_model_scenarios():
            assert s.n_vehicles == 5

    def test_worst_case_is_nearly_simultaneous(self):
        s1 = scale_model_scenarios()[0]
        assert s1.duration < 0.1

    def test_best_case_is_sparse(self):
        s10 = scale_model_scenarios()[9]
        times = sorted(a.time for a in s10.arrivals)
        gaps = np.diff(times)
        assert (gaps >= 3.0).all()

    def test_reproducible(self):
        a = scale_model_scenarios(seed=2017)
        b = scale_model_scenarios(seed=2017)
        for sa, sb in zip(a, b):
            assert [x.time for x in sa.arrivals] == [x.time for x in sb.arrivals]

    def test_random_scenarios_keep_lane_headway(self):
        for s in scale_model_scenarios()[1:9]:
            per_lane = {}
            for a in s.arrivals:
                per_lane.setdefault(a.movement.entry, []).append(a.time)
            for times in per_lane.values():
                if len(times) > 1:
                    assert (np.diff(sorted(times)) >= 0.5).all()

    def test_scenario_dataclass(self):
        s = Scenario(name="x", arrivals=())
        assert s.n_vehicles == 0
        assert s.duration == 0.0

    def test_custom_vehicle_count(self):
        scenarios = scale_model_scenarios(n_vehicles=8)
        assert all(s.n_vehicles == 8 for s in scenarios)
