"""Tests for arrival planning (the paper's Ch 6 equations)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinematics import (
    earliest_arrival_time,
    latest_arrival_time,
    plan_arrival,
    solve_cruise_velocity,
)


class TestEarliestArrival:
    def test_already_at_line(self):
        assert earliest_arrival_time(0.0, 2.0, 3.0, 3.0) == 0.0

    def test_accelerate_then_cruise_matches_paper_formula(self):
        # Paper Ch 6: EToA = T_acc + (DE - dX) / v_max.
        v_init, v_max, a_max, de = 1.0, 3.0, 3.0, 3.0
        t_acc = (v_max - v_init) / a_max
        dx = 0.5 * a_max * t_acc ** 2 + v_init * t_acc
        expected = t_acc + (de - dx) / v_max
        assert earliest_arrival_time(de, v_init, v_max, a_max) == pytest.approx(expected)

    def test_short_distance_never_reaches_vmax(self):
        # 0.5*3*t^2 = 0.1 from rest -> t = sqrt(0.2/3)
        t = earliest_arrival_time(0.1, 0.0, 3.0, 3.0)
        assert t == pytest.approx(math.sqrt(0.2 / 3.0))

    def test_at_vmax_already(self):
        assert earliest_arrival_time(3.0, 3.0, 3.0, 3.0) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            earliest_arrival_time(-1.0, 1.0, 3.0, 3.0)
        with pytest.raises(ValueError):
            earliest_arrival_time(1.0, 5.0, 3.0, 3.0)  # v_init > v_max

    @given(
        st.floats(0.1, 10.0),
        st.floats(0.0, 3.0),
        st.floats(0.5, 5.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_faster_start_never_slower(self, distance, v_init, a_max):
        v_max = 3.0
        v_init = min(v_init, v_max)
        slow = earliest_arrival_time(distance, v_init * 0.5, v_max, a_max)
        fast = earliest_arrival_time(distance, v_init, v_max, a_max)
        assert fast <= slow + 1e-9


class TestLatestArrival:
    def test_zero_crawl_is_infinite(self):
        assert latest_arrival_time(3.0, 2.0, 0.0, 4.0) == math.inf

    def test_crawl_bound(self):
        # Decelerate 3 -> 0.5 at 4 m/s^2, crawl the rest.
        t = latest_arrival_time(3.0, 3.0, 0.5, 4.0)
        t_dec = 2.5 / 4.0
        dx = 3.0 * t_dec - 0.5 * 4.0 * t_dec ** 2
        expected = t_dec + (3.0 - dx) / 0.5
        assert t == pytest.approx(expected)

    def test_later_than_earliest(self):
        e = earliest_arrival_time(3.0, 2.0, 3.0, 3.0)
        l = latest_arrival_time(3.0, 2.0, 0.5, 4.0)
        assert l > e


class TestSolveCruise:
    def test_exact_cruise_round_trip(self):
        v = solve_cruise_velocity(3.0, 1.0, 2.0, 3.0, 4.0, 3.0)
        assert v is not None
        # Verify: two-phase plan at v takes 2.0 s.
        rate = 3.0 if v >= 1.0 else 4.0
        t_chg = abs(v - 1.0) / rate
        dx = 0.5 * (v + 1.0) * t_chg
        t_total = t_chg + (3.0 - dx) / v
        assert t_total == pytest.approx(2.0, abs=1e-4)

    def test_too_fast_request_returns_none(self):
        assert solve_cruise_velocity(3.0, 1.0, 0.5, 3.0, 4.0, 3.0) is None

    def test_too_slow_request_returns_none(self):
        assert solve_cruise_velocity(3.0, 1.0, 1000.0, 3.0, 4.0, 3.0, v_min=0.5) is None

    @given(st.floats(1.0, 6.0), st.floats(0.5, 3.0), st.floats(1.2, 10.0))
    @settings(max_examples=200, deadline=None)
    def test_solution_within_bounds(self, distance, v_init, t_total):
        v = solve_cruise_velocity(distance, v_init, t_total, 3.0, 4.0, 3.0, v_min=0.05)
        if v is not None:
            assert 0.05 - 1e-6 <= v <= 3.0 + 1e-6


class TestPlanArrival:
    def test_unreachable_toa_returns_none(self):
        assert plan_arrival(3.0, 1.0, 0.0, 0.1, 3.0, 4.0, 3.0) is None

    def test_cruise_plan_hits_toa(self):
        plan = plan_arrival(3.0, 1.0, 10.0, 12.0, 3.0, 4.0, 3.0)
        assert plan is not None
        assert not plan.stop_and_go
        assert plan.arrival_time == pytest.approx(12.0, abs=1e-3)
        assert plan.profile.position_at(plan.arrival_time) == pytest.approx(3.0, abs=1e-3)

    def test_vt_semantics_never_stop_and_go(self):
        # launch_below=0 (plain VT-IM): even very late slots must be
        # cruised to, never launched.
        plan = plan_arrival(3.0, 2.0, 0.0, 20.0, 3.0, 4.0, 3.0, launch_below=0.0)
        assert plan is not None
        assert not plan.stop_and_go

    def test_crossroads_prefers_launch_for_late_slots(self):
        plan = plan_arrival(3.0, 2.0, 0.0, 20.0, 3.0, 4.0, 3.0, launch_below=1.2)
        assert plan is not None
        assert plan.stop_and_go
        assert plan.arrival_time == pytest.approx(20.0, abs=1e-3)
        assert plan.arrival_velocity >= 1.2

    def test_launch_arrival_velocity_is_fast(self):
        plan = plan_arrival(3.0, 3.0, 0.0, 30.0, 3.0, 4.0, 3.0, launch_below=1.2)
        assert plan is not None
        # d_launch = 3 - 9/8 = 1.875 -> v = sqrt(2*3*1.875) = 3.354 -> capped 3.0
        assert plan.arrival_velocity == pytest.approx(3.0, abs=1e-6)

    def test_profile_starts_at_given_anchor(self):
        plan = plan_arrival(
            2.0, 1.0, 5.0, 8.0, 3.0, 4.0, 3.0, start_position=7.5
        )
        assert plan.profile.start_time == 5.0
        assert plan.profile.start_position == 7.5
        assert plan.profile.position_at(plan.arrival_time) == pytest.approx(9.5, abs=1e-3)

    @given(
        st.floats(0.5, 8.0),
        st.floats(0.0, 3.0),
        st.floats(0.0, 30.0),
        st.sampled_from([0.0, 1.2]),
    )
    @settings(max_examples=300, deadline=None)
    def test_feasible_plans_arrive_on_time_or_early(
        self, distance, v_init, slack, launch_below
    ):
        etoa = earliest_arrival_time(distance, v_init, 3.0, 3.0)
        toa = etoa + slack
        plan = plan_arrival(
            distance, v_init, 0.0, toa, 3.0, 4.0, 3.0, launch_below=launch_below
        )
        assert plan is not None
        # Arrival never later than requested (early only in the
        # documented crawl-band fallback).
        assert plan.arrival_time <= toa + 1e-3
        # The profile really covers the distance by the arrival time.
        assert plan.profile.position_at(plan.arrival_time) == pytest.approx(
            distance, abs=1e-3
        )

    @given(st.floats(0.5, 8.0), st.floats(0.0, 3.0), st.floats(0.5, 30.0))
    @settings(max_examples=200, deadline=None)
    def test_velocity_limits_respected(self, distance, v_init, slack):
        etoa = earliest_arrival_time(distance, v_init, 3.0, 3.0)
        plan = plan_arrival(
            distance, v_init, 0.0, etoa + slack, 3.0, 4.0, 3.0, launch_below=1.2
        )
        assert plan is not None
        assert plan.profile.max_velocity() <= 3.0 + 1e-6
