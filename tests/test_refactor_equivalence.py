"""Golden-replay bit-identity suite for the layered-protocol refactor.

The ``repro.protocol`` extraction (PR 3) re-expresses the vehicle agents
and the IMs as compositions of small state machines.  The refactor is
*behaviour-preserving by construction*: the DES event sequence and every
RNG draw must be unchanged, so a fixed ``(policy, flow, seed)`` triple
must reproduce the exact pre-refactor summary, bit for bit.

``tests/golden/refactor_equivalence.json`` pins the summaries recorded
at the last intentional behaviour change (3 policies x 2 flows x 2
seeds, 12 cars per cell); last re-recorded after the stop-line creep
fix widened the safe-stop latch for every policy.  This suite replays every cell serially *and* across a
2-worker pool and asserts float-exact equality.  If a later PR changes
behaviour *intentionally*, re-record with::

    PYTHONPATH=src python tests/test_refactor_equivalence.py --record
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "refactor_equivalence.json"
)

#: The pinned grid: every cell is one (policy, flow, seed) triple.
POLICIES = ("vt-im", "crossroads", "aim")
FLOWS = (0.3, 0.8)
SEEDS = (7, 11)
N_CARS = 12


def cell_key(policy: str, flow: float, seed: int) -> str:
    return f"{policy}@{flow:g}#s{seed}"


def run_cell(policy: str, flow: float, seed: int) -> Dict[str, float]:
    """One grid cell through the stock ``run_flow`` entry point."""
    from repro.sim.flowsweep import run_flow

    point = run_flow(policy, flow, n_cars=N_CARS, seed=seed)
    return point.result.summary()


def record_goldens(path: str = GOLDEN_PATH) -> Dict[str, Dict[str, float]]:
    goldens = {
        cell_key(policy, flow, seed): run_cell(policy, flow, seed)
        for policy in POLICIES
        for flow in FLOWS
        for seed in SEEDS
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
    return goldens


@pytest.fixture(scope="module")
def goldens() -> Dict[str, Dict[str, float]]:
    if not os.path.exists(GOLDEN_PATH):  # pragma: no cover - setup error
        pytest.fail(
            "golden file missing; record with "
            "`PYTHONPATH=src python tests/test_refactor_equivalence.py --record`"
        )
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _assert_summary_equal(observed: Dict[str, float], pinned: Dict[str, float], label: str):
    assert set(observed) == set(pinned), f"{label}: summary keys changed"
    for key in sorted(pinned):
        assert observed[key] == pinned[key], (
            f"{label}: {key} drifted: {observed[key]!r} != pinned {pinned[key]!r}"
        )


class TestSerialReplay:
    """Every pinned cell replays bit-identically through ``run_flow``."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("flow", FLOWS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cell_matches_golden(self, goldens, policy, flow, seed):
        key = cell_key(policy, flow, seed)
        assert key in goldens, f"golden file lacks {key}; re-record"
        _assert_summary_equal(run_cell(policy, flow, seed), goldens[key], key)


class TestParallelReplay:
    """The same grid through ``run_flow_sweep(jobs=2)`` matches too.

    Worker placement must not perturb any RNG stream or resolution
    path: the registry-resolved policy name crosses the process
    boundary as a plain string and the worker rebuilds the identical
    world.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sweep_jobs2_matches_golden(self, goldens, seed):
        from repro.sim.flowsweep import run_flow_sweep

        sweep = run_flow_sweep(
            policies=list(POLICIES),
            flow_rates=list(FLOWS),
            n_cars=N_CARS,
            seed=seed,
            jobs=2,
        )
        for policy in POLICIES:
            points = sweep[policy]
            assert [p.flow_rate for p in points] == list(FLOWS)
            for point in points:
                key = cell_key(policy, point.flow_rate, seed)
                _assert_summary_equal(
                    point.result.summary(), goldens[key], f"jobs=2 {key}"
                )


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="(re-)record the golden summaries")
    args = parser.parse_args()
    if not args.record:
        parser.error("run under pytest, or pass --record")
    recorded = record_goldens()
    print(f"recorded {len(recorded)} cells -> {GOLDEN_PATH}")
    sys.exit(0)
