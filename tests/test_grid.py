"""Unit tests for the corridor-network layer (repro.grid).

Covers the pure-data pieces: spec validation and serialisation, route
construction (walks, random extension, shortest paths), boundary
traffic generation (including its draw-order equivalence with the
single-intersection generator) and the experiment-knob validation
satellites (``WorldConfig`` / grid constructors rejecting non-positive
values with clear errors).  End-to-end corridor behaviour lives in
``tests/test_grid_integration.py``.
"""

import json

import numpy as np
import pytest

from repro.geometry import Approach, Movement, Turn, exit_approach
from repro.grid import (
    GridArrival,
    GridPoissonTraffic,
    GridSpec,
    GridWorld,
    Hop,
    LinkSpec,
    NodeSpec,
    RouteMix,
    RoutePlan,
    Router,
    corridor_spec,
)
from repro.sim.world import WorldConfig
from repro.traffic.generator import Arrival, PoissonTraffic, TurnMix


# =========================================================================
# GridSpec / NodeSpec / LinkSpec
# =========================================================================
class TestNodeSpec:
    def test_defaults(self):
        node = NodeSpec("A")
        assert node.policy == "crossroads"
        assert (node.x, node.y) == (0.0, 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            NodeSpec("")
        with pytest.raises(ValueError, match="non-empty"):
            NodeSpec("   ")


class TestLinkSpec:
    def test_positive_length_required(self):
        with pytest.raises(ValueError, match="length must be positive"):
            LinkSpec(src="A", src_exit="E", dst="B", length=0.0)
        with pytest.raises(ValueError, match="length must be positive"):
            LinkSpec(src="A", src_exit="E", dst="B", length=-2.0)

    def test_positive_speed_limit_required(self):
        with pytest.raises(ValueError, match="speed_limit must be positive"):
            LinkSpec(src="A", src_exit="E", dst="B", speed_limit=0.0)

    def test_bad_arm_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(src="A", src_exit="Q", dst="B")
        with pytest.raises(ValueError):
            LinkSpec(src="A", src_exit="E", dst="B", dst_entry="X")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            LinkSpec(src="A", src_exit="E", dst="A")

    def test_default_entry_is_opposite_arm(self):
        link = LinkSpec(src="A", src_exit="E", dst="B")
        assert link.exit_arm is Approach.EAST
        assert link.entry_approach is Approach.WEST  # arrives from the west

    def test_explicit_entry_override(self):
        link = LinkSpec(src="A", src_exit="E", dst="B", dst_entry="S")
        assert link.entry_approach is Approach.SOUTH

    def test_key(self):
        assert LinkSpec(src="A", src_exit="E", dst="B").key == "A/E->B"


class TestGridSpec:
    def test_needs_a_node(self):
        with pytest.raises(ValueError, match="at least one node"):
            GridSpec(nodes=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate node names"):
            GridSpec(nodes=(NodeSpec("A"), NodeSpec("A")))

    def test_unknown_link_endpoints_rejected(self):
        with pytest.raises(ValueError, match="unknown dst node"):
            GridSpec(
                nodes=(NodeSpec("A"),),
                links=(LinkSpec(src="A", src_exit="E", dst="B"),),
            )
        with pytest.raises(ValueError, match="unknown src node"):
            GridSpec(
                nodes=(NodeSpec("B"),),
                links=(LinkSpec(src="A", src_exit="E", dst="B"),),
            )

    def test_one_lane_per_arm(self):
        nodes = (NodeSpec("A"), NodeSpec("B"), NodeSpec("C"))
        with pytest.raises(ValueError, match="second outgoing link"):
            GridSpec(
                nodes=nodes,
                links=(
                    LinkSpec(src="A", src_exit="E", dst="B"),
                    LinkSpec(src="A", src_exit="E", dst="C"),
                ),
            )
        with pytest.raises(ValueError, match="second incoming link"):
            GridSpec(
                nodes=nodes,
                links=(
                    LinkSpec(src="A", src_exit="E", dst="C"),
                    LinkSpec(src="B", src_exit="W", dst="C", dst_entry="W"),
                ),
            )

    def test_queries(self):
        spec = corridor_spec(3)
        assert spec.node_names == ("N0", "N1", "N2")
        assert len(spec) == 3
        link = spec.out_link("N0", Approach.EAST)
        assert link is not None and link.dst == "N1"
        assert spec.out_link("N0", Approach.WEST) is None  # boundary
        assert spec.in_link("N1", Approach.WEST).src == "N0"
        # Interior node: only N/S arms spawn fresh traffic.
        assert set(spec.boundary_entries("N1")) == {
            Approach.NORTH, Approach.SOUTH,
        }
        # Western edge node: all but the eastern hand-off lane.
        assert set(spec.boundary_entries("N0")) == {
            Approach.NORTH, Approach.SOUTH, Approach.WEST,
        }
        with pytest.raises(KeyError):
            spec.node("nope")

    def test_json_round_trip(self, tmp_path):
        spec = corridor_spec(3, policies=["crossroads", "vt-im", "aim"])
        path = tmp_path / "grid.json"
        text = spec.to_json(str(path))
        assert GridSpec.from_json(text) == spec
        assert GridSpec.from_file(str(path)) == spec
        data = json.loads(text)
        assert [n["policy"] for n in data["nodes"]] == [
            "crossroads", "vt-im", "aim",
        ]

    def test_from_dict_requires_nodes(self):
        with pytest.raises(ValueError, match="'nodes'"):
            GridSpec.from_dict({"links": []})

    def test_dst_entry_survives_round_trip(self):
        spec = GridSpec(
            nodes=(NodeSpec("A"), NodeSpec("B")),
            links=(LinkSpec(src="A", src_exit="E", dst="B", dst_entry="S"),),
        )
        again = GridSpec.from_json(spec.to_json())
        assert again.links[0].entry_approach is Approach.SOUTH


class TestCorridorFactory:
    def test_needs_a_node(self):
        with pytest.raises(ValueError, match="n_nodes must be >= 1"):
            corridor_spec(0)

    def test_policies_length_checked(self):
        with pytest.raises(ValueError, match="must name 3 policies"):
            corridor_spec(3, policies=["crossroads"])

    def test_two_way_links(self):
        spec = corridor_spec(3)
        assert len(spec.links) == 4  # 2 eastbound + 2 westbound
        one_way = corridor_spec(3, two_way=False)
        assert len(one_way.links) == 2

    def test_link_length_validated(self):
        with pytest.raises(ValueError, match="length must be positive"):
            corridor_spec(2, link_length=0.0)

    def test_node_placement(self):
        spec = corridor_spec(3, link_length=6.0)
        xs = [node.x for node in spec.nodes]
        assert xs == [0.0, 16.0, 32.0]


# =========================================================================
# Routing
# =========================================================================
class TestRoutePlan:
    def test_chain_validated(self):
        hop0 = Hop("N0", Movement(Approach.WEST, Turn.STRAIGHT))
        hop1 = Hop("N1", Movement(Approach.WEST, Turn.STRAIGHT))
        good = LinkSpec(src="N0", src_exit="E", dst="N1")
        RoutePlan((hop0, hop1), (good,))  # consistent: no raise
        with pytest.raises(ValueError, match="needs 1 links"):
            RoutePlan((hop0, hop1), ())
        bad_arm = LinkSpec(src="N0", src_exit="N", dst="N1", dst_entry="W")
        with pytest.raises(ValueError, match="exits arm"):
            RoutePlan((hop0, hop1), (bad_arm,))
        bad_entry = LinkSpec(src="N0", src_exit="E", dst="N1", dst_entry="S")
        with pytest.raises(ValueError, match="enters from"):
            RoutePlan((hop0, hop1), (bad_entry,))

    def test_keys_and_lengths(self):
        spec = corridor_spec(3, link_length=5.0)
        route = Router(spec).route(
            "N0", Approach.WEST, [Turn.STRAIGHT, Turn.STRAIGHT, Turn.STRAIGHT]
        )
        assert route.n_hops == 3
        assert route.key == "N0/W-straight>N1/W-straight>N2/W-straight"
        assert route.length == pytest.approx(10.0)
        assert route.entry_node == "N0" and route.exit_node == "N2"


class TestRouter:
    def test_walk_follows_links(self):
        spec = corridor_spec(3)
        route = Router(spec).route(
            "N0", Approach.WEST, [Turn.STRAIGHT, Turn.STRAIGHT, Turn.LEFT]
        )
        assert [hop.node for hop in route.hops] == ["N0", "N1", "N2"]
        # Every interior hop enters from the west (came from the west).
        assert all(h.movement.entry is Approach.WEST for h in route.hops)

    def test_walk_into_boundary_fails_clearly(self):
        spec = corridor_spec(2)
        router = Router(spec)
        with pytest.raises(ValueError, match="boundary arm"):
            # First turn goes north off the map, but a second turn remains.
            router.route("N0", Approach.WEST, [Turn.LEFT, Turn.STRAIGHT])

    def test_empty_turns_rejected(self):
        with pytest.raises(ValueError, match="at least one turn"):
            Router(corridor_spec(1)).route("N0", Approach.WEST, [])

    def test_random_route_single_node_draws_nothing(self):
        spec = corridor_spec(1)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        route = Router(spec).random_route(
            "N0", Movement(Approach.WEST, Turn.STRAIGHT), RouteMix(), rng
        )
        assert route.n_hops == 1
        assert rng.bit_generator.state == before  # zero draws

    def test_random_route_follows_corridor(self):
        spec = corridor_spec(4)
        mix = RouteMix(turns=TurnMix(left=0.0, straight=1.0, right=0.0))
        route = Router(spec).random_route(
            "N0", Movement(Approach.WEST, Turn.STRAIGHT), mix,
            np.random.default_rng(1),
        )
        assert [hop.node for hop in route.hops] == ["N0", "N1", "N2", "N3"]

    def test_random_route_max_hops(self):
        spec = corridor_spec(6)
        mix = RouteMix(turns=TurnMix(left=0.0, straight=1.0, right=0.0),
                       max_hops=2)
        route = Router(spec).random_route(
            "N0", Movement(Approach.WEST, Turn.STRAIGHT), mix,
            np.random.default_rng(1),
        )
        assert route.n_hops == 2

    def test_route_mix_validation(self):
        with pytest.raises(ValueError, match="continue_probability"):
            RouteMix(continue_probability=1.5)
        with pytest.raises(ValueError, match="max_hops"):
            RouteMix(max_hops=0)

    def test_shortest_path_corridor(self):
        spec = corridor_spec(4)
        route = Router(spec).shortest_path("N0", Approach.WEST, "N3")
        assert route is not None
        assert [hop.node for hop in route.hops] == ["N0", "N1", "N2", "N3"]
        assert route.hops[-1].movement.turn is Turn.STRAIGHT

    def test_shortest_path_unreachable(self):
        spec = GridSpec(nodes=(NodeSpec("A"), NodeSpec("B")))
        assert Router(spec).shortest_path("A", Approach.WEST, "B") is None

    def test_shortest_path_same_node(self):
        spec = corridor_spec(2)
        route = Router(spec).shortest_path(
            "N0", Approach.WEST, "N0", final_turn=Turn.LEFT
        )
        assert route.n_hops == 1
        assert route.hops[0].movement.turn is Turn.LEFT

    def test_turns_for_arms(self):
        router = Router(corridor_spec(1))
        turns = router.turns_for_arms(Approach.WEST, [Approach.EAST])
        assert turns == [Turn.STRAIGHT]
        with pytest.raises(ValueError, match="U-turn"):
            router.turns_for_arms(Approach.WEST, [Approach.WEST])


# =========================================================================
# Boundary traffic
# =========================================================================
class TestGridTraffic:
    def test_single_node_matches_poisson_traffic(self):
        """Draw-order contract: 1-node grid workload == PoissonTraffic."""
        spec = corridor_spec(1)
        grid_arrivals = GridPoissonTraffic(spec, 0.25, seed=11).generate(15)
        plain = PoissonTraffic(0.25, seed=11).generate(15)
        assert len(grid_arrivals) == len(plain)
        for got, want in zip(grid_arrivals, plain):
            assert got.arrival == want
            assert got.node == "N0"
            assert got.route.n_hops == 1

    def test_interior_lanes_do_not_spawn(self):
        spec = corridor_spec(3)
        arrivals = GridPoissonTraffic(spec, 0.3, seed=5).generate(40)
        for ga in arrivals:
            assert ga.arrival.movement.entry in set(
                spec.boundary_entries(ga.node)
            )

    def test_routes_follow_links(self):
        spec = corridor_spec(3)
        arrivals = GridPoissonTraffic(spec, 0.3, seed=5).generate(40)
        assert any(ga.route.n_hops > 1 for ga in arrivals)
        for ga in arrivals:
            for link, nxt in zip(ga.route.links, ga.route.hops[1:]):
                assert link.dst == nxt.node

    def test_validation(self):
        spec = corridor_spec(1)
        with pytest.raises(ValueError, match="flow_rate must be positive"):
            GridPoissonTraffic(spec, 0.0)
        with pytest.raises(ValueError, match="speed_range"):
            GridPoissonTraffic(spec, 0.1, speed_range=(0.0, 1.0))
        with pytest.raises(ValueError, match="min_headway"):
            GridPoissonTraffic(spec, 0.1, min_headway=-1.0)
        with pytest.raises(ValueError, match="n_cars must be >= 1"):
            GridPoissonTraffic(spec, 0.1).generate(0)

    def test_grid_arrival_consistency_checked(self):
        spec = corridor_spec(2)
        router = Router(spec)
        movement = Movement(Approach.WEST, Turn.STRAIGHT)
        route = router.route("N0", Approach.WEST, [Turn.STRAIGHT])
        arrival = Arrival(time=1.0, movement=movement, speed=2.0)
        GridArrival(node="N0", arrival=arrival, route=route)  # fine
        with pytest.raises(ValueError, match="spawns at"):
            GridArrival(node="N1", arrival=arrival, route=route)
        other = Arrival(
            time=1.0, movement=Movement(Approach.WEST, Turn.LEFT), speed=2.0
        )
        with pytest.raises(ValueError, match="first movement"):
            GridArrival(node="N0", arrival=other, route=route)

    def test_deterministic_per_seed(self):
        spec = corridor_spec(3)
        a = GridPoissonTraffic(spec, 0.3, seed=5).generate(20)
        b = GridPoissonTraffic(spec, 0.3, seed=5).generate(20)
        assert a == b


# =========================================================================
# Experiment-knob validation satellites
# =========================================================================
class TestWorldConfigValidation:
    def test_defaults_are_valid(self):
        WorldConfig()  # no raise

    @pytest.mark.parametrize("field,value,match", [
        ("safety_dt", 0.0, "safety_dt"),
        ("safety_dt", -0.1, "safety_dt"),
        ("max_sim_time", 0.0, "max_sim_time"),
        ("max_sim_time", -5.0, "max_sim_time"),
        ("message_loss", 1.0, "message_loss"),
        ("message_loss", -0.1, "message_loss"),
        ("clock_offset_bound", -0.1, "clock_offset_bound"),
        ("clock_drift_bound", -1e-6, "clock_drift_bound"),
        ("plant_headroom", 0.9, "plant_headroom"),
    ])
    def test_bad_knob_raises_clearly(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            WorldConfig(**{field: value})


class TestGridWorldValidation:
    def test_link_must_outlast_outrun(self):
        spec = corridor_spec(2, link_length=0.5)  # < agent outrun (1.0 m)
        with pytest.raises(ValueError, match="outrun"):
            GridWorld(spec, arrivals=[])

    def test_unknown_policy_rejected(self):
        spec = GridSpec(nodes=(NodeSpec("A", policy="definitely-not"),))
        with pytest.raises(ValueError, match="unknown policy"):
            GridWorld(spec, arrivals=[])
