"""The declarative scenario DSL (ISSUE 7 satellite c + behaviours).

Three contracts are pinned here:

* **JSON round-trip identity** — every spec shape (Poisson, explicit
  spawn tables, behaviours, fault regimes, clock overrides) survives
  ``from_json(to_json(spec)) == spec`` exactly;
* **null-scenario bit-identity** — a scenario with no behaviours,
  faults or overrides runs bit-identically to the direct
  ``run_scenario(policy, PoissonTraffic(...).generate(n))`` path, with
  the oracle attached, serially and across ``jobs`` worker counts;
* **seed-keyed determinism** — the fuzzer's sampler and the runner are
  pure functions of their seeds.

The behaviour library's per-kind semantics (flags, monkey-patch
restoration, the emergency exemption) get direct unit checks at the
bottom.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.scenarios import (
    BehaviourSpec,
    ScenarioSpec,
    SpawnSpec,
    TrafficSpec,
    build_world,
    random_fault_spec,
    random_spec,
    red_light_runner_spec,
    run_spec,
    run_spec_replicated,
    scale_model_specs,
)
from repro.sim import run_scenario
from repro.traffic import PoissonTraffic

POLICIES = ("vt-im", "crossroads", "aim")


def _null_spec(policy="crossroads", seed=17, cars=6):
    return ScenarioSpec(
        name="null",
        traffic=TrafficSpec(flow=0.4, cars=cars, seed=seed),
        policy=policy,
        seed=seed,
    )


def _spec_zoo():
    """One spec per DSL shape, for round-trip parametrisation."""
    return [
        _null_spec(),
        red_light_runner_spec(),
        random_fault_spec("aim", 202),  # carries a full FaultConfig
        ScenarioSpec(
            name="kitchen-sink",
            traffic=TrafficSpec(
                flow=0.7, cars=5, seed=3, turn_left=0.5, turn_straight=0.25,
                turn_right=0.25, speed_min=1.0, speed_max=2.5,
                min_headway=1.0,
            ),
            policy="vt-im",
            seed=99,
            behaviours=(
                BehaviourSpec(kind="stall_in_box", vehicle_id=1,
                              duration=2.5, value=0.4),
                BehaviourSpec(kind="sensor_dropout", vehicle_id=4,
                              start=1.5, duration=3.0),
            ),
            clock_offset_bound=0.002,
            clock_drift_bound=1e-5,
            max_sim_time=90.0,
            ideal_vehicles=True,
            starvation_bound=45.0,
            expect=("collision",),
            grid_nodes=3,
        ),
    ]


class TestJsonRoundTrip:
    """Satellite (c): ``from_json(to_json(spec)) == spec`` exactly."""

    @pytest.mark.parametrize("spec", _spec_zoo(), ids=lambda s: s.name)
    def test_round_trip_identity(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = red_light_runner_spec(expect=("ungranted_entry",))
        path = tmp_path / "spec.json"
        spec.to_json(str(path))
        assert ScenarioSpec.from_file(str(path)) == spec

    def test_json_form_omits_defaults(self):
        """Null specs serialise minimally — the library stays readable."""
        data = json.loads(_null_spec().to_json())
        assert set(data) == {"name", "policy", "seed", "traffic"}
        assert set(data["traffic"]) == {"kind", "flow", "cars", "seed"}

    def test_scale_model_specs_round_trip_and_match_fig71(self):
        from repro.traffic import scale_model_scenarios

        specs = scale_model_specs()
        scenarios = scale_model_scenarios()
        assert [s.name for s in specs] == [s.name for s in scenarios]
        for spec, scenario in zip(specs, scenarios):
            assert ScenarioSpec.from_json(spec.to_json()) == spec
            assert spec.arrivals() == list(scenario.arrivals)


class TestSpecValidation:
    def test_unknown_behaviour_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            BehaviourSpec(kind="teleport", vehicle_id=0)

    def test_behaviour_target_must_exist(self):
        with pytest.raises(ValueError, match="spawns only 3"):
            ScenarioSpec(
                name="bad",
                traffic=TrafficSpec(cars=3),
                behaviours=(BehaviourSpec(kind="run_red_light",
                                          vehicle_id=3),),
            )

    def test_explicit_traffic_needs_spawns(self):
        with pytest.raises(ValueError, match="at least one spawn"):
            TrafficSpec(kind="explicit")

    def test_unknown_approach_rejected(self):
        with pytest.raises(ValueError):
            SpawnSpec(time=0.0, entry="Q")

    def test_bad_starvation_bound_rejected(self):
        with pytest.raises(ValueError, match="starvation_bound"):
            ScenarioSpec(name="bad", starvation_bound=0.0)


class TestNullBitIdentity:
    """The DSL's load-bearing contract: a null scenario *is* the plain
    ``run_scenario`` call, bit for bit, with the oracle attached."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_null_summary_matches_run_scenario(self, policy):
        spec = _null_spec(policy=policy)
        assert spec.is_null()
        assert spec.world_config() is None
        outcome = run_spec(spec)
        direct = run_scenario(
            policy, PoissonTraffic(0.4, seed=17).generate(6), seed=17
        )
        assert outcome.result.summary() == direct.summary()
        assert outcome.violations == ()

    def test_oracle_and_behaviour_hooks_are_observers(self):
        """Attaching the oracle (or not) never changes the metrics."""
        spec = _null_spec()
        with_oracle = run_spec(spec, oracle=True)
        without = run_spec(spec, oracle=False)
        assert with_oracle.result.summary() == without.result.summary()

    def test_replicated_parallel_matches_serial(self):
        """jobs=1 and jobs=2 produce identical per-seed outcomes."""
        spec = _null_spec()  # traffic seed pinned -> fixed workload
        serial = run_spec_replicated(spec, seeds=(1, 2), jobs=1)
        parallel = run_spec_replicated(spec, seeds=(1, 2), jobs=2)
        assert [r.result.summary() for r in serial] == [
            r.result.summary() for r in parallel
        ]
        assert [r.violations for r in serial] == [
            r.violations for r in parallel
        ]


class TestSeedDeterminism:
    def test_sampler_is_seed_keyed(self):
        draws_a = [random_spec(np.random.default_rng(5), index=i)
                   for i in range(8)]
        draws_b = [random_spec(np.random.default_rng(5), index=i)
                   for i in range(8)]
        assert draws_a == draws_b

    def test_runner_is_deterministic(self):
        spec = red_light_runner_spec()
        first, second = run_spec(spec), run_spec(spec)
        assert first.result.summary() == second.result.summary()
        assert first.violations == second.violations


class TestBehaviourLibrary:
    """Per-kind unit checks against small hand-built scenarios."""

    def _single_vehicle(self, name, behaviour):
        return ScenarioSpec(
            name=name,
            traffic=TrafficSpec(kind="explicit",
                                spawns=(SpawnSpec(time=0.0),)),
            behaviours=(behaviour,),
            max_sim_time=60.0,
        )

    def test_red_light_runner_flagged(self):
        world, oracle = build_world(red_light_runner_spec())
        world.run()
        rogue = [v for v in world.vehicles if v.info.vehicle_id == 0][0]
        assert rogue._scenario_rogue
        assert "ungranted_entry" in oracle.kinds
        assert all(v.vehicle_id == 0
                   for v in oracle.by_kind("ungranted_entry"))

    def test_emergency_preempt_is_exempt(self):
        """Same geometry as the red-light runner, but the emergency
        flag suppresses the TE-window violation (pre-emption is
        sanctioned; collisions would still be flagged)."""
        rogue = red_light_runner_spec()
        spec = replace(
            rogue, name="emergency",
            behaviours=(replace(rogue.behaviours[0],
                                kind="emergency_preempt"),),
        )
        world, oracle = build_world(spec)
        world.run()
        v0 = [v for v in world.vehicles if v.info.vehicle_id == 0][0]
        assert v0._scenario_emergency
        assert "ungranted_entry" not in oracle.kinds

    def test_stall_in_box_restores_the_engine(self):
        spec = self._single_vehicle(
            "stall", BehaviourSpec(kind="stall_in_box", vehicle_id=0,
                                   duration=2.0, value=0.5))
        world, _ = build_world(spec)
        result = world.run()
        v0 = world.vehicles[0]
        assert v0._scenario_stalled
        # the zero-velocity shadow was popped after `duration`
        assert "_commanded_velocity" not in v0.__dict__
        assert result.n_finished == 1  # alone, a stall only delays

    def test_sensor_dropout_restores_odometry(self):
        spec = self._single_vehicle(
            "dropout", BehaviourSpec(kind="sensor_dropout", vehicle_id=0,
                                     start=0.5, duration=1.0))
        world, _ = build_world(spec)
        result = world.run()
        v0 = world.vehicles[0]
        assert v0._scenario_dropout
        assert "measured_position" not in v0.plant.__dict__
        assert result.n_finished == 1

    def test_empty_behaviour_list_installs_nothing(self):
        world, _ = build_world(_null_spec())
        assert world.on_spawn is None
