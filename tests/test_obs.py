"""Tests for the structured observability layer (``repro.obs``).

Covers the event bus (ring buffer, null sink), exchange-span
reconstruction, the exporters (JSONL + Chrome trace-event), and the
ISSUE 4 acceptance properties:

* tracing disabled -> ``SimResult.summary()`` **bit-identical** to a
  traced run of the same seed (the null sink really is zero-cost on
  the scientific metrics);
* a traced run yields >= 1 complete exchange span per admitted vehicle
  with the full TT -> IM-compute -> reply -> TE timeline;
* per-machine protocol counters on ``SimResult.perf`` merge
  identically under ``jobs=1`` and ``jobs=2``.
"""

import json

import pytest

from repro.obs import (
    EventLog,
    NULL_LOG,
    NullLog,
    ObsEvent,
    build_spans,
    percentile,
    span_stats,
    to_chrome_trace,
    to_jsonl,
)
from repro.sim.replication import run_replicated
from repro.sim.world import run_scenario
from repro.traffic.generator import PoissonTraffic


def _arrivals(n=10, flow=0.3, seed=11):
    return PoissonTraffic(flow, seed=seed).generate(n)


# ---------------------------------------------------------------------------
# Event bus
# ---------------------------------------------------------------------------
class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("net.send", 1.0, "V1", corr=5, msg="CrossingRequest")
        log.emit("net.deliver", 1.2, "IM", corr=5)
        log.emit("vehicle.spawn", 0.0, "V2")
        assert len(log) == 3
        assert log.emitted == 3
        assert log.dropped == 0
        assert [e.kind for e in log.by_corr(5)] == ["net.send", "net.deliver"]
        assert log.counts()["net.send"] == 1
        assert log.by_kind("vehicle.spawn")[0].actor == "V2"

    def test_ring_buffer_bounds_memory(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", float(i), "kernel")
        assert len(log) == 4
        assert log.emitted == 10
        assert log.dropped == 6
        # Newest events are the ones retained.
        assert [e.t for e in log.events] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_unbounded_capacity(self):
        log = EventLog(capacity=None)
        for i in range(100):
            log.emit("tick", float(i), "kernel")
        assert len(log) == 100 and log.dropped == 0

    def test_event_to_dict_omits_empty(self):
        event = ObsEvent(t=1.5, kind="net.send", actor="V1")
        assert event.to_dict() == {"t": 1.5, "kind": "net.send", "actor": "V1"}
        rich = ObsEvent(t=2.0, kind="net.drop", actor="ch", corr=3,
                        data={"reason": "loss"})
        assert rich.to_dict()["corr"] == 3
        assert rich.to_dict()["reason"] == "loss"

    def test_null_sink_is_inert(self):
        assert NULL_LOG.enabled is False
        assert NULL_LOG.kernel is False
        assert NULL_LOG.emit("anything", 0.0, "x", corr=9, data=1) is None
        assert len(NULL_LOG) == 0
        assert list(NULL_LOG) == []
        assert isinstance(NULL_LOG, NullLog)


# ---------------------------------------------------------------------------
# Span reconstruction (unit level)
# ---------------------------------------------------------------------------
def _exchange_events(corr=7, actor="V1"):
    """A hand-built complete exchange timeline."""
    return [
        ObsEvent(0.00, "span.request", actor, corr,
                 {"msg": "CrossingRequest", "tt": 0.001}),
        ObsEvent(0.01, "im.recv", "IM", corr, {"sender": actor}),
        ObsEvent(0.02, "im.compute.begin", "IM", corr, {}),
        ObsEvent(0.05, "im.compute.end", "IM", corr, {"service": 0.03}),
        ObsEvent(0.05, "im.reply", "IM", corr, {"te": 4.2}),
        ObsEvent(0.06, "span.reply", actor, corr, {"rtd": 0.06}),
        ObsEvent(4.20, "vehicle.execute", actor, corr, {"te": 4.2}),
    ]


class TestSpans:
    def test_complete_span_timeline(self):
        (span,) = build_spans(_exchange_events())
        assert span.complete and not span.incomplete and not span.retried
        assert span.actor == "V1"
        assert span.kind == "CrossingRequest"
        assert span.tt == 0.001
        assert span.t_im_recv == 0.01
        assert span.compute_delay == pytest.approx(0.03)
        assert span.rtd == pytest.approx(0.06)
        assert span.te == 4.2
        assert span.t_execute == 4.20
        assert span.end_time == 4.20
        assert span.replies == 1

    def test_timeout_span_is_incomplete(self):
        events = [
            ObsEvent(0.0, "span.request", "V1", 3, {"msg": "CrossingRequest"}),
            ObsEvent(0.01, "net.drop", "ch", 3, {"reason": "loss"}),
            ObsEvent(0.5, "span.timeout", "V1", 3, {}),
        ]
        (span,) = build_spans(events)
        assert span.incomplete and span.retried
        assert span.drops == ["loss"]
        assert span.rtd is None

    def test_uncorrelated_events_ignored(self):
        events = [ObsEvent(0.0, "vehicle.spawn", "V1", 0, {})]
        assert build_spans(events) == []

    def test_orphan_events_never_crash(self):
        # Request evicted from the ring buffer: later events still fold.
        events = _exchange_events()[1:]
        (span,) = build_spans(events)
        assert span.incomplete
        assert span.compute_delay == pytest.approx(0.03)

    def test_spans_sorted_by_request_time(self):
        events = _exchange_events(corr=2) + [
            ObsEvent(-0.5, "span.request", "V9", 1, {"msg": "TimeSyncRequest"}),
            ObsEvent(-0.4, "span.reply", "V9", 1, {"rtd": 0.1}),
        ]
        spans = build_spans(events)
        assert [s.corr for s in spans] == [1, 2]

    def test_percentile(self):
        assert percentile([], 95.0) == 0.0
        assert percentile([3.0], 50.0) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        with pytest.raises(ValueError):
            percentile([1.0], 150.0)

    def test_span_stats_keys_and_values(self):
        stats = span_stats(build_spans(_exchange_events()))
        assert stats["spans_total"] == 1.0
        assert stats["spans_complete"] == 1.0
        assert stats["spans_incomplete"] == 0.0
        assert stats["spans_retried"] == 0.0
        assert stats["spans_executed"] == 1.0
        assert stats["rtd_p50_s"] == pytest.approx(0.06)
        assert stats["rtd_max_s"] == pytest.approx(0.06)
        assert stats["compute_p95_s"] == pytest.approx(0.03)

    def test_span_stats_empty_is_defined(self):
        stats = span_stats([])
        assert stats["spans_total"] == 0.0
        assert stats["rtd_p95_s"] == 0.0
        assert stats["compute_max_s"] == 0.0


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("net.send", 0.5, "V1", corr=2, msg="CrossingRequest")
        log.emit("vehicle.spawn", 0.0, "V1")
        path = tmp_path / "events.jsonl"
        text = to_jsonl(log.events, path=str(path))
        lines = [json.loads(line) for line in text.splitlines()]
        assert lines[0]["kind"] == "net.send" and lines[0]["corr"] == 2
        assert lines[1] == {"t": 0.0, "kind": "vehicle.spawn", "actor": "V1"}
        assert path.read_text() == text

    def test_chrome_trace_shape(self, tmp_path):
        events = _exchange_events()
        spans = build_spans(events)
        path = tmp_path / "out.trace.json"
        doc = to_chrome_trace(events, path=str(path), spans=spans)
        # Valid Perfetto/chrome://tracing JSON on disk.
        assert json.loads(path.read_text()) == doc
        assert doc["displayTimeUnit"] == "ms"
        records = doc["traceEvents"]
        phases = {r["ph"] for r in records}
        assert {"M", "X", "i"} <= phases
        # One complete slice for the exchange, in microseconds.
        slices = [r for r in records if r["ph"] == "X"]
        exchange = next(r for r in slices if r["name"].startswith("Crossing"))
        assert exchange["ts"] == pytest.approx(0.0)
        assert exchange["dur"] == pytest.approx(4.20 * 1e6)
        assert exchange["args"]["complete"] is True
        compute = next(r for r in slices if r["name"].startswith("im.compute"))
        assert compute["dur"] == pytest.approx(0.03 * 1e6)
        # Thread metadata names every actor.
        names = {r["args"]["name"] for r in records if r["ph"] == "M"}
        assert {"IM", "V1"} <= names


# ---------------------------------------------------------------------------
# Acceptance: traced runs
# ---------------------------------------------------------------------------
POLICIES = ("crossroads", "vt-im", "aim")


class TestTracedRuns:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_summary_bit_identical_with_tracing(self, policy):
        """Attaching an EventLog must not change the science."""
        arrivals = _arrivals()
        plain = run_scenario(policy, arrivals, seed=11)
        traced = run_scenario(policy, arrivals, seed=11, obs=EventLog())
        assert plain.summary() == traced.summary()

    def test_untraced_runs_have_no_span_stats(self):
        result = run_scenario("crossroads", _arrivals(), seed=11)
        assert result.obs == {}

    def test_complete_span_per_admitted_vehicle(self):
        """>= 1 complete crossing span per finished vehicle, with the
        full TT -> IM-compute -> reply -> TE timeline."""
        log = EventLog()
        result = run_scenario("crossroads", _arrivals(), seed=11, obs=log)
        assert result.n_finished > 0
        spans = build_spans(log.events)
        crossing = [s for s in spans if s.kind == "CrossingRequest"]
        complete = [s for s in crossing if s.complete]
        assert len(complete) >= result.n_finished
        executed_actors = {s.actor for s in crossing if s.t_execute is not None}
        assert len(executed_actors) >= result.n_finished
        for span in complete:
            assert span.tt is not None
            assert span.t_im_recv is not None
            assert span.compute_delay is not None and span.compute_delay >= 0
            assert span.rtd is not None and span.rtd > 0
            # Causality along the reconstructed timeline.
            assert span.t_request <= span.t_im_recv
            assert span.t_im_recv <= span.t_compute_begin
            assert span.t_compute_begin <= span.t_compute_end
            assert span.t_compute_end <= span.t_reply
        # The folded histogram rides on the result.
        assert result.obs["spans_complete"] >= float(result.n_finished)
        assert result.obs["rtd_p95_s"] > 0.0

    def test_span_stats_deterministic_per_seed(self):
        arrivals = _arrivals()
        a = run_scenario("crossroads", arrivals, seed=11, obs=EventLog())
        b = run_scenario("crossroads", arrivals, seed=11, obs=EventLog())
        assert a.obs == b.obs

    def test_kernel_events_opt_in(self):
        arrivals = _arrivals(n=4)
        quiet = EventLog()
        run_scenario("crossroads", arrivals, seed=11, obs=quiet)
        assert quiet.counts()["des.step"] == 0
        chatty = EventLog(kernel=True)
        run_scenario("crossroads", arrivals, seed=11, obs=chatty)
        assert chatty.counts()["des.step"] > 0

    def test_lifecycle_events_present(self):
        log = EventLog()
        result = run_scenario("crossroads", _arrivals(), seed=11, obs=log)
        counts = log.counts()
        assert counts["vehicle.spawn"] == len(result.records)
        assert counts["vehicle.exit"] == result.n_finished
        assert counts["net.send"] > 0 and counts["net.deliver"] > 0
        assert counts["im.recv"] > 0 and counts["im.reply"] > 0
        assert counts["sched.assign"] >= result.n_finished


# ---------------------------------------------------------------------------
# Acceptance: per-machine counters, serial == parallel
# ---------------------------------------------------------------------------
class TestMachineCounters:
    def test_machine_counters_on_perf(self):
        result = run_scenario("crossroads", _arrivals(), seed=11)
        perf = result.perf
        assert perf["count.machine.request_loop.exchanges"] > 0
        assert perf["count.machine.timesync.samples"] > 0
        assert perf["count.machine.sequence_guard.admitted"] > 0
        # Cross-check against the summary-level aggregates.
        assert perf["count.machine.degradation.entries"] == float(
            result.degraded_entries
        )
        assert perf["count.machine.request_loop.timeouts"] >= float(
            result.retries
        )

    def test_merged_counters_identical_jobs_1_vs_2(self):
        """The ISSUE 4 merge property: fold per-machine counters across
        ParallelRunner workers and get the same totals as serial."""
        arrivals = _arrivals(n=8)
        seeds = (1, 2, 3)
        serial = run_replicated("crossroads", arrivals, seeds=seeds, jobs=1)
        pooled = run_replicated("crossroads", arrivals, seeds=seeds, jobs=2)
        merged_serial = serial.merged_perf()
        merged_pooled = pooled.merged_perf()
        count_keys = {
            k for k in merged_serial if k.startswith("count.")
        }
        assert count_keys == {
            k for k in merged_pooled if k.startswith("count.")
        }
        machine_keys = {k for k in count_keys if ".machine." in k}
        assert machine_keys  # the per-machine counters did travel
        for key in count_keys:  # wall timers vary; counts must not
            assert merged_serial[key] == merged_pooled[key], key
