"""Unit tests for vehicle-agent behaviours.

Each test builds a minimal world by hand (one vehicle, scripted or
stock IM) so individual clauses — safe stop, retransmission, the stop
latch, replanning, TE timing — can be pinned down.
"""

import numpy as np
import pytest

from repro.core import make_im
from repro.des import Environment
from repro.geometry import Approach, ConflictTable, IntersectionGeometry, Movement, Turn
from repro.network import Channel, ConstantDelay
from repro.sensors.plant import PlantConfig
from repro.timesync import Clock
from repro.vehicle import AgentConfig, VehicleInfo, VehicleSpec, make_vehicle
from repro.vehicle.agent import VehicleState


GEOMETRY = IntersectionGeometry()
CONFLICTS = ConflictTable(GEOMETRY)


def build_world(policy="crossroads", with_im=True, spawn_speed=3.0,
                agent_config=None, seed=0, faults=None):
    env = Environment()
    channel = Channel(env, delay_model=ConstantDelay(0.003),
                      rng=np.random.default_rng(seed), faults=faults)
    im = make_im(policy, env, channel, GEOMETRY, conflicts=CONFLICTS) if with_im else None
    if not with_im:
        # Sync-only responder: NTP works, crossing requests vanish.
        from repro.network import SyncRequest, SyncResponse

        im_radio = channel.attach("IM")

        def sync_only(env):
            while True:
                msg = yield im_radio.receive()
                if isinstance(msg, SyncRequest):
                    now = env.now
                    im_radio.send(SyncResponse(
                        sender="IM", receiver=msg.sender,
                        t0=msg.t0, t1=now, t2=now,
                    ))

        env.process(sync_only(env))
    movement = Movement(Approach.SOUTH, Turn.STRAIGHT)
    info = VehicleInfo(vehicle_id=0, spec=VehicleSpec(), movement=movement)
    radio = channel.attach("V0")
    vehicle = make_vehicle(
        policy,
        env,
        info,
        radio,
        Clock(offset=0.1, rng=np.random.default_rng(seed)),
        path_length=GEOMETRY.crossing_distance(movement),
        spawn_speed=spawn_speed,
        plant_config=PlantConfig(accel_noise_std=0.02),
        config=agent_config or AgentConfig(),
        rng=np.random.default_rng(seed),
        plant_headroom=1.15,
    )
    return env, channel, im, vehicle


class TestHappyPath:
    @pytest.mark.parametrize("policy", ["crossroads", "vt-im", "aim"])
    def test_lone_vehicle_completes(self, policy):
        env, channel, im, vehicle = build_world(policy)
        env.run(until=15.0)
        assert vehicle.done
        assert vehicle.record.exit_time is not None
        assert vehicle.record.enter_time < vehicle.record.exit_time

    def test_sync_happens_before_request(self):
        env, channel, im, vehicle = build_world("crossroads")
        env.run(until=15.0)
        assert len(vehicle.ntp.samples) >= 1
        # Clock error corrected to well under the initial 100 ms offset.
        assert abs(vehicle.clock.error(env.now)) < 5e-3

    def test_rtd_recorded(self):
        env, channel, im, vehicle = build_world("crossroads")
        env.run(until=15.0)
        assert vehicle.record.rtds
        assert all(0 < r < 0.25 for r in vehicle.record.rtds)


class TestSafeStopClause:
    @pytest.mark.parametrize("policy", ["crossroads", "vt-im", "aim"])
    def test_vehicle_stops_without_im(self, policy):
        """No IM responses -> the vehicle must stop before the line."""
        env, channel, im, vehicle = build_world(policy, with_im=False)
        env.run(until=10.0)
        assert not vehicle.done
        assert vehicle.speed < 0.05
        assert vehicle.front <= vehicle.approach_length + 1e-6
        assert vehicle._hold

    def test_stop_latch_prevents_creep(self):
        env, channel, im, vehicle = build_world("crossroads", with_im=False)
        env.run(until=10.0)
        parked = vehicle.front
        env.run(until=60.0)
        assert vehicle.front - parked < 0.02

    def test_retransmissions_continue_while_stopped(self):
        env, channel, im, vehicle = build_world("crossroads", with_im=False)
        env.run(until=10.0)
        sent_early = vehicle.record.requests_sent
        env.run(until=20.0)
        assert vehicle.record.requests_sent > sent_early

    @pytest.mark.parametrize("seed", [0, 1, 7, 80399])
    def test_crawl_approach_parks_true_bumper_short_of_line(self, seed):
        """Regression for found-fault-ungranted_entry-aim-s80399: a long
        crawl integrates enough encoder bias that the latch, fired on
        odometry alone, can stop the *measured* bumper at the line with
        the true bumper already past it.  The drift-widened latch must
        park the true bumper strictly short for any noise realisation."""
        env, channel, im, vehicle = build_world(
            "aim", with_im=False, spawn_speed=0.15, seed=seed
        )
        env.run(until=40.0)
        assert vehicle._hold
        assert vehicle.speed < 0.05
        assert vehicle.front < vehicle.approach_length - 0.01
        assert vehicle.record.enter_time is None


class TestBackoff:
    def test_backoff_grows_and_caps(self):
        env, channel, im, vehicle = build_world("crossroads", with_im=False)
        env.run(until=30.0)
        assert vehicle._retry_timeout == pytest.approx(0.8)

    def test_backoff_reset_on_response(self):
        env, channel, im, vehicle = build_world("crossroads")
        env.run(until=15.0)
        assert vehicle._retry_timeout == pytest.approx(
            vehicle.config.retry_timeout
        )


class TestCrossroadsTiming:
    def test_plan_starts_at_te(self):
        """The committed plan must not begin before the commanded TE."""
        env, channel, im, vehicle = build_world("crossroads")
        # Run until the plan is committed.
        while vehicle.plan is None and env.now < 10.0:
            env.run(until=env.now + 0.05)
        assert vehicle.plan is not None
        # TE is TT + WC-RTD; request went out shortly after spawn, so
        # the plan anchor must be at least WC-RTD after spawn.
        assert vehicle.plan.start_time >= vehicle.record.spawn_time + 0.10

    def test_arrives_near_assigned_toa(self):
        env, channel, im, vehicle = build_world("crossroads")
        env.run(until=15.0)
        toa = im.scheduler.comparisons  # scheduler was exercised
        record = vehicle.record
        assert record.enter_time is not None
        # Tracking error stayed within the sensing buffer.
        assert record.max_tracking_error < 0.078


class TestVtimSemantics:
    def test_executes_on_receipt(self):
        """VT vehicles commit a plan anchored at receipt time (no TE)."""
        env, channel, im, vehicle = build_world("vt-im")
        while vehicle.plan is None and env.now < 10.0:
            env.run(until=env.now + 0.02)
        assert vehicle.plan is not None
        # Anchored "now" at commit: start time is essentially current.
        assert vehicle.plan.start_time <= env.now + 1e-9


class TestAimSemantics:
    def test_accept_keeps_cruising(self):
        env, channel, im, vehicle = build_world("aim")
        env.run(until=15.0)
        assert vehicle.done
        assert vehicle.record.rejects_received == 0

    def test_lapsed_window_rejected_at_launch(self):
        """A launch grant whose window has lapsed by the time the wait
        ends (clock drift ran the local clock past ToA + WC-RTD) must
        not be executed: the vehicle returns the slot and renegotiates
        instead of entering the box on an invalidated reservation."""
        config = AgentConfig(aim_propose_min_speed=5.0, max_rtd=0.002)
        env = Environment()
        channel = Channel(env, delay_model=ConstantDelay(0.003),
                          rng=np.random.default_rng(0))
        im = make_im("aim", env, channel, GEOMETRY, conflicts=CONFLICTS)
        movement = Movement(Approach.SOUTH, Turn.STRAIGHT)
        info = VehicleInfo(vehicle_id=0, spec=VehicleSpec(), movement=movement)
        # 5% fast clock: a 0.2 s launch wait overshoots ToA by ~10 ms,
        # past the 2 ms WC-RTD execution tolerance.
        vehicle = make_vehicle(
            "aim", env, info, channel.attach("V0"),
            Clock(offset=0.1, drift=0.05, rng=np.random.default_rng(0)),
            path_length=GEOMETRY.crossing_distance(movement),
            spawn_speed=3.0,
            plant_config=PlantConfig(accel_noise_std=0.02),
            config=config,
            rng=np.random.default_rng(0),
            plant_headroom=1.15,
        )
        env.run(until=20.0)
        assert vehicle.record.stale_rejected >= 1
        # Every grant went stale at wake-up, so the vehicle never
        # committed a plan and never crossed the line ungranted.
        assert vehicle.record.enter_time is None
        assert vehicle.front <= vehicle.approach_length + 1e-6

    def test_propose_floor_forces_stop_then_launch(self):
        """Below the propose floor the vehicle never sends a cruise
        proposal: it safe-stops at the line and crosses via a launch
        reservation instead."""
        config = AgentConfig(aim_propose_min_speed=5.0)  # cruise never viable
        env, channel, im, vehicle = build_world("aim", agent_config=config,
                                                spawn_speed=3.0)
        env.run(until=20.0)
        assert vehicle.done
        assert vehicle.record.came_to_stop
        # The only accepted reservation was a launch (vc == 0 proposal),
        # so the IM saw no constant-speed request from this vehicle.
        assert im.stats.accepts == 1


class TestFollowClamp:
    def test_follower_never_hits_leader(self):
        env = Environment()
        channel = Channel(env, delay_model=ConstantDelay(0.003),
                          rng=np.random.default_rng(1))
        channel.attach("IM")  # silent IM: both will stop at the line
        movement = Movement(Approach.SOUTH, Turn.STRAIGHT)

        def make(vid, predecessor=None, spawn_speed=3.0):
            info = VehicleInfo(vehicle_id=vid, spec=VehicleSpec(), movement=movement)
            return make_vehicle(
                "crossroads", env, info, channel.attach(f"V{vid}"),
                Clock(rng=np.random.default_rng(vid)),
                path_length=GEOMETRY.crossing_distance(movement),
                spawn_speed=spawn_speed,
                predecessor=predecessor,
                rng=np.random.default_rng(vid),
            )

        leader = make(0)
        follower = None

        def spawn_follower(env):
            yield env.timeout(0.6)
            nonlocal follower
            follower = make(1, predecessor=lambda: leader)

        env.process(spawn_follower(env))
        env.run(until=12.0)
        assert follower is not None
        # Both parked; follower strictly behind with a positive gap.
        assert leader.speed < 0.05 and follower.speed < 0.05
        assert leader.rear - follower.front > 0.05


class TestSyncSampleGuard:
    """Delay-spiked NTP exchanges must not be trusted on their own.

    The offset-estimate error of one NTP exchange is half its round
    trip, so a single spiked sync sample skews the vehicle clock by
    tens of ms — past the whole Ch 3.2 sync buffer and, for
    Crossroads, into cross traffic's window.  The vehicle re-exchanges
    until a clean sample arrives (or the attempt budget runs out, then
    the minimum-delay sample wins).
    """

    @staticmethod
    def _spiky_injector(prob=1.0):
        from repro.faults import FaultConfig, FaultInjector

        config = FaultConfig(spike_prob=prob, spike_low=0.1, spike_high=0.1)
        return FaultInjector(config, rng=np.random.default_rng(7))

    def test_clean_channel_syncs_on_first_sample(self):
        env, channel, im, vehicle = build_world("crossroads")
        env.run(until=2.0)
        assert len(vehicle.ntp.samples) == 1
        assert vehicle.ntp.samples[0].delay <= vehicle.config.sync_rtt_limit

    def test_always_spiked_channel_exhausts_budget_then_degrades(self):
        env, channel, im, vehicle = build_world(
            "crossroads", faults=self._spiky_injector(prob=1.0)
        )
        env.run(until=5.0)
        # Every exchange was spiked: the full budget is spent and the
        # best (minimum-delay) sample is used anyway.
        assert len(vehicle.ntp.samples) == vehicle.config.sync_attempts
        assert vehicle.record.retries >= vehicle.config.sync_attempts - 1
        best = vehicle.ntp.best
        assert best.delay == min(s.delay for s in vehicle.ntp.samples)

    def test_occasional_spike_is_resampled_away(self):
        env, channel, im, vehicle = build_world(
            "crossroads", faults=self._spiky_injector(prob=0.5), seed=3
        )
        env.run(until=15.0)
        samples = vehicle.ntp.samples
        assert samples, "vehicle never synced"
        # Whatever mix of spiked/clean exchanges happened, the sample
        # actually used obeys the trust bound unless the budget ran dry.
        if len(samples) < vehicle.config.sync_attempts:
            assert samples[-1].delay <= vehicle.config.sync_rtt_limit
        assert abs(vehicle.clock.error(env.now)) < 0.02
