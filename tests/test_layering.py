"""The DESIGN.md layer rules hold (tools/check_layers.py is clean).

Runs the same AST lint CI runs, so a layer violation fails tier-1
locally instead of surfacing only on push.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "check_layers", REPO_ROOT / "tools" / "check_layers.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_layer_violations():
    lint = _load_lint()
    violations, graph = lint.check(REPO_ROOT / "src")
    assert violations == []
    # Spot-check the spine of the architecture is actually observed.
    assert "protocol" in graph.get("vehicle", set())
    assert "protocol" in graph.get("core", set())
    assert "core" in graph.get("sim", set())
    assert "sim" in graph.get("grid", set())
    # The CLI resolves commands lazily, so the grid edge shows on the
    # facade (module-level) rather than on cli.
    assert "grid" in graph.get("<top>", set())
    # Siblings at level 7 stay independent.
    assert "analysis" not in graph.get("grid", set())
    assert "grid" not in graph.get("analysis", set())


def test_seam_rules_catch_forbidden_imports():
    """The FORBIDDEN seam lint bites: engine->grid/scenarios and any
    sim/grid import of the in-process Channel (module-level, lazy, or
    through the repro.network re-export) are flagged."""
    import ast
    from pathlib import Path

    lint = _load_lint()
    fake = Path("fake.py")

    def violations(module, source):
        return list(lint._forbidden_violations(module, ast.parse(source), fake))

    # The seam rules hold on the real tree (check() was clean above),
    # and each banned edge is actually detected:
    assert violations("repro.sim.engine", "import repro.grid")
    assert violations("repro.sim.engine",
                      "def f():\n    from repro.scenarios import install")
    assert violations("repro.sim.world",
                      "from repro.network.channel import Channel")
    assert violations("repro.grid.world",
                      "def f():\n    from repro.network import Channel")
    # The sanctioned path through the Transport seam stays open.
    assert not violations(
        "repro.sim.world",
        "from repro.network.transport import Transport, default_transport",
    )
    assert not violations(
        "repro.grid.world", "from repro.network import default_transport"
    )


def test_engine_and_transport_rules_registered():
    """The tentpole's seam rules stay pinned in the lint config."""
    lint = _load_lint()
    assert "repro.grid" in lint.FORBIDDEN["repro.sim.engine"]
    assert "repro.scenarios" in lint.FORBIDDEN["repro.sim.engine"]
    for scope in ("repro.sim", "repro.grid"):
        assert "repro.network.channel" in lint.FORBIDDEN[scope]


def test_every_package_has_a_level():
    lint = _load_lint()
    packages = {
        p.name
        for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    assert packages <= set(lint.LAYERS)
