"""The DESIGN.md layer rules hold (tools/check_layers.py is clean).

Runs the same AST lint CI runs, so a layer violation fails tier-1
locally instead of surfacing only on push.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "check_layers", REPO_ROOT / "tools" / "check_layers.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_layer_violations():
    lint = _load_lint()
    violations, graph = lint.check(REPO_ROOT / "src")
    assert violations == []
    # Spot-check the spine of the architecture is actually observed.
    assert "protocol" in graph.get("vehicle", set())
    assert "protocol" in graph.get("core", set())
    assert "core" in graph.get("sim", set())
    assert "sim" in graph.get("grid", set())
    # The CLI resolves commands lazily, so the grid edge shows on the
    # facade (module-level) rather than on cli.
    assert "grid" in graph.get("<top>", set())
    # Siblings at level 7 stay independent.
    assert "analysis" not in graph.get("grid", set())
    assert "grid" not in graph.get("analysis", set())


def test_every_package_has_a_level():
    lint = _load_lint()
    packages = {
        p.name
        for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    assert packages <= set(lint.LAYERS)
