"""Tests for intersection geometry, conflicts, tiles and collision."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Approach,
    ConflictTable,
    IntersectionGeometry,
    Movement,
    OrientedRect,
    Path,
    TileGrid,
    TileReservations,
    Turn,
    exit_approach,
    rects_overlap,
    turn_for,
)


class TestApproach:
    def test_headings(self):
        assert Approach.SOUTH.heading == pytest.approx(math.pi / 2)
        assert Approach.WEST.heading == pytest.approx(0.0)
        assert Approach.NORTH.heading == pytest.approx(-math.pi / 2)
        assert Approach.EAST.heading == pytest.approx(math.pi)

    def test_exit_approach_straight_is_opposite(self):
        assert exit_approach(Approach.SOUTH, Turn.STRAIGHT) is Approach.NORTH
        assert exit_approach(Approach.EAST, Turn.STRAIGHT) is Approach.WEST

    def test_exit_approach_turns(self):
        # From the south driving north: right exits east, left west.
        assert exit_approach(Approach.SOUTH, Turn.RIGHT) is Approach.EAST
        assert exit_approach(Approach.SOUTH, Turn.LEFT) is Approach.WEST
        assert exit_approach(Approach.WEST, Turn.RIGHT) is Approach.SOUTH
        assert exit_approach(Approach.WEST, Turn.LEFT) is Approach.NORTH


class TestRoutingKernel:
    """Exhaustive table tests for the hop-transition kernel
    (``exit_approach`` / ``turn_for`` / ``Approach.opposite``) the
    corridor router builds on."""

    #: The full 4-approach x 3-turn exit-arm table, written out by hand
    #: from the driving rules (right-hand traffic; a vehicle *from* X
    #: drives away from X): straight exits the opposite arm, right is
    #: 90 deg clockwise from the travel direction, left 90 deg CCW.
    TABLE = {
        (Approach.NORTH, Turn.STRAIGHT): Approach.SOUTH,
        (Approach.NORTH, Turn.RIGHT): Approach.WEST,
        (Approach.NORTH, Turn.LEFT): Approach.EAST,
        (Approach.EAST, Turn.STRAIGHT): Approach.WEST,
        (Approach.EAST, Turn.RIGHT): Approach.NORTH,
        (Approach.EAST, Turn.LEFT): Approach.SOUTH,
        (Approach.SOUTH, Turn.STRAIGHT): Approach.NORTH,
        (Approach.SOUTH, Turn.RIGHT): Approach.EAST,
        (Approach.SOUTH, Turn.LEFT): Approach.WEST,
        (Approach.WEST, Turn.STRAIGHT): Approach.EAST,
        (Approach.WEST, Turn.RIGHT): Approach.SOUTH,
        (Approach.WEST, Turn.LEFT): Approach.NORTH,
    }

    def test_exit_approach_full_table(self):
        for (entry, turn), expected in self.TABLE.items():
            assert exit_approach(entry, turn) is expected, (entry, turn)

    def test_turn_for_inverts_exit_approach(self):
        for entry in Approach:
            for turn in Turn:
                arm = exit_approach(entry, turn)
                assert turn_for(entry, arm) is turn, (entry, turn)

    def test_turn_for_uturn_is_none(self):
        for entry in Approach:
            assert turn_for(entry, entry) is None

    def test_three_turns_cover_three_arms(self):
        for entry in Approach:
            arms = {exit_approach(entry, turn) for turn in Turn}
            assert len(arms) == 3
            assert entry not in arms  # no movement re-exits the entry arm

    def test_opposite_is_involution(self):
        for approach in Approach:
            assert approach.opposite is not approach
            assert approach.opposite.opposite is approach

    def test_opposite_pairs(self):
        assert Approach.NORTH.opposite is Approach.SOUTH
        assert Approach.EAST.opposite is Approach.WEST

    def test_straight_exits_opposite_arm(self):
        for entry in Approach:
            assert exit_approach(entry, Turn.STRAIGHT) is entry.opposite


class TestPath:
    def test_length_of_straight(self):
        path = Path(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert path.length == pytest.approx(5.0)

    def test_point_at_interpolates(self):
        path = Path(np.array([[0.0, 0.0], [10.0, 0.0]]))
        assert path.point_at(4.0) == pytest.approx([4.0, 0.0])

    def test_point_at_clamps(self):
        path = Path(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert path.point_at(-5.0) == pytest.approx([0.0, 0.0])
        assert path.point_at(99.0) == pytest.approx([1.0, 0.0])

    def test_heading_at(self):
        path = Path(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert path.heading_at(0.5) == pytest.approx(math.pi / 4)

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            Path(np.array([[0.0, 0.0]]))


class TestIntersectionGeometry:
    @pytest.fixture(scope="class")
    def geometry(self):
        return IntersectionGeometry()

    def test_twelve_movements(self, geometry):
        assert len(geometry.movements) == 12

    def test_straight_path_length_is_box(self, geometry):
        m = Movement(Approach.SOUTH, Turn.STRAIGHT)
        assert geometry.crossing_distance(m) == pytest.approx(1.2, abs=1e-6)

    def test_right_turn_shorter_than_left(self, geometry):
        right = geometry.crossing_distance(Movement(Approach.SOUTH, Turn.RIGHT))
        left = geometry.crossing_distance(Movement(Approach.SOUTH, Turn.LEFT))
        assert right < left
        # Quarter circles with radii box/2 -+ lane/2.
        assert right == pytest.approx((0.6 - 0.225) * math.pi / 2, rel=1e-3)
        assert left == pytest.approx((0.6 + 0.225) * math.pi / 2, rel=1e-3)

    def test_entry_point_on_box_edge(self, geometry):
        entry = geometry.entry_point(Approach.SOUTH)
        assert entry[1] == pytest.approx(-0.6)
        assert entry[0] == pytest.approx(0.225)  # right-hand lane offset

    def test_transmission_point_upstream(self, geometry):
        tp = geometry.transmission_point(Approach.SOUTH)
        assert tp[1] == pytest.approx(-3.6)

    def test_paths_start_at_entry_and_leave_box(self, geometry):
        for movement in geometry.movements:
            path = geometry.path(movement)
            start = path.point_at(0.0)
            end = path.point_at(path.length)
            assert max(abs(start[0]), abs(start[1])) == pytest.approx(0.6, abs=1e-6)
            assert max(abs(end[0]), abs(end[1])) == pytest.approx(0.6, abs=1e-3)

    def test_paths_stay_inside_box(self, geometry):
        for movement in geometry.movements:
            path = geometry.path(movement)
            pts, _ = path.sample(0.05)
            assert np.all(np.abs(pts) <= 0.6 + 1e-6)

    def test_contains(self, geometry):
        assert geometry.contains(0.0, 0.0)
        assert not geometry.contains(0.7, 0.0)
        assert geometry.contains(0.7, 0.0, margin=0.2)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            IntersectionGeometry(box=-1.0)
        with pytest.raises(ValueError):
            IntersectionGeometry(lane_width=0.9, box=1.2)


class TestConflictTable:
    @pytest.fixture(scope="class")
    def table(self):
        return ConflictTable(IntersectionGeometry())

    def test_symmetric(self, table):
        for a in table.geometry.movements:
            for b in table.geometry.movements:
                assert table.conflicts(a, b) == table.conflicts(b, a)

    def test_same_lane_always_conflicts(self, table):
        a = Movement(Approach.SOUTH, Turn.STRAIGHT)
        b = Movement(Approach.SOUTH, Turn.LEFT)
        assert table.conflicts(a, b)
        iv = table.intervals(a, b)[0]
        assert iv.a_in == 0.0
        assert iv.a_out == pytest.approx(table.geometry.crossing_distance(a))

    def test_crossing_straights_conflict(self, table):
        a = Movement(Approach.SOUTH, Turn.STRAIGHT)
        b = Movement(Approach.EAST, Turn.STRAIGHT)
        assert table.conflicts(a, b)

    def test_opposite_straights_do_not_conflict(self, table):
        a = Movement(Approach.SOUTH, Turn.STRAIGHT)
        b = Movement(Approach.NORTH, Turn.STRAIGHT)
        assert not table.conflicts(a, b)

    def test_adjacent_right_turns_compatible(self, table):
        a = Movement(Approach.SOUTH, Turn.RIGHT)
        b = Movement(Approach.NORTH, Turn.RIGHT)
        assert not table.conflicts(a, b)

    def test_opposing_left_turns_conflict(self, table):
        a = Movement(Approach.SOUTH, Turn.LEFT)
        b = Movement(Approach.NORTH, Turn.LEFT)
        assert table.conflicts(a, b)

    def test_interval_bounds_within_paths(self, table):
        for a in table.geometry.movements:
            for b in table.geometry.movements:
                for iv in table.intervals(a, b):
                    assert 0.0 <= iv.a_in <= iv.a_out <= table.geometry.crossing_distance(a) + 1e-6
                    assert 0.0 <= iv.b_in <= iv.b_out <= table.geometry.crossing_distance(b) + 1e-6

    def test_swapped_interval(self, table):
        a = Movement(Approach.SOUTH, Turn.STRAIGHT)
        b = Movement(Approach.EAST, Turn.STRAIGHT)
        iva = table.intervals(a, b)[0]
        ivb = table.intervals(b, a)[0]
        assert iva.a_in == ivb.b_in
        assert iva.b_out == ivb.a_out

    def test_compatible_pairs_nonempty(self, table):
        assert len(table.compatible_pairs()) > 0


class TestTileGrid:
    def test_tile_of_center(self):
        grid = TileGrid(box=1.2, n=12)
        assert grid.tile_of(0.0, 0.0) is not None
        assert grid.tile_of(0.61, 0.0) is None

    def test_tiles_for_pose_covers_vehicle(self):
        grid = TileGrid(box=1.2, n=12)
        tiles = grid.tiles_for_pose(0.0, 0.0, 0.0, length=0.568, width=0.296)
        # Footprint ~0.57 x 0.30 over 0.1 m tiles: at least 6x3 block.
        assert len(tiles) >= 18

    def test_rotation_changes_tiles(self):
        grid = TileGrid(box=1.2, n=24)
        horiz = grid.tiles_for_pose(0.0, 0.0, 0.0, 0.568, 0.296)
        vert = grid.tiles_for_pose(0.0, 0.0, math.pi / 2, 0.568, 0.296)
        assert horiz != vert

    def test_buffer_grows_tile_set(self):
        grid = TileGrid(box=1.2, n=24)
        small = grid.tiles_for_pose(0.0, 0.0, 0.0, 0.568, 0.296, buffer=0.0)
        big = grid.tiles_for_pose(0.0, 0.0, 0.0, 0.568, 0.296, buffer=0.2)
        assert small < big

    def test_conservative_containment(self):
        """Every tile intersecting the rectangle is claimed."""
        grid = TileGrid(box=1.2, n=16)
        tiles = grid.tiles_for_pose(0.1, -0.05, 0.4, 0.568, 0.296)
        rect = OrientedRect(0.1, -0.05, 0.4, 0.568, 0.296)
        # Sample points inside the rect; each must be in a claimed tile.
        rng = np.random.default_rng(0)
        for _ in range(200):
            lon = rng.uniform(-0.284, 0.284)
            lat = rng.uniform(-0.148, 0.148)
            x = 0.1 + lon * math.cos(0.4) - lat * math.sin(0.4)
            y = -0.05 + lon * math.sin(0.4) + lat * math.cos(0.4)
            tile = grid.tile_of(x, y)
            if tile is not None:
                assert tile in tiles


class TestTileReservations:
    def test_commit_and_conflict(self):
        res = TileReservations(TileGrid(1.2, 12), slot=0.1)
        cells = [((0, 0), 5), ((0, 1), 5)]
        assert not res.conflicts(cells, vehicle_id=1)
        res.commit(cells, vehicle_id=1)
        assert res.conflicts(cells, vehicle_id=2)
        assert not res.conflicts(cells, vehicle_id=1)  # own claims ok

    def test_commit_conflicting_raises(self):
        res = TileReservations(TileGrid(1.2, 12))
        res.commit([((0, 0), 1)], vehicle_id=1)
        with pytest.raises(ValueError):
            res.commit([((0, 0), 1)], vehicle_id=2)

    def test_release(self):
        res = TileReservations(TileGrid(1.2, 12))
        res.commit([((0, 0), 1), ((1, 1), 2)], vehicle_id=1)
        assert res.release(1) == 2
        assert not res.conflicts([((0, 0), 1)], vehicle_id=2)

    def test_purge_before(self):
        res = TileReservations(TileGrid(1.2, 12), slot=0.1)
        res.commit([((0, 0), 1), ((0, 0), 100)], vehicle_id=1)
        dropped = res.purge_before(5.0)  # slot 50
        assert dropped == 1
        assert res.claim_count == 1

    def test_slot_of(self):
        res = TileReservations(TileGrid(1.2, 12), slot=0.5)
        assert res.slot_of(0.0) == 0
        assert res.slot_of(0.49) == 0
        assert res.slot_of(0.5) == 1


class TestCollision:
    def test_overlapping_rects(self):
        a = OrientedRect(0.0, 0.0, 0.0, 1.0, 0.5)
        b = OrientedRect(0.4, 0.0, 0.0, 1.0, 0.5)
        assert rects_overlap(a, b)

    def test_separated_rects(self):
        a = OrientedRect(0.0, 0.0, 0.0, 1.0, 0.5)
        b = OrientedRect(2.0, 0.0, 0.0, 1.0, 0.5)
        assert not rects_overlap(a, b)

    def test_rotated_near_miss(self):
        # Two unit squares diagonal to each other: corner gap.
        a = OrientedRect(0.0, 0.0, 0.0, 1.0, 1.0)
        b = OrientedRect(1.2, 1.2, math.pi / 4, 1.0, 1.0)
        assert not rects_overlap(a, b)

    def test_rotated_overlap(self):
        a = OrientedRect(0.0, 0.0, 0.0, 2.0, 0.4)
        b = OrientedRect(0.0, 0.0, math.pi / 2, 2.0, 0.4)
        assert rects_overlap(a, b)

    def test_inflated(self):
        a = OrientedRect(0.0, 0.0, 0.0, 1.0, 0.5)
        grown = a.inflated(0.25)
        assert grown.length == 1.5
        assert grown.width == 1.0

    def test_symmetry_property(self):
        rng = np.random.default_rng(42)
        for _ in range(100):
            a = OrientedRect(*rng.uniform(-1, 1, 2), rng.uniform(0, math.pi), 0.5, 0.3)
            b = OrientedRect(*rng.uniform(-1, 1, 2), rng.uniform(0, math.pi), 0.5, 0.3)
            assert rects_overlap(a, b) == rects_overlap(b, a)

    @given(
        st.floats(-1.0, 1.0), st.floats(-1.0, 1.0), st.floats(0.0, math.pi)
    )
    @settings(max_examples=100, deadline=None)
    def test_rect_overlaps_itself_translated_slightly(self, cx, cy, heading):
        a = OrientedRect(cx, cy, heading, 0.5, 0.3)
        b = OrientedRect(cx + 0.01, cy, heading, 0.5, 0.3)
        assert rects_overlap(a, b)
