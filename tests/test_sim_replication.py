"""Tests for multi-seed replication statistics."""

import pytest

from repro.geometry import Approach, Movement, Turn
from repro.sim import Replication, replicate, run_replicated
from repro.sim.metrics import SimResult
from repro.traffic import Arrival, PoissonTraffic
from repro.vehicle.agent import VehicleRecord


def fake_result(delay):
    r = VehicleRecord(vehicle_id=0, movement_key="S-straight",
                      spawn_time=0.0, spawn_speed=3.0)
    r.ideal_transit = 1.0
    r.exit_time = 1.0 + delay
    return SimResult(policy="crossroads", records=[r], sim_duration=10.0)


class TestReplication:
    def test_stats_math(self):
        rep = Replication([fake_result(1.0), fake_result(3.0)])
        stats = rep.metric("avg_delay_s")
        assert stats.mean == pytest.approx(2.0)
        assert stats.n == 2
        assert stats.std == pytest.approx(1.4142, rel=1e-3)
        assert stats.ci95 > 0

    def test_single_result_no_ci(self):
        rep = Replication([fake_result(1.0)])
        stats = rep.metric("avg_delay_s")
        assert stats.std == 0.0
        assert stats.ci95 == 0.0

    def test_unknown_metric(self):
        rep = Replication([fake_result(1.0)])
        with pytest.raises(KeyError):
            rep.metric("nope")

    def test_throughput_metric(self):
        rep = Replication([fake_result(1.0), fake_result(1.0)])
        assert rep.metric("throughput").mean == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Replication([])
        with pytest.raises(ValueError):
            replicate(lambda s: fake_result(1.0), [])

    def test_summary_table_shape(self):
        rep = Replication([fake_result(1.0), fake_result(2.0)])
        headers, rows = rep.summary_table()
        assert headers[0] == "metric"
        assert len(rows) >= 5

    def test_str_format(self):
        rep = Replication([fake_result(1.0), fake_result(3.0)])
        text = str(rep.metric("avg_delay_s"))
        assert "±" in text and "n=2" in text


class TestRunReplicated:
    def test_end_to_end(self):
        arrivals = [
            Arrival(time=0.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT),
                    speed=3.0),
            Arrival(time=0.3, movement=Movement(Approach.EAST, Turn.STRAIGHT),
                    speed=3.0),
        ]
        rep = run_replicated("crossroads", arrivals, seeds=(1, 2, 3))
        assert rep.policy == "crossroads"
        assert rep.all_safe
        assert rep.metric("avg_delay_s").n == 3

    def test_seed_variation_shows_in_stats(self):
        arrivals = PoissonTraffic(0.5, seed=31).generate(8)
        rep = run_replicated("crossroads", arrivals, seeds=(1, 2, 3, 4))
        # Noise should produce *some* spread in delays across seeds.
        assert rep.metric("avg_delay_s").std >= 0.0
        assert len(set(rep.metric("avg_delay_s").values)) > 1
