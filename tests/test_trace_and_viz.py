"""Tests for the trace recorder and terminal visualisations."""

import pytest

from repro.analysis import series_plot, space_time_diagram, sparkline
from repro.geometry import Approach, Movement, Turn
from repro.sim import TraceRecorder, World
from repro.sim.trace import TraceSample
from repro.traffic import Arrival


def small_world():
    arrivals = [
        Arrival(time=0.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT), speed=3.0),
        Arrival(time=0.5, movement=Movement(Approach.EAST, Turn.STRAIGHT), speed=2.5),
    ]
    return World("crossroads", arrivals, seed=5)


class TestTraceRecorder:
    def test_records_all_vehicles(self):
        world = small_world()
        recorder = TraceRecorder(world, period=0.1)
        world.run()
        assert recorder.vehicle_ids == [0, 1]
        assert len(recorder.samples) > 20

    def test_trajectory_monotone_position(self):
        world = small_world()
        recorder = TraceRecorder(world, period=0.1)
        world.run()
        for vid in recorder.vehicle_ids:
            positions = [s.position for s in recorder.trajectory(vid)]
            for earlier, later in zip(positions, positions[1:]):
                assert later >= earlier - 1e-6

    def test_at_returns_one_tick(self):
        world = small_world()
        recorder = TraceRecorder(world, period=0.1)
        world.run()
        snapshot = recorder.at(1.0)
        assert 1 <= len(snapshot) <= 2
        assert all(abs(s.time - 1.0) <= 0.05 for s in snapshot)

    def test_by_lane_grouping(self):
        world = small_world()
        recorder = TraceRecorder(world, period=0.1)
        world.run()
        lanes = recorder.by_lane()
        assert set(lanes) == {"S", "E"}

    def test_csv_export(self, tmp_path):
        world = small_world()
        recorder = TraceRecorder(world, period=0.2)
        world.run()
        path = tmp_path / "trace.csv"
        text = recorder.to_csv(str(path))
        lines = text.strip().splitlines()
        assert lines[0].startswith("time,vehicle_id")
        assert len(lines) == len(recorder.samples) + 1
        assert path.read_text() == text

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            TraceRecorder(small_world(), period=0.0)

    def test_index_matches_flat_scan(self):
        """The per-vehicle index built at append time must agree with a
        brute-force scan of the flat sample list."""
        world = small_world()
        recorder = TraceRecorder(world, period=0.1)
        world.run()
        assert recorder.vehicle_ids == sorted(
            {s.vehicle_id for s in recorder.samples}
        )
        for vid in recorder.vehicle_ids:
            indexed = recorder.trajectory(vid)
            scanned = [s for s in recorder.samples if s.vehicle_id == vid]
            assert indexed == scanned
            times = [s.time for s in indexed]
            assert times == sorted(times)
        # Unknown ids return an empty list, and mutating the returned
        # list must not corrupt the index.
        assert recorder.trajectory(999) == []
        recorder.trajectory(0).clear()
        assert recorder.trajectory(0)  # still populated

    def test_csv_round_trip(self):
        """parse_csv(to_csv(samples)) reproduces the samples at export
        precision (time %.3f, position/velocity %.4f)."""
        world = small_world()
        recorder = TraceRecorder(world, period=0.2)
        world.run()
        parsed = TraceRecorder.parse_csv(recorder.to_csv())
        assert len(parsed) == len(recorder.samples)
        for original, back in zip(recorder.samples, parsed):
            assert back.vehicle_id == original.vehicle_id
            assert back.movement_key == original.movement_key
            assert back.state == original.state
            assert back.has_plan == original.has_plan
            assert back.time == pytest.approx(original.time, abs=5e-4)
            assert back.position == pytest.approx(original.position, abs=5e-5)
            assert back.velocity == pytest.approx(original.velocity, abs=5e-5)
        # A second round trip is exact: the precision loss happened once.
        again = TraceRecorder.parse_csv(
            _csv_of(parsed)
        )
        assert again == parsed

    def test_parse_csv_rejects_bad_header(self):
        with pytest.raises(ValueError):
            TraceRecorder.parse_csv("wrong,header\n1,2\n")


def _csv_of(samples):
    """Render arbitrary samples with the recorder's writer (helper for
    the double round-trip assertion)."""
    recorder = TraceRecorder.__new__(TraceRecorder)
    recorder.samples = list(samples)
    return TraceRecorder.to_csv(recorder)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4


class TestSeriesPlot:
    def test_renders_grid(self):
        out = series_plot([0, 1, 2], {"a": [0.0, 1.0, 0.5], "b": [1.0, 0.0, 0.5]})
        assert "o=a" in out
        assert "x=b" in out
        assert out.count("\n") >= 12

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_plot([0, 1], {"a": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_plot([], {})


class TestSpaceTime:
    def make_samples(self):
        return [
            TraceSample(time=t, vehicle_id=7, movement_key="S-straight",
                        position=t * 2.0, velocity=2.0, state="follow",
                        has_plan=True)
            for t in (0.0, 0.5, 1.0, 1.5)
        ]

    def test_diagram_rows_and_line(self):
        out = space_time_diagram(self.make_samples(), period=0.5)
        lines = out.splitlines()
        assert len(lines) == 4
        assert all("|" in line or "7" in line for line in lines)
        assert "7" in lines[0]

    def test_lane_filter(self):
        out = space_time_diagram(self.make_samples(), lane="N", period=0.5)
        assert out == "(no samples)"

    def test_vehicle_moves_right(self):
        lines = space_time_diagram(self.make_samples(), period=0.5).splitlines()
        first = lines[0].index("7")
        last = lines[-1].index("7")
        assert last > first
