"""Tests for the analytic (ideal-vehicle) fast engine."""

import pytest

from repro.geometry import Approach, Movement, Turn
from repro.sim import AnalyticConfig, run_analytic, run_scenario
from repro.sim.world import WorldConfig
from repro.traffic import Arrival, PoissonTraffic


def single_arrival(speed=3.0):
    return [
        Arrival(time=0.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT), speed=speed)
    ]


class TestBasics:
    @pytest.mark.parametrize("policy", ["crossroads", "vt-im"])
    def test_lone_vehicle_free_flow(self, policy):
        result = run_analytic(policy, single_arrival())
        assert result.n_finished == 1
        assert result.finished[0].delay < 0.3

    def test_aim_unsupported(self):
        with pytest.raises(ValueError):
            run_analytic("aim", single_arrival())

    def test_all_vehicles_complete_at_saturation(self):
        arrivals = PoissonTraffic(1.0, seed=3).generate(80)
        for policy in ("crossroads", "vt-im"):
            result = run_analytic(policy, arrivals)
            assert result.n_finished == 80

    def test_deterministic(self):
        arrivals = PoissonTraffic(0.5, seed=4).generate(40)
        a = run_analytic("crossroads", arrivals)
        b = run_analytic("crossroads", arrivals)
        assert a.average_delay == b.average_delay
        assert a.messages_sent == b.messages_sent

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnalyticConfig(net_delay=-1.0)
        with pytest.raises(ValueError):
            AnalyticConfig(retry_interval=0.0)


class TestPaperShape:
    def test_crossroads_beats_vtim_at_saturation(self):
        arrivals = PoissonTraffic(1.0, seed=5).generate(120)
        cr = run_analytic("crossroads", arrivals)
        vt = run_analytic("vt-im", arrivals)
        assert cr.throughput > 1.5 * vt.throughput

    def test_parity_at_sparse_flow(self):
        arrivals = PoissonTraffic(0.05, seed=5).generate(60)
        cr = run_analytic("crossroads", arrivals)
        vt = run_analytic("vt-im", arrivals)
        assert cr.throughput == pytest.approx(vt.throughput, rel=0.15)

    def test_throughput_monotone_down_with_flow(self):
        values = []
        for flow in (0.05, 0.3, 1.0):
            arrivals = PoissonTraffic(flow, seed=6).generate(80)
            values.append(run_analytic("vt-im", arrivals).throughput)
        assert values[0] > values[1] > values[2]

    def test_schedule_respects_fcfs_same_lane(self):
        arrivals = [
            Arrival(time=0.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT), speed=3.0),
            Arrival(time=0.6, movement=Movement(Approach.SOUTH, Turn.STRAIGHT), speed=3.0),
        ]
        result = run_analytic("crossroads", arrivals)
        records = sorted(result.finished, key=lambda r: r.vehicle_id)
        assert records[0].exit_time < records[1].exit_time
        assert records[0].enter_time < records[1].enter_time


class TestEngineAgreement:
    """The ideal engine must agree with the micro engine where the
    idealisations don't bite (sparse, unobstructed traffic)."""

    @pytest.mark.parametrize("policy", ["crossroads", "vt-im"])
    def test_sparse_flow_delays_agree(self, policy):
        arrivals = PoissonTraffic(0.1, seed=9).generate(16)
        analytic = run_analytic(policy, arrivals)
        micro = run_scenario(
            policy, arrivals, config=WorldConfig(ideal_vehicles=True), seed=9
        )
        assert micro.n_finished == analytic.n_finished == 16
        assert analytic.average_delay == pytest.approx(
            micro.average_delay, abs=0.6
        )

    def test_saturation_ordering_agrees(self):
        arrivals = PoissonTraffic(0.8, seed=10).generate(32)
        results = {}
        for policy in ("crossroads", "vt-im"):
            results[policy] = (
                run_analytic(policy, arrivals).throughput,
                run_scenario(policy, arrivals, seed=10).throughput,
            )
        # Both engines rank crossroads above vt-im.
        assert results["crossroads"][0] > results["vt-im"][0]
        assert results["crossroads"][1] > results["vt-im"][1]
