"""Tests for the FCFS conflict scheduler."""

import math

import pytest

from repro.core.scheduler import ConflictScheduler, ScheduledCrossing
from repro.geometry import Approach, ConflictTable, IntersectionGeometry, Movement, Turn
from repro.kinematics.arrival import plan_arrival, solve_vt_for_toa, vt_plan


@pytest.fixture(scope="module")
def table():
    return ConflictTable(IntersectionGeometry())


def make_scheduler(table):
    return ConflictScheduler(table)


def vt_planner(distance, v_init, start, v_max=3.0):
    def planner(toa):
        return solve_vt_for_toa(distance, v_init, start, toa, 3.0, 4.0, v_max)

    return planner


def crossroads_planner(distance, v_init, start, v_max=3.0):
    def planner(toa):
        return plan_arrival(
            distance, v_init, start, toa, 3.0, 4.0, v_max, v_min=0.25, launch_below=1.2
        )

    return planner


def assign_simple(sched, vid, movement, distance=3.0, v_init=3.0, start=0.0,
                  buffer=0.078, planner_factory=crossroads_planner):
    etoa_plan = vt_plan(distance, v_init, 3.0, start, 3.0, 4.0)
    return sched.assign(
        vehicle_id=vid,
        movement=movement,
        planner=planner_factory(distance, v_init, start),
        etoa=etoa_plan.arrival_time,
        body_length=0.568,
        buffer=buffer,
    )


class TestBasicAssignment:
    def test_first_vehicle_gets_etoa(self, table):
        sched = make_scheduler(table)
        m = Movement(Approach.SOUTH, Turn.STRAIGHT)
        a = assign_simple(sched, 0, m)
        assert a is not None
        assert a.toa == pytest.approx(1.0, abs=1e-3)  # 3 m at 3 m/s

    def test_non_conflicting_vehicles_share_the_box(self, table):
        sched = make_scheduler(table)
        a = assign_simple(sched, 0, Movement(Approach.SOUTH, Turn.STRAIGHT))
        b = assign_simple(sched, 1, Movement(Approach.NORTH, Turn.STRAIGHT))
        assert b.toa == pytest.approx(a.toa, abs=1e-3)

    def test_conflicting_vehicles_serialised(self, table):
        sched = make_scheduler(table)
        a = assign_simple(sched, 0, Movement(Approach.SOUTH, Turn.STRAIGHT))
        b = assign_simple(sched, 1, Movement(Approach.EAST, Turn.STRAIGHT))
        assert b.toa > a.toa + 0.2

    def test_same_lane_full_exclusion(self, table):
        sched = make_scheduler(table)
        a = assign_simple(sched, 0, Movement(Approach.SOUTH, Turn.STRAIGHT))
        b = assign_simple(sched, 1, Movement(Approach.SOUTH, Turn.LEFT))
        # The follower enters only after the leader's buffered tail
        # clears the leader's whole path.
        entry_a = sched.book[0]
        _, clear = entry_a.interval_occupancy(
            0.0, table.geometry.crossing_distance(entry_a.movement)
        )
        entry_b = sched.book[1]
        t_in, _ = entry_b.interval_occupancy(0.0, 0.1)
        assert t_in >= clear - 1e-6

    def test_bigger_buffer_bigger_separation(self, table):
        small = make_scheduler(table)
        assign_simple(small, 0, Movement(Approach.SOUTH, Turn.STRAIGHT), buffer=0.078)
        b_small = assign_simple(
            small, 1, Movement(Approach.EAST, Turn.STRAIGHT), buffer=0.078
        )
        big = make_scheduler(table)
        assign_simple(big, 0, Movement(Approach.SOUTH, Turn.STRAIGHT), buffer=0.528)
        b_big = assign_simple(
            big, 1, Movement(Approach.EAST, Turn.STRAIGHT), buffer=0.528
        )
        assert b_big.toa > b_small.toa

    def test_retransmission_replaces_reservation(self, table):
        sched = make_scheduler(table)
        m = Movement(Approach.SOUTH, Turn.STRAIGHT)
        assign_simple(sched, 0, m)
        assign_simple(sched, 0, m, start=0.5)
        assert len(sched) == 1

    def test_release(self, table):
        sched = make_scheduler(table)
        assign_simple(sched, 0, Movement(Approach.SOUTH, Turn.STRAIGHT))
        assert sched.release(0)
        assert not sched.release(0)
        assert len(sched) == 0

    def test_prune_drops_cleared(self, table):
        sched = make_scheduler(table)
        assign_simple(sched, 0, Movement(Approach.SOUTH, Turn.STRAIGHT))
        clear = sched.book[0].clear_time
        assert sched.prune(clear + 10.0) == 1
        assert len(sched) == 0

    def test_assignments_never_violate(self, table):
        """Committed schedules are pairwise conflict-free by occupancy."""
        sched = make_scheduler(table)
        movements = [
            Movement(Approach.SOUTH, Turn.STRAIGHT),
            Movement(Approach.EAST, Turn.STRAIGHT),
            Movement(Approach.NORTH, Turn.LEFT),
            Movement(Approach.WEST, Turn.RIGHT),
            Movement(Approach.SOUTH, Turn.LEFT),
            Movement(Approach.EAST, Turn.RIGHT),
        ]
        for i, m in enumerate(movements):
            assert assign_simple(sched, i, m, start=0.1 * i) is not None
        book = sched.book
        for i, a in enumerate(book):
            for b in book[i + 1:]:
                for iv in table.intervals(a.movement, b.movement):
                    a_in, a_out = a.interval_occupancy(iv.a_in, iv.a_out)
                    b_in, b_out = b.interval_occupancy(iv.b_in, iv.b_out)
                    disjoint = a_out <= b_in + 1e-6 or b_out <= a_in + 1e-6
                    assert disjoint, (a.vehicle_id, b.vehicle_id)


class TestWaitlist:
    def test_senior_waiter_blocks_junior(self, table):
        sched = make_scheduler(table)
        senior = Movement(Approach.SOUTH, Turn.STRAIGHT)
        junior = Movement(Approach.EAST, Turn.STRAIGHT)
        sched.note_request(0, senior, now=0.0)
        sched.note_request(1, junior, now=1.0)
        assert sched._blocked_by_senior_waiter(1, junior)
        assert not sched._blocked_by_senior_waiter(0, senior)

    def test_non_conflicting_not_blocked(self, table):
        sched = make_scheduler(table)
        sched.note_request(0, Movement(Approach.SOUTH, Turn.STRAIGHT), now=0.0)
        other = Movement(Approach.NORTH, Turn.STRAIGHT)
        sched.note_request(1, other, now=1.0)
        assert not sched._blocked_by_senior_waiter(1, other)

    def test_commit_clears_waitlist(self, table):
        sched = make_scheduler(table)
        m = Movement(Approach.SOUTH, Turn.STRAIGHT)
        sched.note_request(0, m, now=0.0)
        assign_simple(sched, 0, m)
        junior = Movement(Approach.EAST, Turn.STRAIGHT)
        sched.note_request(1, junior, now=1.0)
        assert not sched._blocked_by_senior_waiter(1, junior)

    def test_stale_waiters_expire(self, table):
        sched = make_scheduler(table)
        m = Movement(Approach.SOUTH, Turn.STRAIGHT)
        sched.note_request(0, m, now=0.0)
        junior = Movement(Approach.EAST, Turn.STRAIGHT)
        sched.note_request(1, junior, now=0.0 + ConflictScheduler.WAITLIST_STALE + 1)
        assert not sched._blocked_by_senior_waiter(1, junior)

    def test_assign_respects_waitlist(self, table):
        sched = make_scheduler(table)
        sched.note_request(0, Movement(Approach.SOUTH, Turn.STRAIGHT), now=0.0)
        junior = Movement(Approach.EAST, Turn.STRAIGHT)
        sched.note_request(1, junior, now=0.5)
        assert assign_simple(sched, 1, junior, start=0.5) is None


class TestScheduledCrossing:
    def test_occupancy_monotone(self, table):
        sched = make_scheduler(table)
        m = Movement(Approach.SOUTH, Turn.STRAIGHT)
        assign_simple(sched, 0, m)
        entry = sched.book[0]
        t1 = entry.interval_occupancy(0.0, 0.3)
        t2 = entry.interval_occupancy(0.5, 0.9)
        assert t1[0] <= t2[0]
        assert t1[1] <= t2[1]

    def test_occupancy_contains_toa(self, table):
        sched = make_scheduler(table)
        m = Movement(Approach.SOUTH, Turn.STRAIGHT)
        a = assign_simple(sched, 0, m)
        entry = sched.book[0]
        t_in, t_out = entry.interval_occupancy(0.0, 1.2)
        assert t_in <= a.toa <= t_out
