"""Wire-format hardening: the versioned codec round-trips every
message type and rejects every malformed input with ``WireError``.

The serve mode's server loop treats ``except WireError`` as its whole
hardening boundary, so the property pinned here — *no* input makes
``decode_message``/``FrameAssembler`` raise anything else — is what
keeps a hostile byte stream from killing the service.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.geometry import Approach, Movement, Turn
from repro.network import messages as M
from repro.network.wire import (
    MAX_FRAME,
    WIRE_MAGIC,
    WIRE_VERSION,
    FrameAssembler,
    WireError,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.vehicle import VehicleSpec
from repro.vehicle.spec import VehicleInfo

ALL_TYPES = [getattr(M, name) for name in M.__all__ if name != "Message"]


def _vehicle_info(rng):
    return VehicleInfo(
        vehicle_id=int(rng.integers(0, 1000)),
        spec=VehicleSpec(
            length=float(rng.uniform(0.3, 1.0)),
            width=float(rng.uniform(0.1, 0.5)),
            a_max=float(rng.uniform(1.0, 5.0)),
            d_max=float(rng.uniform(1.0, 5.0)),
            v_max=float(rng.uniform(1.0, 5.0)),
            wheelbase=0.3,
        ),
        movement=Movement(
            entry=rng.choice(list(Approach)),
            turn=rng.choice(list(Turn)),
        ),
        buffer=float(rng.uniform(0.0, 0.2)),
    )


def _random_message(cls, rng):
    message = cls(sender=f"V{int(rng.integers(0, 99))}", receiver="IM")
    for f in dataclasses.fields(cls):
        if f.name in ("sender", "receiver", "seq", "corr"):
            continue
        if f.name == "vehicle_info":
            value = _vehicle_info(rng) if rng.random() < 0.8 else None
        elif isinstance(f.default, bool):
            value = bool(rng.random() < 0.5)
        elif isinstance(f.default, int):
            value = int(rng.integers(0, 10_000))
        else:
            value = float(rng.uniform(-1e6, 1e6))
        setattr(message, f.name, value)
    message.corr = int(rng.integers(0, 10_000))
    return message


class TestRoundTrip:
    @pytest.mark.parametrize("cls", ALL_TYPES, ids=lambda c: c.__name__)
    def test_defaults_round_trip(self, cls):
        message = cls(sender="a", receiver="b")
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert type(decoded) is cls
        assert decoded.seq == message.seq
        assert decoded.corr == message.corr

    @pytest.mark.parametrize("cls", ALL_TYPES, ids=lambda c: c.__name__)
    def test_random_payloads_round_trip(self, cls):
        rng = np.random.default_rng(hash(cls.__name__) % 2**32)
        for _ in range(25):
            message = _random_message(cls, rng)
            assert decode_message(encode_message(message)) == message

    def test_decode_does_not_consume_global_seq(self):
        """Re-constructing via the dataclass would shift every later
        seq — the property the CodecChannel bit-identity rests on."""
        message = M.CrossingRequest(sender="V1", receiver="IM", tt=1.0)
        payload = encode_message(message)
        probe_a = M.Ack(sender="x", receiver="y")
        decode_message(payload)
        decode_message(payload)
        probe_b = M.Ack(sender="x", receiver="y")
        assert probe_b.seq == probe_a.seq + 1

    def test_float_fields_accept_json_integers(self):
        message = M.SyncRequest(sender="a", receiver="b", t0=2.0)
        payload = encode_message(message)
        body = json.loads(payload[2:])
        body["fields"]["t0"] = 2  # ints are valid JSON numbers
        raw = bytes((WIRE_MAGIC, WIRE_VERSION)) + json.dumps(body).encode()
        decoded = decode_message(raw)
        assert decoded.t0 == 2.0 and isinstance(decoded.t0, float)


class TestRejection:
    """Every malformed input raises WireError — nothing else."""

    @pytest.mark.parametrize("junk", [
        b"",
        b"\x00",
        b"\xc5",
        bytes((0x00, WIRE_VERSION)) + b"{}",          # bad magic
        bytes((WIRE_MAGIC, WIRE_VERSION + 1)) + b"{}",  # future version
        bytes((WIRE_MAGIC, WIRE_VERSION)) + b"not json",
        bytes((WIRE_MAGIC, WIRE_VERSION)) + b"[1,2]",   # not an object
        bytes((WIRE_MAGIC, WIRE_VERSION)) + b"\xff\xfe",  # not UTF-8
    ], ids=["empty", "one-byte", "magic-only", "bad-magic", "bad-version",
            "garbage", "non-object", "non-utf8"])
    def test_garbage_rejected(self, junk):
        with pytest.raises(WireError):
            decode_message(junk)

    def test_truncated_valid_payload_rejected(self):
        payload = encode_message(M.Ack(sender="a", receiver="b"))
        for cut in range(2, len(payload) - 1):
            with pytest.raises(WireError):
                decode_message(payload[:cut])

    def test_random_garbage_never_raises_anything_else(self):
        rng = np.random.default_rng(2017)
        for _ in range(300):
            blob = rng.bytes(int(rng.integers(0, 64)))
            try:
                decode_message(blob)
            except WireError:
                pass  # the only allowed outcome for bad input

    def test_mutated_valid_frames_never_raise_anything_else(self):
        rng = np.random.default_rng(7)
        base = encode_message(_random_message(M.CrossingRequest, rng))
        for _ in range(300):
            blob = bytearray(base)
            for _ in range(int(rng.integers(1, 4))):
                blob[int(rng.integers(0, len(blob)))] = int(
                    rng.integers(0, 256)
                )
            try:
                decode_message(bytes(blob))
            except WireError:
                pass

    @pytest.mark.parametrize("mutate", [
        lambda b: b.pop("fields"),
        lambda b: b.__setitem__("kind", "NoSuchMessage"),
        lambda b: b.__setitem__("kind", 7),
        lambda b: b.__setitem__("seq", "one"),
        lambda b: b.__setitem__("seq", True),
        lambda b: b.__setitem__("sender", 3),
        lambda b: b.__setitem__("extra", 1),
        lambda b: b["fields"].__setitem__("bogus", 1),
        lambda b: b["fields"].pop("t0"),
        lambda b: b["fields"].__setitem__("t0", "late"),
        lambda b: b["fields"].__setitem__("t0", True),
    ], ids=["no-fields", "unknown-kind", "non-str-kind", "str-seq",
            "bool-seq", "int-sender", "extra-key", "extra-field",
            "missing-field", "str-float", "bool-float"])
    def test_structural_mutations_rejected(self, mutate):
        payload = encode_message(M.SyncRequest(sender="a", receiver="b"))
        body = json.loads(payload[2:])
        mutate(body)
        raw = bytes((WIRE_MAGIC, WIRE_VERSION)) + json.dumps(body).encode()
        with pytest.raises(WireError):
            decode_message(raw)

    def test_bad_vehicle_info_rejected(self):
        message = M.CrossingRequest(
            sender="a", receiver="b",
            vehicle_info=_vehicle_info(np.random.default_rng(1)),
        )
        payload = encode_message(message)
        body = json.loads(payload[2:])
        for mutation in [
            lambda v: v.__setitem__("vehicle_id", "x"),
            lambda v: v["spec"].__setitem__("length", -1.0),  # fails validation
            lambda v: v["spec"].pop("width"),
            lambda v: v["movement"].__setitem__("entry", "Q"),
            lambda v: v["movement"].__setitem__("turn", "u-turn"),
        ]:
            mutated = json.loads(json.dumps(body))
            mutation(mutated["fields"]["vehicle_info"])
            raw = bytes((WIRE_MAGIC, WIRE_VERSION)) + json.dumps(
                mutated
            ).encode()
            with pytest.raises(WireError):
                decode_message(raw)

    def test_nan_unencodable(self):
        message = M.SyncRequest(sender="a", receiver="b", t0=float("nan"))
        with pytest.raises(WireError):
            encode_message(message)

    def test_non_wire_object_unencodable(self):
        with pytest.raises(WireError):
            encode_message("not a message")


class TestFraming:
    def test_chunked_reassembly(self):
        rng = np.random.default_rng(5)
        frames = [
            encode_frame(_random_message(cls, rng))
            for cls in ALL_TYPES
            for _ in range(3)
        ]
        stream = b"".join(frames)
        assembler = FrameAssembler()
        payloads = []
        for i in range(0, len(stream), 7):  # deliberately odd chunking
            payloads.extend(assembler.feed(stream[i:i + 7]))
        assert len(payloads) == len(frames)
        assert assembler.pending() == 0
        for payload, frame in zip(payloads, frames):
            assert payload == frame[4:]
            decode_message(payload)  # every reassembled payload parses

    @pytest.mark.parametrize("length", [0, MAX_FRAME + 1, 0xFFFFFFFF])
    def test_out_of_bounds_length_prefix_rejected(self, length):
        assembler = FrameAssembler()
        with pytest.raises(WireError):
            assembler.feed(length.to_bytes(4, "big") + b"xxxx")

    def test_oversize_payload_unencodable(self):
        message = M.SyncRequest(sender="a" * (MAX_FRAME + 16), receiver="b")
        with pytest.raises(WireError):
            encode_frame(message)
