"""Tests for tools/bench_gate.py — the bench regression gate.

``tools`` is not a package, so the module is loaded straight from its
file path.  The suite pins the acceptance pair: the gate passes on the
committed baselines compared against themselves, and demonstrably
fails on a synthetic 2x regression.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


BASELINE = {
    "serial_wall_s": 1.0,
    "speedup": 1.8,
    "perf": {"des_events": 29788, "tile_cache_hit_rate": 0.88,
             "sim_run_wall_s": 1.0},
    "cpus": 8,
    "workload": {"policy": "crossroads", "n_cars": 12},
}


class TestClassify:
    @pytest.mark.parametrize("key,kind", [
        ("serial_wall_s", "time"),
        ("parallel_cold_wall_s", "time"),
        ("perf.sim_run_wall_s", "time"),
        ("speedup", "ratio_up"),
        ("speedup_cold", "ratio_up"),
        ("corridor_3.vehicles_per_s", "ratio_up"),
        ("perf.tile_cache_hit_rate", "rate"),
        ("cpus", "info"),
        ("pool_spawns", "info"),
        ("perf.des_events", "exact"),
        ("workload.policy", "exact"),
        # serve-bench payload (BENCH_serve.json)
        ("sweep.rate_800.tps", "ratio_up"),
        ("sweep.rate_40.rtd_p99_wall_s", "time"),
        ("sweep.rate_40.rtd_max_wall_s", "time"),
        ("sweep.rate_120.sent", "info"),
        ("sweep.rate_120.reject_rate", "info"),
        ("overload.rejects", "info"),
        ("overload.peak_backlog", "info"),
        ("overload.alive_after_overload", "exact"),
        ("server.wc_rtd_estimate_s", "info"),
        ("server.requests_served", "info"),
        ("workload.max_queue", "exact"),
    ])
    def test_kinds(self, key, kind):
        assert bench_gate.classify(key) == kind


class TestFlatten:
    def test_dot_paths(self):
        flat = bench_gate.flatten(BASELINE)
        assert flat["perf.des_events"] == 29788
        assert flat["workload.policy"] == "crossroads"
        assert "perf" not in flat


class TestCompare:
    def test_self_compare_passes(self):
        findings = bench_gate.compare("b.json", BASELINE, BASELINE)
        assert all(f.ok for f in findings)

    def test_two_x_slowdown_fails(self):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["serial_wall_s"] = 3.0          # > 2.5x baseline
        fresh["perf"]["sim_run_wall_s"] = 3.0
        fresh["speedup"] = 0.9                # < baseline / 1.75
        bad = [f for f in bench_gate.compare("b.json", BASELINE, fresh)
               if not f.ok]
        assert {f.key for f in bad} == {
            "serial_wall_s", "perf.sim_run_wall_s", "speedup"}

    def test_sub_50ms_walls_never_gate(self):
        base = {"tiny_wall_s": 0.001}
        findings = bench_gate.compare("b.json", base, {"tiny_wall_s": 0.04})
        assert all(f.ok for f in findings)

    def test_exact_counter_drift_fails(self):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["perf"]["des_events"] = 29789
        bad = [f for f in bench_gate.compare("b.json", BASELINE, fresh)
               if not f.ok]
        assert [f.key for f in bad] == ["perf.des_events"]
        assert bad[0].note == "deterministic value drifted"

    def test_hit_rate_slack(self):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["perf"]["tile_cache_hit_rate"] = 0.75  # within 0.15 slack
        assert all(f.ok for f in bench_gate.compare("b.json", BASELINE, fresh))
        fresh["perf"]["tile_cache_hit_rate"] = 0.5
        assert any(not f.ok
                   for f in bench_gate.compare("b.json", BASELINE, fresh))

    def test_info_keys_never_gate(self):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["cpus"] = 1
        findings = bench_gate.compare("b.json", BASELINE, fresh)
        cpu = next(f for f in findings if f.key == "cpus")
        assert cpu.ok and cpu.kind == "info"

    def test_missing_key_fails_new_key_informational(self):
        fresh = json.loads(json.dumps(BASELINE))
        del fresh["speedup"]
        fresh["brand_new"] = 1.0
        findings = bench_gate.compare("b.json", BASELINE, fresh)
        missing = next(f for f in findings if f.key == "speedup")
        assert not missing.ok and missing.note == "missing from fresh run"
        new = next(f for f in findings if f.key == "brand_new")
        assert new.ok and new.kind == "new"


class TestMain:
    def test_committed_baselines_self_compare(self, capsys):
        """The gate must pass on the repo's own BENCH_*.json artefacts."""
        rc = bench_gate.main(["--baseline", str(REPO_ROOT),
                              "--fresh", str(REPO_ROOT), "-q"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all baselines within tolerance" in out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        baseline_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        baseline_dir.mkdir()
        fresh_dir.mkdir()
        (baseline_dir / "BENCH_x.json").write_text(json.dumps(BASELINE))
        fresh = json.loads(json.dumps(BASELINE))
        fresh["serial_wall_s"] = 2.0 * 2.5 * BASELINE["serial_wall_s"]
        fresh["speedup"] = BASELINE["speedup"] / (2.0 * 1.75)
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
        rc = bench_gate.main(["--baseline", str(baseline_dir),
                              "--fresh", str(fresh_dir)])
        assert rc == 1
        assert "regression" in capsys.readouterr().out

    def test_missing_fresh_artefact_fails(self, tmp_path):
        (tmp_path / "BENCH_x.json").write_text(json.dumps(BASELINE))
        empty = tmp_path / "fresh"
        empty.mkdir()
        rc = bench_gate.main(["--baseline", str(tmp_path),
                              "--fresh", str(empty)])
        assert rc == 1

    def test_no_baselines_is_an_error(self, tmp_path):
        assert bench_gate.main(["--baseline", str(tmp_path)]) == 2
