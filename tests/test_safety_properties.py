"""Property-based safety and scheduler-invariant tests.

The reproduction's core guarantee — no two vehicle bodies ever overlap,
under any policy, for any workload — is exercised here with randomised
scenarios (hypothesis drives the workload, each run uses the full
protocol stack), and the scheduler's occupancy-disjointness invariant
is fuzzed directly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scheduler import ConflictScheduler
from repro.geometry import Approach, ConflictTable, IntersectionGeometry, Movement, Turn
from repro.kinematics.arrival import plan_arrival, vt_plan
from repro.sim import run_scenario
from repro.traffic import Arrival


GEOMETRY = IntersectionGeometry()
CONFLICTS = ConflictTable(GEOMETRY)
MOVEMENTS = GEOMETRY.movements


@st.composite
def workloads(draw):
    """Small random arrival lists with per-lane headway respected."""
    n = draw(st.integers(3, 8))
    last_per_lane = {}
    arrivals = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(0.0, 1.5))
        movement = MOVEMENTS[draw(st.integers(0, len(MOVEMENTS) - 1))]
        lane = movement.entry
        t_eff = max(t, last_per_lane.get(lane, -10.0) + 0.7)
        last_per_lane[lane] = t_eff
        arrivals.append(
            Arrival(
                time=t_eff,
                movement=movement,
                speed=draw(st.floats(1.5, 3.0)),
            )
        )
    return sorted(arrivals, key=lambda a: a.time)


class TestGroundTruthSafety:
    @given(workloads(), st.integers(0, 10 ** 6))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_crossroads_never_collides(self, arrivals, seed):
        result = run_scenario("crossroads", arrivals, seed=seed)
        assert result.collisions == 0
        assert result.n_finished == len(arrivals)

    @given(workloads(), st.integers(0, 10 ** 6))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_vtim_never_collides(self, arrivals, seed):
        result = run_scenario("vt-im", arrivals, seed=seed)
        assert result.collisions == 0
        assert result.n_finished == len(arrivals)

    @given(workloads(), st.integers(0, 10 ** 6))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_aim_never_collides(self, arrivals, seed):
        result = run_scenario("aim", arrivals, seed=seed)
        assert result.collisions == 0
        assert result.n_finished == len(arrivals)


class TestSchedulerInvariant:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, len(MOVEMENTS) - 1),
                st.floats(0.0, 10.0),   # request time offsets
                st.floats(0.5, 3.0),    # initial speeds
                st.booleans(),          # crossroads-style planner?
            ),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_committed_occupancies_pairwise_disjoint(self, requests):
        """However requests arrive, the book never contains two
        reservations that overlap on any shared conflict interval."""
        scheduler = ConflictScheduler(CONFLICTS)
        t = 0.0
        for vid, (mi, dt_offset, v0, launchy) in enumerate(requests):
            t += dt_offset
            movement = MOVEMENTS[mi]
            start = t

            if launchy:
                def planner(toa, v0=v0, start=start):
                    return plan_arrival(
                        3.0, v0, start, toa, 3.0, 4.0, 3.0,
                        v_min=0.25, launch_below=1.2,
                    )
            else:
                def planner(toa, v0=v0, start=start):
                    from repro.kinematics.arrival import solve_vt_for_toa

                    return solve_vt_for_toa(
                        3.0, v0, start, toa, 3.0, 4.0, 3.0, v_min=0.25
                    )

            etoa_plan = vt_plan(3.0, v0, 3.0, start, 3.0, 4.0)
            scheduler.assign(
                vehicle_id=vid,
                movement=movement,
                planner=planner,
                etoa=etoa_plan.arrival_time,
                body_length=0.568,
                buffer=0.078,
            )

        book = scheduler.book
        for i, a in enumerate(book):
            for b in book[i + 1:]:
                for iv in CONFLICTS.intervals(a.movement, b.movement):
                    a_in, a_out = a.interval_occupancy(iv.a_in, iv.a_out)
                    b_in, b_out = b.interval_occupancy(iv.b_in, iv.b_out)
                    assert a_out <= b_in + 1e-6 or b_out <= a_in + 1e-6, (
                        a.vehicle_id, b.vehicle_id, a.movement.key, b.movement.key
                    )

    @given(st.floats(0.0, 3.0), st.floats(0.5, 10.0), st.floats(0.05, 0.6))
    @settings(max_examples=100, deadline=None)
    def test_assignment_never_before_etoa(self, v0, dist, buffer):
        scheduler = ConflictScheduler(CONFLICTS)
        movement = MOVEMENTS[0]
        etoa_plan = vt_plan(dist, v0, 3.0, 0.0, 3.0, 4.0)

        def planner(toa, v0=v0, dist=dist):
            from repro.kinematics.arrival import solve_vt_for_toa

            return solve_vt_for_toa(dist, v0, 0.0, toa, 3.0, 4.0, 3.0, v_min=0.25)

        assignment = scheduler.assign(
            vehicle_id=0, movement=movement, planner=planner,
            etoa=etoa_plan.arrival_time, body_length=0.568, buffer=buffer,
        )
        assert assignment is not None
        assert assignment.toa >= etoa_plan.arrival_time - 1e-6
