"""Differential and regression tests for the optimised tile hot path.

The windowed + cached :meth:`TileGrid.tiles_for_pose` must return
*exactly* the same frozensets as the seed full-meshgrid rasteriser
(kept as ``TileGrid._tiles_for_pose_meshgrid``), and
:meth:`TileReservations.purge_before` must cost O(dead cells), not
O(live claims).
"""

import math

import numpy as np
import pytest

from repro.geometry.tiles import TileGrid, TileReservations


def random_poses(rng, count, box):
    """Randomised poses, including ones partially/fully outside the box."""
    for _ in range(count):
        yield dict(
            x=float(rng.uniform(-box, box)),
            y=float(rng.uniform(-box, box)),
            heading=float(rng.uniform(0.0, 2.0 * math.pi)),
            length=float(rng.uniform(0.1, 1.2)),
            width=float(rng.uniform(0.05, 0.6)),
            buffer=float(rng.choice([0.0, 0.075, 0.45, 1.0])),
        )


class TestWindowedDifferential:
    @pytest.mark.parametrize(
        "box,n", [(1.2, 16), (1.2, 24), (2.0, 5), (3.0, 48), (1.0, 1)]
    )
    def test_matches_meshgrid_on_random_poses(self, box, n):
        grid = TileGrid(box, n)
        rng = np.random.default_rng(n * 1000 + 17)
        for pose in random_poses(rng, 200, box):
            fast = grid.tiles_for_pose(**pose)
            reference = grid._tiles_for_pose_meshgrid(**pose)
            assert fast == reference, pose

    def test_matches_meshgrid_with_cache_disabled(self):
        grid = TileGrid(1.2, 16, cache_size=0)
        rng = np.random.default_rng(5)
        for pose in random_poses(rng, 100, 1.2):
            assert grid.tiles_for_pose(**pose) == grid._tiles_for_pose_meshgrid(
                **pose
            )

    def test_axis_aligned_and_cardinal_headings(self):
        grid = TileGrid(1.2, 16)
        for heading in (0.0, math.pi / 2, math.pi, -math.pi / 2, 2 * math.pi):
            pose = dict(x=0.1, y=-0.2, heading=heading, length=0.568,
                        width=0.296, buffer=0.075)
            assert grid.tiles_for_pose(**pose) == grid._tiles_for_pose_meshgrid(
                **pose
            )

    def test_far_outside_box_is_empty(self):
        grid = TileGrid(1.2, 16)
        assert grid.tiles_for_pose(50.0, 50.0, 0.3, 0.5, 0.3) == frozenset()

    def test_tests_fewer_cells_than_meshgrid(self):
        """The windowed sweep does O(footprint), not O(n^2), work."""
        grid = TileGrid(1.2, 48, cache_size=0)
        grid.tiles_for_pose(0.0, 0.0, 0.3, 0.2, 0.1)
        assert 0 < grid.cells_tested < grid.num_tiles / 4

    def test_validation_still_raised(self):
        grid = TileGrid(1.2, 16)
        with pytest.raises(ValueError):
            grid.tiles_for_pose(0, 0, 0, -1.0, 0.3)
        with pytest.raises(ValueError):
            grid.tiles_for_pose(0, 0, 0, 0.5, 0.3, buffer=-0.1)


class TestFootprintCache:
    def test_repeat_pose_hits_cache(self):
        grid = TileGrid(1.2, 16)
        pose = (0.1, 0.2, 0.3, 0.568, 0.296, 0.075)
        first = grid.tiles_for_pose(*pose)
        assert grid.cache_misses == 1 and grid.cache_hits == 0
        second = grid.tiles_for_pose(*pose)
        assert grid.cache_hits == 1
        assert first == second
        assert grid.cache_hit_rate == pytest.approx(0.5)

    def test_quantised_key_collapses_float_noise(self):
        grid = TileGrid(1.2, 16)
        grid.tiles_for_pose(0.1, 0.2, 0.3, 0.568, 0.296)
        grid.tiles_for_pose(0.1 + 1e-13, 0.2, 0.3, 0.568, 0.296)
        assert grid.cache_hits == 1

    def test_lru_eviction_bounds_cache(self):
        grid = TileGrid(1.2, 16, cache_size=2)
        for k in range(5):
            grid.tiles_for_pose(0.01 * k, 0.0, 0.0, 0.5, 0.3)
        assert len(grid._cache) <= 2
        # Most recent entry still cached.
        grid.tiles_for_pose(0.04, 0.0, 0.0, 0.5, 0.3)
        assert grid.cache_hits == 1

    def test_cache_disabled(self):
        grid = TileGrid(1.2, 16, cache_size=0)
        pose = (0.1, 0.2, 0.3, 0.568, 0.296)
        grid.tiles_for_pose(*pose)
        grid.tiles_for_pose(*pose)
        assert grid.cache_hits == 0 and grid.cache_misses == 0
        assert grid.cache_hit_rate == 0.0

    def test_cache_clear(self):
        grid = TileGrid(1.2, 16)
        pose = (0.1, 0.2, 0.3, 0.568, 0.296)
        grid.tiles_for_pose(*pose)
        grid.cache_clear()
        grid.tiles_for_pose(*pose)
        assert grid.cache_misses == 2


class TestPurgeIndex:
    def make_reservations(self):
        return TileReservations(TileGrid(1.2, 16), slot=0.1)

    def test_purge_cost_scales_with_dead_not_live(self):
        res = self.make_reservations()
        # A big *live* population far in the future...
        live = [((i % 16, i // 16 % 16), 1000 + i) for i in range(2000)]
        res.commit(live, vehicle_id=1)
        # ...and a small dead one in the past.
        dead = [((i, i), 5) for i in range(8)]
        res.commit(dead, vehicle_id=2)
        count = res.purge_before(5.0)  # cutoff slot 50
        assert count == len(dead)
        # Regression guard: purge examined exactly the dead cells, no
        # matter how many live claims exist.
        assert res.purge_visited == len(dead)
        assert res.claim_count == len(live)

    def test_purge_with_nothing_dead_is_free(self):
        res = self.make_reservations()
        res.commit([((1, 1), 100), ((2, 2), 200)], vehicle_id=1)
        assert res.purge_before(0.5) == 0
        assert res.purge_visited == 0

    def test_purge_empty_table(self):
        res = self.make_reservations()
        assert res.purge_before(10.0) == 0

    def test_purge_removes_from_all_indexes(self):
        res = self.make_reservations()
        res.commit([((1, 1), 1), ((2, 2), 50)], vehicle_id=7)
        assert res.purge_before(2.0) == 1
        assert res.claim_count == 1
        assert not res.conflicts([((1, 1), 1)], vehicle_id=8)
        assert res.conflicts([((2, 2), 50)], vehicle_id=8)
        # Release after purge only counts what the vehicle still holds.
        assert res.release(7) == 1

    def test_release_then_purge_does_not_double_count(self):
        res = self.make_reservations()
        res.commit([((1, 1), 1), ((2, 2), 1)], vehicle_id=3)
        assert res.release(3) == 2
        assert res.purge_before(10.0) == 0

    def test_commit_below_purge_floor_is_purgeable(self):
        res = self.make_reservations()
        res.commit([((1, 1), 100)], vehicle_id=1)
        res.purge_before(5.0)  # floor -> slot 50
        res.commit([((3, 3), 10)], vehicle_id=2)  # below the old floor
        assert res.purge_before(6.0) == 1
        assert res.claim_count == 1

    def test_repeated_purges_are_idempotent(self):
        res = self.make_reservations()
        res.commit([((1, 1), 5)], vehicle_id=1)
        assert res.purge_before(2.0) == 1
        assert res.purge_before(2.0) == 0
        assert res.purge_before(3.0) == 0
        assert res.purged_total == 1

    def test_negative_cutoff_is_noop(self):
        res = self.make_reservations()
        res.commit([((1, 1), 5)], vehicle_id=1)
        assert res.purge_before(-10.0) == 0
        assert res.claim_count == 1
