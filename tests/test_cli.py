"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "crossroads"
        assert args.scenario is None and args.flow is None
        assert args.trace is None

    def test_run_flow_and_scenario_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--flow", "0.5", "--scenario", "1"])

    def test_sweep_flows_parsed(self):
        args = build_parser().parse_args(["sweep", "--flows", "0.1", "0.5"])
        assert args.flows == [0.1, 0.5]
        assert args.perf is False

    def test_sweep_perf_flag(self):
        args = build_parser().parse_args(["sweep", "--perf"])
        assert args.perf is True

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.out == "out.trace.json"
        assert args.jsonl is None
        assert args.kernel is False

    def test_trace_workload_knobs_shared_with_run(self):
        args = build_parser().parse_args(
            ["trace", "--policy", "aim", "--flow", "0.3", "--cars", "8",
             "--seed", "4", "--out", "x.json", "--kernel"]
        )
        assert args.policy == "aim" and args.flow == 0.3
        assert args.out == "x.json" and args.kernel is True

    def test_help_mentions_trace(self, capsys):
        """`trace` and `--trace` are discoverable from --help."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "trace" in out
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--help"])
        run_help = capsys.readouterr().out
        assert "--trace" in run_help
        assert "perfetto" in run_help.lower()
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--help"])
        trace_help = capsys.readouterr().out
        assert "--out" in trace_help and "--jsonl" in trace_help


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "crossroads" in out
        assert "150 ms" in out

    def test_run_scenario(self, capsys):
        assert main(["run", "--scenario", "10", "--policy", "crossroads"]) == 0
        out = capsys.readouterr().out
        assert "avg wait" in out
        assert "safe True" in out

    def test_run_flow(self, capsys):
        assert main(["run", "--flow", "0.2", "--cars", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_run_bad_scenario_number(self, capsys):
        assert main(["run", "--scenario", "11"]) == 2

    def test_run_always_reports_losses_and_duplicates(self, capsys):
        """The robustness tallies print even on a healthy run, so a
        lossy network can never hide in a quiet summary."""
        assert main(["run", "--flow", "0.2", "--cars", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "losses by reason" in out
        assert "dup dropped" in out

    def test_run_metrics_export_parses(self, capsys, tmp_path):
        from repro.obs import parse_prometheus

        out_file = tmp_path / "run.prom"
        assert main(["run", "--flow", "0.2", "--cars", "6", "--seed", "3",
                     "--metrics", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        samples = parse_prometheus(out_file.read_text())
        names = {name for name, _, _ in samples}
        assert "repro_des_events_total" in names
        assert "repro_vehicle_rtd_seconds_bucket" in names

    def test_metrics_command_prints_series_table(self, capsys, tmp_path):
        csv_file = tmp_path / "series.csv"
        assert main(["metrics", "--flow", "0.2", "--cars", "6", "--seed", "3",
                     "--out", str(csv_file)]) == 0
        out = capsys.readouterr().out
        assert "des.events" in out
        assert "vehicle.rtd_seconds" in out
        assert "series over" in out
        assert csv_file.read_text().startswith(
            "metric,type,labels,t_start_s,value")

    def test_grid_metrics_with_seeds_rejected(self, capsys, tmp_path):
        rc = main(["grid", "--nodes", "2", "--cars", "4", "--seeds", "1", "2",
                   "--metrics", str(tmp_path / "x.prom")])
        assert rc == 2

    def test_run_with_trace_writes_chrome_trace(self, capsys, tmp_path):
        out_file = tmp_path / "run.trace.json"
        assert main(["run", "--flow", "0.2", "--cars", "5", "--seed", "3",
                     "--trace", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        doc = json.loads(out_file.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(r["ph"] == "X" for r in doc["traceEvents"])

    def test_trace_command(self, capsys, tmp_path):
        out_file = tmp_path / "out.trace.json"
        jsonl_file = tmp_path / "events.jsonl"
        assert main(["trace", "--flow", "0.2", "--cars", "5", "--seed", "3",
                     "--out", str(out_file), "--jsonl", str(jsonl_file)]) == 0
        out = capsys.readouterr().out
        assert "traced" in out
        assert "machine counter" in out or "machine." in out
        doc = json.loads(out_file.read_text())
        assert {r["ph"] for r in doc["traceEvents"]} >= {"M", "X"}
        lines = jsonl_file.read_text().splitlines()
        assert lines and all(json.loads(line)["kind"] for line in lines)

    def test_sweep_analytic(self, capsys):
        code = main([
            "sweep", "--engine", "analytic",
            "--policies", "vt-im", "crossroads",
            "--flows", "0.1", "0.8", "--cars", "24",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "crossroads thr" in out
        assert "Crossroads advantage" in out

    def test_sweep_perf_micro(self, capsys):
        code = main([
            "sweep", "--engine", "micro", "--perf",
            "--policies", "crossroads",
            "--flows", "0.2", "--cars", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "count.des_events" in out
        assert "count.machine.request_loop.exchanges" in out

    def test_sweep_perf_analytic_has_none(self, capsys):
        code = main([
            "sweep", "--engine", "analytic", "--perf",
            "--policies", "crossroads",
            "--flows", "0.2", "--cars", "8",
        ])
        assert code == 0
        assert "none recorded" in capsys.readouterr().out

    def test_buffer(self, capsys):
        assert main(["buffer"]) == 0
        out = capsys.readouterr().out
        assert "Elong bound" in out

    def test_scenarios_small(self, capsys):
        assert main(["scenarios", "--repeats", "1",
                     "--policies", "crossroads"]) == 0
        out = capsys.readouterr().out
        assert "S1-worst" in out
        assert "S10-best" in out


class TestGridSpecFile:
    """`repro grid --spec FILE` loads a saved GridSpec (round-trips
    with `--save-spec`; synonym for the original `--grid FILE`)."""

    def test_save_then_load_round_trip(self, capsys, tmp_path):
        from repro.grid import GridSpec

        saved = tmp_path / "corridor.grid.json"
        assert main(["grid", "--nodes", "2", "--cars", "4",
                     "--flow", "0.3", "--seed", "5",
                     "--save-spec", str(saved)]) == 0
        first = capsys.readouterr().out
        assert saved.exists()
        assert main(["grid", "--spec", str(saved), "--cars", "4",
                     "--flow", "0.3", "--seed", "5"]) == 0
        second = capsys.readouterr().out
        # Same spec + same seed => the loaded run reproduces the
        # generated one line for line; only the header lines (topology
        # label, saved-spec notice) differ.
        def results(out):
            lines = out.splitlines()
            return [ln for ln in lines if ln.startswith(("node", "N", "corridor:"))]

        assert results(second) == results(first)
        assert results(second)
        # And the file itself round-trips through the spec API.
        assert GridSpec.from_file(str(saved)).to_dict() == json.loads(
            saved.read_text()
        )

    def test_spec_excludes_other_topology_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["grid", "--spec", "a.json", "--grid", "b.json"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["grid", "--spec", "a.json", "--nodes", "2"]
            )

    def test_missing_spec_file_is_a_clean_error(self, capsys, tmp_path):
        assert main(["grid", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "bad grid spec" in capsys.readouterr().err
