"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "crossroads"
        assert args.scenario is None and args.flow is None

    def test_run_flow_and_scenario_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--flow", "0.5", "--scenario", "1"])

    def test_sweep_flows_parsed(self):
        args = build_parser().parse_args(["sweep", "--flows", "0.1", "0.5"])
        assert args.flows == [0.1, 0.5]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "crossroads" in out
        assert "150 ms" in out

    def test_run_scenario(self, capsys):
        assert main(["run", "--scenario", "10", "--policy", "crossroads"]) == 0
        out = capsys.readouterr().out
        assert "avg wait" in out
        assert "safe True" in out

    def test_run_flow(self, capsys):
        assert main(["run", "--flow", "0.2", "--cars", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_run_bad_scenario_number(self, capsys):
        assert main(["run", "--scenario", "11"]) == 2

    def test_sweep_analytic(self, capsys):
        code = main([
            "sweep", "--engine", "analytic",
            "--policies", "vt-im", "crossroads",
            "--flows", "0.1", "0.8", "--cars", "24",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "crossroads thr" in out
        assert "Crossroads advantage" in out

    def test_buffer(self, capsys):
        assert main(["buffer"]) == 0
        out = capsys.readouterr().out
        assert "Elong bound" in out

    def test_scenarios_small(self, capsys):
        assert main(["scenarios", "--repeats", "1",
                     "--policies", "crossroads"]) == 0
        out = capsys.readouterr().out
        assert "S1-worst" in out
        assert "S10-best" in out
