"""Tests for the network substrate: delays, channels, radios, stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.network import (
    Ack,
    Channel,
    ConstantDelay,
    CrossingRequest,
    GammaDelay,
    Message,
    UniformDelay,
    testbed_delay_model as make_testbed_delay,
)


class TestDelayModels:
    def test_constant(self):
        model = ConstantDelay(0.005)
        rng = np.random.default_rng(0)
        assert model.sample(rng) == 0.005
        assert model.worst_case == 0.005

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)

    def test_uniform_bounds(self):
        model = UniformDelay(0.001, 0.004)
        rng = np.random.default_rng(0)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(0.001 <= s <= 0.004 for s in samples)
        assert model.worst_case == 0.004

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            UniformDelay(0.01, 0.001)

    def test_gamma_clipped_at_worst(self):
        model = GammaDelay(shape=2.0, scale=0.01, worst=0.005)
        rng = np.random.default_rng(0)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(0.0 <= s <= 0.005 for s in samples)

    def test_testbed_model_matches_paper(self):
        # Ch 4: 15 ms worst-case round trip -> 7.5 ms one way.
        model = make_testbed_delay()
        assert model.worst_case == pytest.approx(0.0075)

    @given(st.floats(0.1, 5.0), st.floats(1e-4, 1e-2), st.integers(0, 2 ** 31))
    @settings(max_examples=100, deadline=None)
    def test_gamma_samples_never_exceed_worst(self, shape, scale, seed):
        model = GammaDelay(shape=shape, scale=scale, worst=0.005)
        rng = np.random.default_rng(seed)
        assert 0.0 <= model.sample(rng) <= 0.005


class TestMessages:
    def test_sequence_numbers_unique(self):
        a = Ack(sender="A", receiver="B")
        b = Ack(sender="A", receiver="B")
        assert a.seq != b.seq

    def test_sizes_positive(self):
        for cls in (Ack, CrossingRequest, Message):
            msg = cls(sender="A", receiver="B")
            assert msg.size > 0


class TestChannel:
    def test_delivery_after_delay(self):
        env = Environment()
        channel = Channel(env, delay_model=ConstantDelay(0.5))
        a = channel.attach("A")
        b = channel.attach("B")
        received = []

        def rx(env):
            msg = yield b.receive()
            received.append((env.now, msg.sender))

        env.process(rx(env))
        a.send(Message(sender="A", receiver="B"))
        env.run()
        assert received == [(0.5, "A")]

    def test_wrong_sender_rejected(self):
        env = Environment()
        channel = Channel(env)
        a = channel.attach("A")
        with pytest.raises(ValueError):
            a.send(Message(sender="X", receiver="B"))

    def test_duplicate_address_rejected(self):
        env = Environment()
        channel = Channel(env)
        channel.attach("A")
        with pytest.raises(ValueError):
            channel.attach("A")

    def test_unknown_receiver_counts_as_loss(self):
        env = Environment()
        channel = Channel(env)
        a = channel.attach("A")
        a.send(Message(sender="A", receiver="GHOST"))
        env.run()
        assert channel.stats.lost == 1
        assert channel.stats.delivered == 0

    def test_lossy_channel_drops_messages(self):
        env = Environment()
        channel = Channel(
            env, loss_probability=0.5, rng=np.random.default_rng(3)
        )
        a = channel.attach("A")
        channel.attach("B")
        for _ in range(200):
            a.send(Message(sender="A", receiver="B"))
        env.run()
        assert channel.stats.lost > 30
        assert channel.stats.delivered > 30
        assert channel.stats.lost + channel.stats.delivered == 200

    def test_stats_by_type(self):
        env = Environment()
        channel = Channel(env)
        a = channel.attach("A")
        channel.attach("B")
        a.send(Ack(sender="A", receiver="B"))
        a.send(Ack(sender="A", receiver="B"))
        a.send(CrossingRequest(sender="A", receiver="B"))
        env.run()
        assert channel.stats.by_type["Ack"] == 2
        assert channel.stats.by_type["CrossingRequest"] == 1
        assert channel.stats.bytes_sent == 2 * Ack.SIZE + CrossingRequest.SIZE

    def test_fifo_not_guaranteed_but_all_delivered(self):
        """Random delays may reorder, but nothing is lost."""
        env = Environment()
        channel = Channel(
            env,
            delay_model=UniformDelay(0.0, 0.01),
            rng=np.random.default_rng(0),
        )
        a = channel.attach("A")
        b = channel.attach("B")
        n = 50
        for _ in range(n):
            a.send(Message(sender="A", receiver="B"))
        env.run()
        assert b.pending() == n

    def test_detach_drops_inflight(self):
        env = Environment()
        channel = Channel(env, delay_model=ConstantDelay(1.0))
        a = channel.attach("A")
        channel.attach("B")
        a.send(Message(sender="A", receiver="B"))
        channel.detach("B")
        env.run()
        assert channel.stats.lost == 1

    def test_round_trip_delay_measurement(self):
        """Ack-based delay measurement as in Ch 4."""
        env = Environment()
        channel = Channel(env, delay_model=ConstantDelay(0.003))
        a = channel.attach("A")
        b = channel.attach("B")
        measured = []

        def responder(env):
            msg = yield b.receive()
            b.send(Ack(sender="B", receiver="A", acked_seq=msg.seq))

        def requester(env):
            sent = env.now
            a.send(Message(sender="A", receiver="B"))
            yield a.receive()
            measured.append(env.now - sent)

        env.process(responder(env))
        env.process(requester(env))
        env.run()
        assert measured[0] == pytest.approx(0.006)


class TestLossAttribution:
    """Satellite (c): drops are attributed per reason, not conflated."""

    def test_unknown_receiver_attributed_no_route(self):
        env = Environment()
        channel = Channel(env)
        a = channel.attach("A")
        a.send(Message(sender="A", receiver="GHOST"))
        env.run()
        assert channel.stats.by_reason["no_route"] == 1
        assert channel.stats.by_reason["channel"] == 0
        assert channel.stats.lost == 1  # legacy aggregate still counts

    def test_detach_attributed_no_route(self):
        env = Environment()
        channel = Channel(env, delay_model=ConstantDelay(1.0))
        a = channel.attach("A")
        channel.attach("B")
        a.send(Message(sender="A", receiver="B"))
        channel.detach("B")
        env.run()
        assert channel.stats.by_reason["no_route"] == 1

    def test_random_loss_attributed_channel(self):
        env = Environment()
        channel = Channel(env, loss_probability=0.5, rng=np.random.default_rng(3))
        a = channel.attach("A")
        channel.attach("B")
        for _ in range(200):
            a.send(Message(sender="A", receiver="B"))
        env.run()
        stats = channel.stats
        assert stats.by_reason["channel"] > 30
        assert stats.by_reason["no_route"] == 0
        assert sum(stats.by_reason.values()) == stats.lost

    def test_mixed_reasons_sum_to_lost(self):
        env = Environment()
        channel = Channel(env, loss_probability=0.4, rng=np.random.default_rng(9))
        a = channel.attach("A")
        channel.attach("B")
        for i in range(100):
            a.send(Message(sender="A", receiver="B"))
            a.send(Message(sender="A", receiver="GHOST"))
        env.run()
        stats = channel.stats
        assert stats.by_reason["no_route"] > 0
        assert stats.by_reason["channel"] > 0
        assert sum(stats.by_reason.values()) == stats.lost


class TestRadioDedup:
    def test_duplicate_seq_suppressed(self):
        env = Environment()
        channel = Channel(env)
        channel.attach("A")
        b = channel.attach("B")
        message = Message(sender="A", receiver="B")
        assert b.accept(message) is True
        assert b.accept(message) is False  # same seq: suppressed
        assert b.pending() == 1

    def test_distinct_seqs_pass(self):
        env = Environment()
        channel = Channel(env)
        channel.attach("A")
        b = channel.attach("B")
        assert b.accept(Message(sender="A", receiver="B"))
        assert b.accept(Message(sender="A", receiver="B"))
        assert b.pending() == 2

    def test_window_is_bounded(self):
        env = Environment()
        channel = Channel(env)
        channel.attach("A")
        b = channel.attach("B")
        from repro.network.channel import Radio

        first = Message(sender="A", receiver="B")
        assert b.accept(first)
        for _ in range(Radio.DEDUP_WINDOW):
            b.accept(Message(sender="A", receiver="B"))
        # The first seq aged out of the window: re-accepted (bounded
        # memory is the point; protocol-level effects are nil because
        # real traffic never spaces duplicates 1024 messages apart).
        assert b.accept(first) is True
        assert len(b._seen) <= Radio.DEDUP_WINDOW
