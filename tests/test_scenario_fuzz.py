"""The scenario library replay suite and the safety fuzzer.

Two tiers live in this file:

* **Library replay** (unmarked, tier-1): every JSON spec checked into
  ``scenarios/`` is replayed and must reproduce *exactly* its recorded
  ``expect`` violation kinds — benign entries (the S1..S10 scale-model
  cases) replay clean, adversarial entries (the red-light runner, the
  fuzzer-found minimal reproducers) reproduce their violations
  deterministically.  This is the regression net the fuzzer feeds.
* **Fuzzing** (``-m fuzz`` / ``REPRO_FUZZ=1``): hypothesis drives the
  seed-keyed sampler through fresh fuzz sessions — any
  ``reservation_overlap``, or any violation on a benign draw, is a
  protocol bug and fails the run.  New interesting cases are shrunk
  and persisted by the CI job as artifacts, not auto-committed.
"""

import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    ScenarioResult,
    Violation,
    fuzz,
    is_benign,
    load_library,
    property_failures,
    random_spec,
    red_light_runner_spec,
    run_spec,
    shrink,
)

LIBRARY = os.path.join(os.path.dirname(__file__), os.pardir, "scenarios")
LIBRARY_SPECS = load_library(LIBRARY)


class TestLibraryReplay:
    """Every checked-in scenario honours its ``expect`` contract."""

    def test_library_is_populated(self):
        names = [spec.name for spec in LIBRARY_SPECS]
        assert len(names) == len(set(names)), "duplicate scenario names"
        # the three tiers the library must carry
        assert sum(1 for s in LIBRARY_SPECS if not s.expect) >= 10
        assert any("red-light-runner" in n for n in names)
        assert sum(1 for n in names if n.startswith("found-")) >= 3

    @pytest.mark.parametrize(
        "spec", LIBRARY_SPECS, ids=lambda s: s.name)
    def test_replays_expected_kinds_exactly(self, spec):
        outcome = run_spec(spec)
        assert outcome.matches_expectation, (
            f"{spec.name}: expected {sorted(spec.expect)}, "
            f"observed {sorted(outcome.kinds)}"
        )
        # expectation-sanctioned violations are never protocol bugs
        if spec.expect:
            assert "reservation_overlap" not in outcome.kinds

    def test_creep_reproducer_flipped_benign(self):
        """found-fault-ungranted_entry-aim-s80399 regression: five
        rejects stepped the approach down to a 0.15 m/s crawl, and six
        seconds of half-count encoder bias walked odometry far enough
        behind truth that the safe-stop latch fired with the true
        bumper already over the line.  With the drift-widened latch the
        reproducer replays clean and its ``expect`` is pinned benign."""
        spec = next(
            s for s in LIBRARY_SPECS
            if s.name == "found-fault-ungranted_entry-aim-s80399"
        )
        assert spec.expect == ()
        outcome = run_spec(spec)
        assert outcome.kinds == set(), str(outcome)

    def test_replay_is_deterministic(self):
        adversarial = next(s for s in LIBRARY_SPECS if s.expect)
        first, second = run_spec(adversarial), run_spec(adversarial)
        assert first.violations == second.violations
        assert first.result.summary() == second.result.summary()


class TestVerdicts:
    """`property_failures` separates protocol bugs from scripted rogues."""

    def _outcome(self, spec, kinds):
        violations = tuple(
            Violation(kind=kind, t=1.0, vehicle_id=0) for kind in kinds
        )
        return ScenarioResult(spec=spec, result=None, violations=violations)

    def test_reservation_overlap_always_fails(self):
        spec = red_light_runner_spec()  # adversarial: has a behaviour
        assert not is_benign(spec)
        outcome = self._outcome(spec, ("reservation_overlap", "collision"))
        assert property_failures(outcome) == {"reservation_overlap"}

    def test_scripted_violations_are_not_failures(self):
        outcome = self._outcome(red_light_runner_spec(),
                                ("ungranted_entry", "collision"))
        assert property_failures(outcome) == set()

    def test_any_violation_on_benign_spec_fails(self):
        spec = random_spec(np.random.default_rng(0), adversarial=False)
        assert is_benign(spec)
        outcome = self._outcome(spec, ("collision",))
        assert property_failures(outcome) == {"collision"}


class TestSampler:
    def test_respects_policy_and_volume_bounds(self):
        rng = np.random.default_rng(11)
        for i in range(50):
            spec = random_spec(rng, index=i, policies=("aim",), max_cars=4)
            assert spec.policy == "aim"
            assert 3 <= spec.traffic.cars <= 4
            for b in spec.behaviours:
                assert b.vehicle_id < spec.traffic.cars

    def test_benign_mode_draws_no_adversity(self):
        rng = np.random.default_rng(11)
        assert all(
            is_benign(random_spec(rng, index=i, adversarial=False))
            for i in range(20)
        )


class TestShrinker:
    def test_strips_irrelevant_behaviours(self):
        """A red-light runner padded with an unrelated dropout shrinks
        back to the single behaviour that causes the violation."""
        padded = replace(
            red_light_runner_spec(),
            behaviours=red_light_runner_spec().behaviours + (
                # vehicle 1 glitches long after both cars are through
                replace(red_light_runner_spec().behaviours[0],
                        kind="sensor_dropout", vehicle_id=1, start=30.0),
            ),
        )
        assert run_spec(padded).kinds == {"ungranted_entry"}
        minimal, runs = shrink(padded, {"ungranted_entry"})
        assert runs >= 1
        assert len(minimal.behaviours) == 1
        assert minimal.behaviours[0].kind == "run_red_light"
        assert run_spec(minimal).kinds == {"ungranted_entry"}

    def test_rejects_empty_target(self):
        with pytest.raises(ValueError):
            shrink(red_light_runner_spec(), set())


@pytest.mark.fuzz
class TestFuzzSessions:
    """Hypothesis-driven fresh fuzzing (opt-in; the CI fuzz job runs
    this under a wall-clock budget with a cached example database)."""

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_no_protocol_failures(self, seed):
        """No sampled scenario — rogues, faults and all — ever books
        overlapping reservations, and benign draws run clean."""
        report = fuzz(seed=seed, max_examples=4)
        assert report.draws == 4
        assert report.ok, "\n".join(
            f"{o} -> {sorted(property_failures(o))}" for o in report.failures
        )

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_benign_draws_run_clean(self, seed):
        """The clean-run property, sampled directly on the benign
        sub-DSL (stronger than `fuzz`'s incidental benign draws)."""
        spec = random_spec(np.random.default_rng(seed),
                           adversarial=False)
        outcome = run_spec(spec)
        assert outcome.kinds == set(), str(outcome)

    def test_session_is_replayable(self):
        """Same fuzz seed => identical draws and verdicts."""
        a = fuzz(seed=42, max_examples=5)
        b = fuzz(seed=42, max_examples=5)
        assert [o.spec for o in a.interesting] == [
            o.spec for o in b.interesting
        ]
        assert [o.spec.name for o in a.failures] == [
            o.spec.name for o in b.failures
        ]
