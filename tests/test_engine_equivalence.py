"""Golden-replay bit-identity suite for the node-runtime engine refactor.

The ``repro.sim.engine`` extraction re-expresses :class:`World` as a
single :class:`~repro.sim.engine.NodeRuntime` instantiation and
:class:`~repro.grid.world.GridWorld` as an N-node composition over the
same engine, with the wireless medium consumed through the
:class:`~repro.network.transport.Transport` seam.  The refactor is
*behaviour-preserving by construction*: every RNG draw and every DES
process creation keeps its pre-refactor order, so fixed seeds must
reproduce the exact pre-refactor summaries, bit for bit.

``tests/golden/engine_equivalence.json`` pins the summaries recorded at
the pre-refactor commit:

* ``world`` — 3 policies x 2 seeds through ``run_flow``;
* ``grid1`` — 1-node grids (crossroads and aim), whose node summary
  must *also* equal a plain :class:`World` run on the same arrivals
  (asserted live, not just against the golden);
* ``grid3`` — a 3-node mixed-policy corridor x 2 seeds, whole-network
  and per-node summaries;
* ``scenarios`` — every spec checked into ``scenarios/``: summary plus
  the oracle's violation kinds.

Replay helpers pass ``jobs=None`` so ``REPRO_JOBS`` picks the
execution mode: the CI ``engine-equivalence`` job runs this file twice,
serially and with ``REPRO_JOBS=2``, and both must match the goldens.
If a later PR changes behaviour *intentionally*, re-record with::

    PYTHONPATH=src python tests/test_engine_equivalence.py --record
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "engine_equivalence.json"
)
LIBRARY = os.path.join(os.path.dirname(__file__), os.pardir, "scenarios")

POLICIES = ("vt-im", "crossroads", "aim")
WORLD_SEEDS = (3, 17)
WORLD_FLOW = 0.5
WORLD_CARS = 10

GRID1_POLICIES = ("crossroads", "aim")
GRID1_SEED = 7
GRID3_POLICIES = ("crossroads", "aim", "vt-im")
GRID3_SEEDS = (5, 9)
GRID_FLOW = 0.3
GRID_CARS = 12


def world_key(policy: str, seed: int) -> str:
    return f"{policy}#s{seed}"


def _library_specs():
    from repro.scenarios import load_library

    return load_library(LIBRARY)


# -- cell runners (each returns plain JSON-able data) ----------------------

def run_world_cells(jobs=None) -> Dict[str, Dict]:
    """All (policy, seed) cells through the stock sweep entry point."""
    from repro.sim.flowsweep import run_flow_sweep

    cells: Dict[str, Dict] = {}
    for seed in WORLD_SEEDS:
        sweep = run_flow_sweep(
            policies=list(POLICIES),
            flow_rates=[WORLD_FLOW],
            n_cars=WORLD_CARS,
            seed=seed,
            jobs=jobs,
        )
        for policy in POLICIES:
            (point,) = sweep[policy]
            cells[world_key(policy, seed)] = point.result.summary()
    return cells


def run_grid1_cell(policy: str) -> Dict[str, Dict]:
    """One 1-node grid; returns the network and node summaries."""
    from repro.grid import GridPoissonTraffic, GridWorld, corridor_spec

    spec = corridor_spec(1, policy=policy)
    arrivals = GridPoissonTraffic(spec, 0.4, seed=11).generate(WORLD_CARS)
    result = GridWorld(spec, arrivals, seed=GRID1_SEED).run()
    return {
        "summary": result.summary(),
        "node": result.per_node["N0"].summary(),
    }


def run_grid3_cells(jobs=None) -> Dict[str, Dict]:
    """The 3-node mixed-policy corridor across the pinned seeds."""
    from repro.grid import corridor_spec, sweep_grid

    spec = corridor_spec(3, policies=GRID3_POLICIES)
    rows = sweep_grid(
        spec, GRID_CARS, seeds=GRID3_SEEDS, flow_rate=GRID_FLOW, jobs=jobs
    )
    return {
        f"s{row['seed']}": {
            "summary": row["summary"],
            "per_node": row["per_node"],
        }
        for row in rows
    }


def run_scenario_cells(jobs=None) -> Dict[str, Dict]:
    """Replay the whole checked-in scenario library."""
    from repro.scenarios.runner import _spec_cell
    from repro.sim.parallel import RunTask, run_tasks

    specs = _library_specs()
    tasks = [
        RunTask(_spec_cell, (spec, spec.seed), label=spec.name)
        for spec in specs
    ]
    outcomes = run_tasks(tasks, jobs)
    return {
        outcome.spec.name: {
            "summary": outcome.result.summary(),
            "kinds": sorted(outcome.kinds),
        }
        for outcome in outcomes
    }


def record_goldens(path: str = GOLDEN_PATH) -> Dict:
    goldens = {
        "world": run_world_cells(),
        "grid1": {p: run_grid1_cell(p) for p in GRID1_POLICIES},
        "grid3": run_grid3_cells(),
        "scenarios": run_scenario_cells(),
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
    return goldens


@pytest.fixture(scope="module")
def goldens() -> Dict:
    if not os.path.exists(GOLDEN_PATH):  # pragma: no cover - setup error
        pytest.fail(
            "golden file missing; record with "
            "`PYTHONPATH=src python tests/test_engine_equivalence.py --record`"
        )
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _assert_summary_equal(observed: Dict, pinned: Dict, label: str):
    assert set(observed) == set(pinned), f"{label}: summary keys changed"
    for key in sorted(pinned):
        assert observed[key] == pinned[key], (
            f"{label}: {key} drifted: {observed[key]!r} != "
            f"pinned {pinned[key]!r}"
        )


class TestWorldReplay:
    """Single-intersection cells replay bit-identically."""

    def test_cells_match_golden(self, goldens):
        observed = run_world_cells()
        assert set(observed) == set(goldens["world"])
        for key in sorted(observed):
            _assert_summary_equal(observed[key], goldens["world"][key], key)


class TestGridReplay:
    """Grid composition replays bit-identically, and a 1-node grid *is*
    the plain single-intersection world."""

    @pytest.mark.parametrize("policy", GRID1_POLICIES)
    def test_one_node_grid_is_world(self, goldens, policy):
        from repro.grid import GridPoissonTraffic, corridor_spec
        from repro.sim.world import World

        observed = run_grid1_cell(policy)
        _assert_summary_equal(
            observed["node"], goldens["grid1"][policy]["node"],
            f"grid1[{policy}].node",
        )
        _assert_summary_equal(
            observed["summary"], goldens["grid1"][policy]["summary"],
            f"grid1[{policy}]",
        )
        # The live half of the contract: same arrivals through a plain
        # World reproduce the node summary exactly (messages_sent rides
        # on the by_endpoint[im] == sent identity of a single-IM medium).
        spec = corridor_spec(1, policy=policy)
        arrivals = GridPoissonTraffic(spec, 0.4, seed=11).generate(WORLD_CARS)
        world = World(
            policy, [ga.arrival for ga in arrivals], seed=GRID1_SEED
        )
        _assert_summary_equal(
            observed["node"], world.run().summary(),
            f"grid1[{policy}] vs World",
        )

    def test_corridor_matches_golden(self, goldens):
        observed = run_grid3_cells()
        assert set(observed) == set(goldens["grid3"])
        for key in sorted(observed):
            _assert_summary_equal(
                observed[key]["summary"], goldens["grid3"][key]["summary"],
                f"grid3[{key}]",
            )
            assert (
                set(observed[key]["per_node"])
                == set(goldens["grid3"][key]["per_node"])
            )
            for node in sorted(observed[key]["per_node"]):
                _assert_summary_equal(
                    observed[key]["per_node"][node],
                    goldens["grid3"][key]["per_node"][node],
                    f"grid3[{key}].{node}",
                )


class TestScenarioReplay:
    """Every checked-in scenario reproduces its pinned summary and
    violation kinds through the engine-backed world."""

    def test_library_matches_golden(self, goldens):
        observed = run_scenario_cells()
        assert set(observed) == set(goldens["scenarios"]), (
            "scenario library membership changed; re-record"
        )
        for name in sorted(observed):
            assert observed[name]["kinds"] == goldens["scenarios"][name]["kinds"], (
                f"{name}: violation kinds drifted"
            )
            _assert_summary_equal(
                observed[name]["summary"],
                goldens["scenarios"][name]["summary"],
                name,
            )


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="(re-)record the golden summaries")
    args = parser.parse_args()
    if not args.record:
        parser.error("run under pytest, or pass --record")
    recorded = record_goldens()
    n = sum(len(v) for v in recorded.values())
    print(f"recorded {n} cells -> {GOLDEN_PATH}")
    sys.exit(0)
