"""Grid-layer integration tests: equivalence, corridors, multi-IM safety.

The load-bearing guarantees of :mod:`repro.grid`:

* a **1-node grid is the single-intersection world** — identical
  summary metrics for every policy (the golden equivalence that lets
  corridor results extend, never fork, the paper reproduction);
* **corridors complete safely** under every policy and under mixed
  per-node policies, with deterministic replay (same seed -> same
  numbers; ``jobs=1`` == ``jobs=2``; traced == untraced);
* **hand-offs preserve identity** — one radio address, one drifting
  clock, one record lineage per vehicle across all hops;
* **per-node machinery is isolated** — watchdogs tick per IM on the
  shared environment and AIM tile ledgers never alias between nodes.
"""

import numpy as np
import pytest

from repro.geometry import TileGrid, TileReservations
from repro.grid import (
    GridPoissonTraffic,
    GridWorld,
    corridor_spec,
    run_grid,
    sweep_grid,
)
from repro.obs import EventLog
from repro.sim import World, WorldConfig
from repro.traffic import PoissonTraffic

POLICIES = ("crossroads", "vt-im", "aim")


def corridor_result(n_nodes, n_cars=8, *, policies=None, seed=7, flow=0.2,
                    obs=None):
    spec = corridor_spec(n_nodes, policies=policies)
    arrivals = GridPoissonTraffic(spec, flow_rate=flow, seed=seed).generate(
        n_cars)
    return GridWorld(spec, arrivals, seed=seed, obs=obs).run()


class TestSingleNodeEquivalence:
    """A 1-node grid reproduces ``World`` bit-identically."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", (1, 42))
    def test_summary_identical_to_world(self, policy, seed):
        n_cars, flow = 8, 0.2
        arrivals = PoissonTraffic(flow, seed=seed).generate(n_cars)
        base = World(policy, arrivals, seed=seed).run().summary()

        spec = corridor_spec(1, policies=[policy])
        garrivals = GridPoissonTraffic(spec, flow_rate=flow,
                                       seed=seed).generate(n_cars)
        grid = GridWorld(spec, garrivals, seed=seed).run()
        assert grid.per_node["N0"].summary() == base

    def test_single_node_arrivals_match_poisson(self):
        spec = corridor_spec(1)
        garrivals = GridPoissonTraffic(spec, flow_rate=0.3,
                                       seed=5).generate(12)
        plain = PoissonTraffic(0.3, seed=5).generate(12)
        assert len(garrivals) == len(plain)
        for g, p in zip(garrivals, plain):
            assert g.arrival == p
            assert g.route.n_hops == 1


class TestCorridorRuns:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_three_node_corridor_completes_safely(self, policy):
        result = corridor_result(3, policies=[policy] * 3)
        assert result.n_completed == result.n_vehicles
        assert result.collisions == 0
        assert result.safe
        assert result.handoffs > 0
        # Multi-hop trips take at least the single-node service time.
        assert result.average_corridor_time > 0.0

    def test_mixed_policies_complete_safely(self):
        result = corridor_result(3, policies=list(POLICIES))
        assert result.n_completed == result.n_vehicles
        assert result.safe
        by_policy = {n.policy for n in result.spec.nodes}
        assert by_policy == set(POLICIES)

    def test_interior_nodes_serve_through_traffic(self):
        result = corridor_result(3, n_cars=10)
        served = {name: node.n_finished
                  for name, node in result.per_node.items()}
        # Through traffic is served again downstream, so the per-node
        # totals exceed the number of distinct trips.
        assert served["N1"] > 0
        assert sum(served.values()) == result.n_vehicles + result.handoffs

    def test_summary_keys(self):
        summary = corridor_result(2, n_cars=4).summary()
        for key in ("nodes", "vehicles", "completed", "avg_corridor_time_s",
                    "avg_delay_s", "avg_hops", "handoffs", "collisions",
                    "messages"):
            assert key in summary


class TestDeterminism:
    def test_same_seed_same_numbers(self):
        a = corridor_result(3, seed=13).summary()
        b = corridor_result(3, seed=13).summary()
        assert a == b

    def test_sweep_jobs_equivalence(self):
        spec = corridor_spec(3)
        serial = sweep_grid(spec, n_cars=6, seeds=(1, 2, 3), jobs=1)
        sharded = sweep_grid(spec, n_cars=6, seeds=(1, 2, 3), jobs=2)
        assert serial == sharded

    def test_traced_equals_untraced(self):
        untraced = corridor_result(3, n_cars=6).summary()
        traced = corridor_result(3, n_cars=6, obs=EventLog()).summary()
        assert traced == untraced


class TestHandoffIdentity:
    def test_radio_clock_and_record_continuity(self):
        spec = corridor_spec(3)
        arrivals = GridPoissonTraffic(spec, flow_rate=0.2,
                                      seed=9).generate(6)
        world = GridWorld(spec, arrivals, seed=9)
        world.run()

        multi = [r for r in world.corridor if r.n_hops_planned > 1]
        assert multi, "expected at least one multi-hop trip"
        by_addr = {}
        for vehicle in world.vehicles:
            by_addr.setdefault(vehicle.radio.address, []).append(vehicle)
        for record in multi:
            agents = by_addr[f"V{record.vehicle_id}"]
            assert len(agents) == record.hops_completed
            # One radio and one clock object across every hop.
            assert len({id(a.radio) for a in agents}) == 1
            assert len({id(a.clock) for a in agents}) == 1
            # Hop lineage recorded in order of traversal: it starts at
            # the spawn node and walks adjacent corridor nodes.
            nodes = [node for node, _ in record.hops]
            assert nodes[0] == record.spawn_node
            indices = [int(node[1:]) for node in nodes]
            steps = {b - a for a, b in zip(indices, indices[1:])}
            assert steps <= {1} or steps <= {-1}
            assert record.finished

    def test_handoff_events_emitted(self):
        log = EventLog()
        result = corridor_result(3, n_cars=6, obs=log)
        events = [e for e in log.events if e.kind == "grid.handoff"]
        assert len(events) == result.handoffs
        for event in events:
            assert event.data["src"] != event.data["dst"]
            assert event.data["link"]
            assert event.actor.startswith("V")

    def test_handoff_wait_accounting(self):
        result = corridor_result(3, n_cars=10, flow=0.5)
        assert result.handoff_wait_s >= 0.0
        if result.handoffs_delayed:
            assert result.handoff_wait_s > 0.0


class TestMultiIMIsolation:
    def test_watchdogs_tick_independently_per_node(self):
        spec = corridor_spec(2)
        world = GridWorld(spec, arrivals=[])
        calls = {name: [] for name in world.ims}
        for name, im in world.ims.items():
            original = im.invalidate_quiet

            def wrapped(now, *, _orig=original, _log=calls[name]):
                _log.append(now)
                return _orig(now)

            im.invalidate_quiet = wrapped
        world.env.run(until=3.5)
        for name, times in calls.items():
            assert times == [1.0, 2.0, 3.0], name

    def test_aim_reservation_ledgers_never_alias(self):
        spec = corridor_spec(2, policies=["aim", "aim"])
        arrivals = GridPoissonTraffic(spec, flow_rate=0.2,
                                      seed=3).generate(4)
        world = GridWorld(spec, arrivals, seed=3)
        r0 = world.ims["N0"].reservations
        r1 = world.ims["N1"].reservations
        assert r0 is not r1
        result = world.run()
        assert result.safe
        assert result.n_completed == result.n_vehicles

    def test_release_stale_scoped_to_one_ledger(self):
        grid = TileGrid(box=6.0, n=8)
        a = TileReservations(grid, slot=0.05)
        b = TileReservations(grid, slot=0.05)
        past = [((1, 1), 0), ((1, 1), 1)]
        future = [((2, 2), 100), ((2, 2), 101)]
        a.commit(past, 1)
        b.commit(future, 2)
        a.release_stale(50)
        assert a.claim_count == 0
        assert b.claim_count == len(future)
        assert b.conflicts(future, 3)

    def test_per_node_message_shares_sum_to_total(self):
        spec = corridor_spec(3)
        arrivals = GridPoissonTraffic(spec, flow_rate=0.2,
                                      seed=4).generate(8)
        world = GridWorld(spec, arrivals, seed=4)
        result = world.run()
        per_node = sum(r.messages_sent for r in result.per_node.values())
        assert per_node == world.channel.stats.sent
        assert result.messages_sent == per_node


class TestRunGridHelper:
    def test_run_grid_matches_explicit_construction(self):
        spec = corridor_spec(2)
        helper = run_grid(spec, n_cars=5, flow_rate=0.2, seed=21).summary()
        arrivals = GridPoissonTraffic(spec, flow_rate=0.2,
                                      seed=21).generate(5)
        explicit = GridWorld(spec, arrivals, seed=21).run().summary()
        assert helper == explicit

    def test_run_grid_honours_world_config(self):
        spec = corridor_spec(2)
        cfg = WorldConfig(max_sim_time=200.0)
        result = run_grid(spec, n_cars=4, flow_rate=0.2, seed=2, config=cfg)
        assert result.n_completed == result.n_vehicles

    def test_sweep_requires_seeds(self):
        with pytest.raises(ValueError):
            sweep_grid(corridor_spec(2), n_cars=3, seeds=())
