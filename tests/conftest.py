"""Shared test-suite configuration.

The ``faults_heavy`` mark gates the 200-vehicle fault-injection
acceptance demo (tests/test_fault_properties.py): it is the ISSUE 2
acceptance evidence but takes ~a minute of wall clock, so — like the
``perf`` benches — it is opt-in: select it explicitly with
``-m faults_heavy`` or force it with ``REPRO_FAULTS_HEAVY=1``.

The fast ``faults`` matrix (3 seeds x 3 policies) is *not* gated: it
runs in tier-1 and is also selectable alone with ``-m faults`` (the CI
fault-matrix job does exactly that).

The ``fuzz`` mark gates the hypothesis-driven scenario fuzzing in
tests/test_scenario_fuzz.py the same way (``-m fuzz`` or
``REPRO_FUZZ=1``): a fuzz session draws and shrinks dozens of full
simulations, which belongs in its own CI job, not tier-1.  The
scenario *library replay* suite in the same file is unmarked and runs
in tier-1 — the checked-in reproducers are cheap and deterministic.
"""

import os

import pytest

#: mark -> environment override that forces it on.
_OPT_IN_MARKS = {
    "faults_heavy": "REPRO_FAULTS_HEAVY",
    "fuzz": "REPRO_FUZZ",
}


def pytest_collection_modifyitems(config, items):
    """Keep opt-in marks opt-in (see module docstring)."""
    if config.getoption("-m"):
        return  # the user picked marks explicitly; respect them
    for mark, env in _OPT_IN_MARKS.items():
        if os.environ.get(env, "") not in ("", "0"):
            continue
        skip = pytest.mark.skip(
            reason=f"{mark} tests are opt-in: run with -m {mark} or {env}=1"
        )
        for item in items:
            if mark in item.keywords:
                item.add_marker(skip)
