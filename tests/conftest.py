"""Shared test-suite configuration.

The ``faults_heavy`` mark gates the 200-vehicle fault-injection
acceptance demo (tests/test_fault_properties.py): it is the ISSUE 2
acceptance evidence but takes ~a minute of wall clock, so — like the
``perf`` benches — it is opt-in: select it explicitly with
``-m faults_heavy`` or force it with ``REPRO_FAULTS_HEAVY=1``.

The fast ``faults`` matrix (3 seeds x 3 policies) is *not* gated: it
runs in tier-1 and is also selectable alone with ``-m faults`` (the CI
fault-matrix job does exactly that).
"""

import os

import pytest


def pytest_collection_modifyitems(config, items):
    """Keep ``faults_heavy``-marked tests opt-in (see module docstring)."""
    if config.getoption("-m"):
        return  # the user picked marks explicitly; respect them
    if os.environ.get("REPRO_FAULTS_HEAVY", "") not in ("", "0"):
        return
    skip_heavy = pytest.mark.skip(
        reason="heavy fault demo is opt-in: run with -m faults_heavy "
        "or REPRO_FAULTS_HEAVY=1"
    )
    for item in items:
        if "faults_heavy" in item.keywords:
            item.add_marker(skip_heavy)
