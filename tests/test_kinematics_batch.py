"""Scalar-vs-batch equivalence for the cohort kinematics.

Every function in :mod:`repro.kinematics.batch` must agree with its
scalar :mod:`repro.kinematics.arrival` counterpart elementwise — not
merely within tolerance but *bit for bit* (the batch code performs the
identical IEEE-754 operations), with ``NaN`` standing in for ``None``.
"""

import math

import numpy as np
import pytest

from repro.kinematics.arrival import (
    _two_phase_time,
    earliest_arrival_time,
    latest_arrival_time,
    solve_cruise_velocity,
)
from repro.kinematics.batch import (
    earliest_arrival_time_batch,
    latest_arrival_time_batch,
    solve_cruise_velocity_batch,
    two_phase_time_batch,
)


def random_cohort(seed, count=300):
    rng = np.random.default_rng(seed)
    distance = rng.uniform(0.0, 12.0, count)
    # Sprinkle exact zeros and tiny distances (the < _EPS branch).
    distance[:: 17] = 0.0
    distance[1 :: 17] = 5e-10
    v_max = rng.uniform(0.3, 2.5, count)
    v_init = rng.uniform(0.0, 1.0, count) * v_max
    a_max = rng.uniform(0.1, 3.0, count)
    d_max = rng.uniform(0.1, 3.0, count)
    return distance, v_init, v_max, a_max, d_max


class TestEarliestArrival:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bit_identical_to_scalar(self, seed):
        distance, v_init, v_max, a_max, _ = random_cohort(seed)
        batch = earliest_arrival_time_batch(distance, v_init, v_max, a_max)
        for k in range(len(distance)):
            scalar = earliest_arrival_time(
                distance[k], v_init[k], v_max[k], a_max[k]
            )
            assert batch[k] == scalar, k

    def test_scalar_broadcast(self):
        batch = earliest_arrival_time_batch([1.0, 2.0, 4.0], 0.2, 1.5, 0.8)
        for k, d in enumerate([1.0, 2.0, 4.0]):
            assert batch[k] == earliest_arrival_time(d, 0.2, 1.5, 0.8)

    def test_validation_raised(self):
        with pytest.raises(ValueError):
            earliest_arrival_time_batch([1.0, -0.1], 0.2, 1.5, 0.8)
        with pytest.raises(ValueError):
            earliest_arrival_time_batch(1.0, 0.2, [1.5, -1.0], 0.8)


class TestLatestArrival:
    @pytest.mark.parametrize("seed", [4, 5])
    def test_bit_identical_to_scalar(self, seed):
        distance, v_init, _, _, d_max = random_cohort(seed)
        rng = np.random.default_rng(seed + 100)
        v_crawl = rng.uniform(0.0, 0.5, len(distance))
        v_crawl[::11] = 0.0  # the parked-forever (inf) branch
        batch = latest_arrival_time_batch(distance, v_init, v_crawl, d_max)
        for k in range(len(distance)):
            scalar = latest_arrival_time(
                distance[k], v_init[k], v_crawl[k], d_max[k]
            )
            assert batch[k] == scalar or (
                math.isinf(batch[k]) and math.isinf(scalar)
            ), k


class TestTwoPhaseTime:
    @pytest.mark.parametrize("seed", [6, 7])
    def test_bit_identical_to_scalar(self, seed):
        distance, v_init, v_max, a_max, d_max = random_cohort(seed)
        rng = np.random.default_rng(seed + 200)
        v = rng.uniform(0.0, 1.2, len(distance)) * np.maximum(v_max, 0.1)
        v[::13] = 0.0  # the v < eps (None) branch
        batch = two_phase_time_batch(v, distance, v_init, a_max, d_max)
        for k in range(len(distance)):
            scalar = _two_phase_time(
                v[k], distance[k], v_init[k], a_max[k], d_max[k]
            )
            if scalar is None:
                assert math.isnan(batch[k]), k
            else:
                assert batch[k] == scalar, k


class TestSolveCruiseVelocity:
    @pytest.mark.parametrize("seed", [8, 9, 10])
    def test_bit_identical_to_scalar(self, seed):
        distance, v_init, v_max, a_max, d_max = random_cohort(seed, count=150)
        # Strictly positive distances (the scalar solver's domain here).
        distance = np.maximum(distance, 0.05)
        rng = np.random.default_rng(seed + 300)
        # Mix of infeasible (too early / too late) and feasible targets.
        t_total = rng.uniform(-0.5, 30.0, len(distance))
        batch = solve_cruise_velocity_batch(
            distance, v_init, t_total, a_max, d_max, v_max
        )
        feasible = 0
        for k in range(len(distance)):
            scalar = solve_cruise_velocity(
                distance[k], v_init[k], t_total[k], a_max[k], d_max[k], v_max[k]
            )
            if scalar is None:
                assert math.isnan(batch[k]), k
            else:
                feasible += 1
                assert batch[k] == scalar, k
        assert feasible > 10  # the cohort actually exercises the solver

    def test_solution_achieves_requested_time(self):
        """Solved velocities reproduce the requested arrival times."""
        v = solve_cruise_velocity_batch(
            [3.0, 5.0], [0.4, 0.8], [6.0, 9.0], 0.75, 1.5, 1.5
        )
        for k, (d, v0, t) in enumerate([(3.0, 0.4, 6.0), (5.0, 0.8, 9.0)]):
            t_check = _two_phase_time(float(v[k]), d, v0, 0.75, 1.5)
            assert t_check == pytest.approx(t, abs=1e-5)

    def test_validation_raised(self):
        with pytest.raises(ValueError):
            solve_cruise_velocity_batch(1.0, 0.2, 5.0, 0.75, -1.0, 1.5)
        with pytest.raises(ValueError):
            solve_cruise_velocity_batch(1.0, 0.2, 5.0, 0.75, 1.5, 1.5, v_min=0.0)
