"""Safety-oracle invariants on hand-built violating traces (satellite d).

Each invariant is exercised against a *fake world* whose state is
constructed to violate exactly one property — so a failure here
pinpoints the oracle, not the simulator.  The fakes carry only the
attributes the oracle reads (``collisions``/``collision_episodes``,
``im.scheduler``/``im.reservations``, ``conflicts``, ``vehicles``,
``obs``, ``safety_checks``), which doubles as documentation of the
oracle's full coupling surface.

An end-to-end check on a real world (a fuzzer-found stall collision
from the checked-in library) closes the loop: the world's episode
counter, the oracle's collision records and ``SimResult.collisions``
all agree.
"""

import os
from types import SimpleNamespace

import pytest

from repro.geometry import IntersectionGeometry, Movement, Turn
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import Approach
from repro.obs import EventLog
from repro.scenarios import SafetyOracle, ScenarioSpec, build_world

LIBRARY = os.path.join(os.path.dirname(__file__), os.pardir, "scenarios")


def _vehicle(vid, enter_time=None, spawn_time=0.0, done=False,
             emergency=False):
    v = SimpleNamespace(
        info=SimpleNamespace(vehicle_id=vid),
        record=SimpleNamespace(enter_time=enter_time, spawn_time=spawn_time),
        done=done,
    )
    if emergency:
        v._scenario_emergency = True
    return v


def _world(**overrides):
    world = SimpleNamespace(
        collisions=0,
        collision_episodes=[],
        vehicles=[],
        im=SimpleNamespace(),  # neither scheduler nor reservations
        conflicts=None,
        obs=None,
        safety_checks=[],
    )
    for key, value in overrides.items():
        setattr(world, key, value)
    return world


class _Book:
    """A grant book answering ``holds`` from a fixed id set."""

    def __init__(self, holding):
        self._holding = set(holding)

    def holds(self, vehicle_id):
        return vehicle_id in self._holding


class _Crossing:
    """Stand-in for a ScheduledCrossing with scripted occupancy."""

    def __init__(self, vehicle_id, movement, occupancy):
        self.vehicle_id = vehicle_id
        self.movement = movement
        self._occupancy = occupancy

    def interval_occupancy(self, s_in, s_out):
        return self._occupancy


class TestCollisionEpisodes:
    def test_each_episode_is_one_violation(self):
        """Two episodes for the same pair (collide, separate,
        re-collide) are two distinct violations — the satellite (a)
        per-pair-episode semantics."""
        world = _world(
            collisions=2,
            collision_episodes=[(1.0, (0, 1)), (2.5, (0, 1))],
        )
        oracle = SafetyOracle(world)
        oracle._tick(3.0)
        hits = oracle.by_kind("collision")
        assert [v.t for v in hits] == [1.0, 2.5]
        assert oracle.kinds == {"collision"}
        oracle._tick(3.1)  # already-seen episodes are not re-reported
        assert len(oracle.violations) == 2

    def test_counter_drift_is_caught(self):
        """The scalar counter and the episode list must agree — a
        regression to pre-episode counting trips the oracle itself."""
        world = _world(collisions=3, collision_episodes=[(1.0, (0, 1))])
        oracle = SafetyOracle(world)
        with pytest.raises(AssertionError, match="drifted"):
            oracle._tick(2.0)


class TestReservationOverlap:
    def _conflicting_movements(self):
        north = Movement(Approach.NORTH, Turn.STRAIGHT)
        east = Movement(Approach.EAST, Turn.STRAIGHT)
        return north, east

    def _world_with_book(self, occ_a, occ_b):
        north, east = self._conflicting_movements()
        book = (
            _Crossing(0, north, occ_a),
            _Crossing(1, east, occ_b),
        )
        return _world(
            im=SimpleNamespace(scheduler=SimpleNamespace(book=book)),
            conflicts=ConflictTable(IntersectionGeometry()),
        )

    def test_overlapping_occupancies_flagged_once(self):
        world = self._world_with_book((2.0, 6.0), (4.0, 8.0))
        oracle = SafetyOracle(world)
        oracle._tick(1.0)
        hits = oracle.by_kind("reservation_overlap")
        assert len(hits) == 1
        assert "V0" in hits[0].detail and "V1" in hits[0].detail
        oracle._tick(1.1)  # the pair is deduplicated across ticks
        assert len(oracle.by_kind("reservation_overlap")) == 1

    def test_disjoint_occupancies_pass(self):
        world = self._world_with_book((2.0, 4.0), (4.0, 8.0))
        oracle = SafetyOracle(world)
        oracle._tick(1.0)
        assert oracle.violations == []


class TestUngrantedEntry:
    def test_entry_without_grant_flagged(self):
        world = _world(
            im=SimpleNamespace(reservations=_Book(holding=())),
            vehicles=[_vehicle(0, enter_time=4.0)],
        )
        oracle = SafetyOracle(world)
        oracle._tick(4.1)
        hits = oracle.by_kind("ungranted_entry")
        assert len(hits) == 1 and hits[0].vehicle_id == 0
        oracle._tick(4.2)  # an entry is judged exactly once
        assert len(oracle.violations) == 1

    def test_granted_entry_passes(self):
        world = _world(
            im=SimpleNamespace(reservations=_Book(holding={0})),
            vehicles=[_vehicle(0, enter_time=4.0)],
        )
        oracle = SafetyOracle(world)
        oracle._tick(4.1)
        assert oracle.violations == []

    def test_emergency_vehicles_are_exempt(self):
        world = _world(
            im=SimpleNamespace(reservations=_Book(holding=())),
            vehicles=[_vehicle(0, enter_time=4.0, emergency=True)],
        )
        oracle = SafetyOracle(world)
        oracle._tick(4.1)
        assert oracle.violations == []

    def test_scheduler_outranks_tile_book(self):
        """When the IM exposes both, the scheduler is grant truth."""
        world = _world(im=SimpleNamespace(scheduler=_Book(holding={0}),
                                          reservations=_Book(holding=())),
                       vehicles=[_vehicle(0, enter_time=4.0)])
        oracle = SafetyOracle(world)
        oracle._tick(4.1)
        assert oracle.violations == []


class TestStarvation:
    def test_waiting_past_the_bound_flagged_once(self):
        world = _world(vehicles=[_vehicle(0, spawn_time=0.0)])
        oracle = SafetyOracle(world, starvation_bound=10.0)
        oracle._tick(9.0)
        assert oracle.violations == []
        oracle._tick(10.5)
        hits = oracle.by_kind("starvation")
        assert len(hits) == 1 and "10.5s after spawn" in hits[0].detail
        oracle._tick(20.0)  # flagged once, not every tick
        assert len(oracle.violations) == 1

    def test_entered_and_done_vehicles_never_starve(self):
        world = _world(vehicles=[
            _vehicle(0, enter_time=3.0),
            _vehicle(1, done=True),
        ])
        oracle = SafetyOracle(world, starvation_bound=10.0)
        oracle._tick(500.0)
        assert oracle.violations == []

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            SafetyOracle(_world(), starvation_bound=0.0)


class TestObsEmission:
    def test_violations_land_on_the_event_bus(self):
        log = EventLog()
        world = _world(
            collisions=1,
            collision_episodes=[(1.0, (0, 1))],
            obs=log,
        )
        SafetyOracle(world)._tick(2.0)
        events = [e for e in log.events if e.kind == "safety.violation"]
        assert len(events) == 1
        assert events[0].actor == "oracle"
        assert events[0].data["violation"] == "collision"
        assert events[0].data["vehicle_id"] == 0


class TestEndToEnd:
    def test_real_collision_keeps_all_counters_aligned(self):
        """A fuzzer-found stall collision from the checked-in library:
        world episodes, oracle records and SimResult.collisions agree."""
        spec = ScenarioSpec.from_file(os.path.join(
            LIBRARY, "found", "found-collision-vt-im-s768789384.json"))
        world, oracle = build_world(spec)
        result = world.run()
        assert result.collisions >= 1
        assert result.collisions == len(world.collision_episodes)
        assert len(oracle.by_kind("collision")) == len(
            world.collision_episodes)
        assert oracle.kinds == set(spec.expect)
