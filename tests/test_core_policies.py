"""Unit tests for the three IM policies at the protocol level.

These drive the IMs directly over a zero-delay channel with scripted
requests — no vehicle agents — to pin down the protocol semantics:
what each IM replies, with which fields, and how its buffers differ.
"""

import pytest

from repro.core import (
    AimIM,
    CrossroadsIM,
    IMConfig,
    VtimIM,
    make_im,
    normalize_policy,
)
from repro.core.scheduler import ConflictScheduler
from repro.des import Environment
from repro.geometry import Approach, ConflictTable, IntersectionGeometry, Movement, Turn
from repro.network import (
    AimAccept,
    AimReject,
    AimRequest,
    Channel,
    CrossingRequest,
    CrossroadsCommand,
    ExitNotification,
    SyncRequest,
    SyncResponse,
    VelocityCommand,
)
from repro.vehicle import VehicleInfo, VehicleSpec


@pytest.fixture
def geometry():
    return IntersectionGeometry()


@pytest.fixture
def conflicts(geometry):
    return ConflictTable(geometry)


def build(policy, geometry, conflicts):
    env = Environment()
    channel = Channel(env)
    im = make_im(policy, env, channel, geometry, conflicts=conflicts)
    radio = channel.attach("V0")
    return env, channel, im, radio


def info(vid=0, movement=None, buffer=0.078):
    return VehicleInfo(
        vehicle_id=vid,
        spec=VehicleSpec(),
        movement=movement or Movement(Approach.SOUTH, Turn.STRAIGHT),
        buffer=buffer,
    )


def rx(env, radio, timeout=1.0):
    """Run until the radio has a message (or fail)."""
    env.run(until=env.now + timeout)
    assert radio.pending() > 0, "no response received"
    return radio.inbox.get_nowait()


class TestPolicyFactory:
    def test_normalize(self):
        assert normalize_policy("VTIM") == "vt-im"
        assert normalize_policy("qb-im") == "aim"
        assert normalize_policy("Crossroads") == "crossroads"
        with pytest.raises(ValueError):
            normalize_policy("nonsense")

    def test_make_im_types(self, geometry, conflicts):
        env = Environment()
        channel = Channel(env)
        assert isinstance(
            make_im("vt-im", env, channel, geometry, conflicts), VtimIM
        )
        env2 = Environment()
        channel2 = Channel(env2)
        assert isinstance(
            make_im("aim", env2, channel2, geometry), AimIM
        )


class TestSyncResponder:
    def test_sync_round_trip(self, geometry, conflicts):
        env, channel, im, radio = build("crossroads", geometry, conflicts)
        radio.send(SyncRequest(sender="V0", receiver="IM", t0=123.0))
        msg = rx(env, radio)
        assert isinstance(msg, SyncResponse)
        assert msg.t0 == 123.0
        assert msg.t1 == msg.t2  # instantaneous responder


class TestVtim:
    def test_reply_is_velocity_command(self, geometry, conflicts):
        env, channel, im, radio = build("vt-im", geometry, conflicts)
        radio.send(
            CrossingRequest(
                sender="V0", receiver="IM", tt=0.0, dt=3.0, vc=2.0, vehicle_info=info()
            )
        )
        msg = rx(env, radio)
        assert isinstance(msg, VelocityCommand)
        assert 0 < msg.vt <= 3.0
        assert msg.toa > 0

    def test_rtd_buffer_applied(self, geometry, conflicts):
        env, channel, im, radio = build("vt-im", geometry, conflicts)
        assert im.rtd_buffer == pytest.approx(0.45)

    def test_exit_releases_reservation(self, geometry, conflicts):
        env, channel, im, radio = build("vt-im", geometry, conflicts)
        radio.send(
            CrossingRequest(
                sender="V0", receiver="IM", tt=0.0, dt=3.0, vc=2.0, vehicle_info=info()
            )
        )
        rx(env, radio)
        assert len(im.scheduler) == 1
        radio.send(ExitNotification(sender="V0", receiver="IM", exit_time=env.now))
        env.run(until=env.now + 0.1)
        assert len(im.scheduler) == 0


class TestCrossroads:
    def test_te_is_tt_plus_wcrtd(self, geometry, conflicts):
        env, channel, im, radio = build("crossroads", geometry, conflicts)
        tt = 0.0
        radio.send(
            CrossingRequest(
                sender="V0", receiver="IM", tt=tt, dt=3.0, vc=2.0, vehicle_info=info()
            )
        )
        msg = rx(env, radio)
        assert isinstance(msg, CrossroadsCommand)
        assert msg.te == pytest.approx(tt + im.config.wc_rtd)
        assert msg.toa >= msg.te

    def test_te_guard_under_backlog(self, geometry, conflicts):
        """A very stale TT cannot produce a TE in the past."""
        env, channel, im, radio = build("crossroads", geometry, conflicts)
        env.run(until=10.0)
        te = im.execution_time(tt=0.0)
        assert te >= 10.0

    def test_no_rtd_buffer_means_tighter_schedule(self, geometry, conflicts):
        """Second conflicting vehicle is admitted sooner than under VT-IM."""

        def second_toa(policy):
            env = Environment()
            channel = Channel(env)
            im = make_im(policy, env, channel, geometry, conflicts=ConflictTable(geometry))
            r0 = channel.attach("V0")
            r1 = channel.attach("V1")
            m_a = Movement(Approach.SOUTH, Turn.STRAIGHT)
            m_b = Movement(Approach.EAST, Turn.STRAIGHT)
            r0.send(
                CrossingRequest(
                    sender="V0", receiver="IM", tt=0.0, dt=3.0, vc=3.0,
                    vehicle_info=info(0, m_a),
                )
            )
            env.run(until=0.5)
            r1.send(
                CrossingRequest(
                    sender="V1", receiver="IM", tt=0.5, dt=3.0, vc=3.0,
                    vehicle_info=info(1, m_b),
                )
            )
            env.run(until=1.5)
            assert r1.pending() > 0
            return r1.inbox.get_nowait().toa

        assert second_toa("crossroads") < second_toa("vt-im")


class TestAim:
    def test_accept_then_conflicting_reject(self, geometry):
        env = Environment()
        channel = Channel(env)
        im = make_im("aim", env, channel, geometry)
        r0 = channel.attach("V0")
        r1 = channel.attach("V1")
        m_a = Movement(Approach.SOUTH, Turn.STRAIGHT)
        m_b = Movement(Approach.EAST, Turn.STRAIGHT)
        r0.send(
            AimRequest(
                sender="V0", receiver="IM", toa=1.0, vc=3.0, vehicle_info=info(0, m_a)
            )
        )
        env.run(until=0.5)
        assert isinstance(r0.inbox.get_nowait(), AimAccept)
        # Conflicting trajectory at the same time: rejected.
        r1.send(
            AimRequest(
                sender="V1", receiver="IM", toa=1.0, vc=3.0, vehicle_info=info(1, m_b)
            )
        )
        env.run(until=0.9)
        assert isinstance(r1.inbox.get_nowait(), AimReject)

    def test_non_conflicting_both_accepted(self, geometry):
        env = Environment()
        channel = Channel(env)
        im = make_im("aim", env, channel, geometry)
        r0 = channel.attach("V0")
        r1 = channel.attach("V1")
        m_a = Movement(Approach.SOUTH, Turn.STRAIGHT)
        m_b = Movement(Approach.NORTH, Turn.STRAIGHT)
        r0.send(
            AimRequest(
                sender="V0", receiver="IM", toa=1.0, vc=3.0, vehicle_info=info(0, m_a)
            )
        )
        env.run(until=0.5)
        assert isinstance(r0.inbox.get_nowait(), AimAccept)
        r1.send(
            AimRequest(
                sender="V1", receiver="IM", toa=1.0, vc=3.0, vehicle_info=info(1, m_b)
            )
        )
        env.run(until=0.9)
        assert isinstance(r1.inbox.get_nowait(), AimAccept)

    def test_stale_toa_rejected(self, geometry):
        env = Environment()
        channel = Channel(env)
        im = make_im("aim", env, channel, geometry)
        r0 = channel.attach("V0")
        env.run(until=5.0)
        r0.send(
            AimRequest(
                sender="V0", receiver="IM", toa=1.0, vc=3.0, vehicle_info=info(0)
            )
        )
        env.run(until=5.5)
        assert isinstance(r0.inbox.get_nowait(), AimReject)

    def test_beyond_horizon_rejected(self, geometry):
        env = Environment()
        channel = Channel(env)
        im = make_im("aim", env, channel, geometry)
        r0 = channel.attach("V0")
        r0.send(
            AimRequest(
                sender="V0", receiver="IM", toa=1e6, vc=3.0, vehicle_info=info(0)
            )
        )
        env.run(until=0.5)
        assert isinstance(r0.inbox.get_nowait(), AimReject)

    def test_exit_releases_tiles(self, geometry):
        env = Environment()
        channel = Channel(env)
        im = make_im("aim", env, channel, geometry)
        r0 = channel.attach("V0")
        r0.send(
            AimRequest(
                sender="V0", receiver="IM", toa=1.0, vc=3.0, vehicle_info=info(0)
            )
        )
        env.run(until=0.5)
        r0.inbox.get_nowait()
        assert im.reservations.claim_count > 0
        r0.send(ExitNotification(sender="V0", receiver="IM", exit_time=env.now))
        env.run(until=0.7)
        assert im.reservations.claim_count == 0

    def test_launch_proposal_accepted_after_stop(self, geometry):
        env = Environment()
        channel = Channel(env)
        im = make_im("aim", env, channel, geometry)
        r0 = channel.attach("V0")
        r0.send(
            AimRequest(
                sender="V0",
                receiver="IM",
                toa=1.0,
                vc=0.0,
                vehicle_info=info(0),
                accelerate=True,
                standoff=0.05,
            )
        )
        env.run(until=0.5)
        assert isinstance(r0.inbox.get_nowait(), AimAccept)

    def test_compute_cost_counts_cells(self, geometry):
        env = Environment()
        channel = Channel(env)
        im = make_im("aim", env, channel, geometry)
        r0 = channel.attach("V0")
        r0.send(
            AimRequest(
                sender="V0", receiver="IM", toa=1.0, vc=3.0, vehicle_info=info(0)
            )
        )
        env.run(until=0.5)
        assert im.cells_simulated > 100
        assert im.compute.total_time > 0


class TestQueueing:
    def test_duplicate_requests_deduplicated(self, geometry, conflicts):
        env, channel, im, radio = build("crossroads", geometry, conflicts)
        for _ in range(5):
            radio.send(
                CrossingRequest(
                    sender="V0", receiver="IM", tt=0.0, dt=3.0, vc=2.0,
                    vehicle_info=info(),
                )
            )
        env.run(until=1.0)
        # Five copies arrive; at most one may slip in while the worker
        # is idle in the same instant, the rest coalesce.
        assert im.compute.requests <= 2
        assert radio.pending() == im.compute.requests

    def test_fifo_service_order_creates_queueing_delay(self, geometry, conflicts):
        """Simultaneous arrivals queue behind one compute core (Ch 4)."""
        env = Environment()
        channel = Channel(env)
        im = make_im("crossroads", env, channel, geometry, conflicts=conflicts)
        radios = [channel.attach(f"V{i}") for i in range(4)]
        movements = [
            Movement(a, Turn.STRAIGHT)
            for a in (Approach.NORTH, Approach.EAST, Approach.SOUTH, Approach.WEST)
        ]
        for i, (r, m) in enumerate(zip(radios, movements)):
            r.send(
                CrossingRequest(
                    sender=f"V{i}", receiver="IM", tt=0.0, dt=3.0, vc=3.0,
                    vehicle_info=info(i, m),
                )
            )
        env.run(until=1.0)
        # All four served; total compute is the paper's WC-CD ballpark.
        assert im.compute.requests == 4
        assert 0.08 < im.compute.total_time < 0.25


class TestStaleRequestGuard:
    """The per-sender monotonic-seq guard in the base receive loop.

    A reordered (delay-spiked) old request processed after a newer one
    would reschedule the vehicle from out-of-date state — releasing the
    reservation it is physically committed to and handing the window to
    cross traffic.  The guard drops it instead.
    """

    def test_reordered_older_request_dropped(self, geometry, conflicts):
        env, channel, im, radio = build("crossroads", geometry, conflicts)
        old = CrossingRequest(
            sender="V0", receiver="IM", tt=0.0, dt=3.0, vc=2.0, vehicle_info=info()
        )
        new = CrossingRequest(
            sender="V0", receiver="IM", tt=0.2, dt=2.6, vc=2.0, vehicle_info=info()
        )
        assert old.seq < new.seq
        radio.send(new)  # the newer request arrives first ...
        first = rx(env, radio)
        assert first.in_reply_to == new.seq
        booked_toa = first.toa
        radio.send(old)  # ... then the spiked stale copy limps in
        env.run(until=env.now + 1.0)
        assert im.stats.stale_requests_dropped == 1
        assert radio.pending() == 0, "stale request must not be answered"
        # The live reservation is untouched.
        assert len(im.scheduler) == 1
        (entry,) = im.scheduler.book
        assert entry.toa == pytest.approx(booked_toa)

    def test_in_order_requests_still_served(self, geometry, conflicts):
        env, channel, im, radio = build("crossroads", geometry, conflicts)
        for tt in (0.0, 0.5):
            radio.send(
                CrossingRequest(
                    sender="V0", receiver="IM", tt=tt, dt=3.0, vc=2.0,
                    vehicle_info=info(),
                )
            )
            rx(env, radio)
        assert im.stats.stale_requests_dropped == 0
        assert im.stats.accepts == 2

    def test_guard_is_per_sender(self, geometry, conflicts):
        """V1's first request is not shadowed by V0's higher seqs."""
        env, channel, im, radio = build("crossroads", geometry, conflicts)
        r1 = channel.attach("V1")
        radio.send(
            CrossingRequest(
                sender="V0", receiver="IM", tt=0.0, dt=3.0, vc=2.0,
                vehicle_info=info(0),
            )
        )
        rx(env, radio)
        r1.send(
            CrossingRequest(
                sender="V1", receiver="IM", tt=0.1, dt=3.0, vc=2.0,
                vehicle_info=info(1, Movement(Approach.EAST, Turn.STRAIGHT)),
            )
        )
        msg = rx(env, r1)
        assert msg.in_reply_to is not None
        assert im.stats.stale_requests_dropped == 0
