"""Tests for SimResult metrics arithmetic."""

import pytest

from repro.sim.metrics import SimResult, compare_policies
from repro.vehicle.agent import VehicleRecord


def record(vid, spawn, exit_time, ideal, rtds=(), requests=1, stopped=False):
    r = VehicleRecord(
        vehicle_id=vid, movement_key="S-straight", spawn_time=spawn, spawn_speed=3.0
    )
    r.ideal_transit = ideal
    r.exit_time = exit_time
    r.requests_sent = requests
    r.rtds = list(rtds)
    r.came_to_stop = stopped
    return r


def make_result(policy="crossroads", **kw):
    defaults = dict(records=[], sim_duration=100.0)
    defaults.update(kw)
    return SimResult(policy=policy, **defaults)


class TestSimResult:
    def test_delay_is_excess_over_ideal(self):
        r = record(0, spawn=10.0, exit_time=15.0, ideal=2.0)
        assert r.delay == pytest.approx(3.0)

    def test_delay_clamped_at_zero(self):
        r = record(0, spawn=10.0, exit_time=11.0, ideal=2.0)
        assert r.delay == 0.0

    def test_unfinished_vehicle_excluded(self):
        unfinished = VehicleRecord(
            vehicle_id=1, movement_key="x", spawn_time=0.0, spawn_speed=3.0
        )
        result = make_result(records=[record(0, 0.0, 3.0, 2.0), unfinished])
        assert result.n_finished == 1
        assert unfinished.delay is None

    def test_average_and_total_delay(self):
        result = make_result(records=[
            record(0, 0.0, 3.0, 2.0),   # delay 1
            record(1, 0.0, 5.0, 2.0),   # delay 3
        ])
        assert result.total_delay == pytest.approx(4.0)
        assert result.average_delay == pytest.approx(2.0)

    def test_throughput_is_n_over_total_transit(self):
        result = make_result(records=[
            record(0, 0.0, 2.0, 2.0),
            record(1, 0.0, 6.0, 2.0),
        ])
        # transits 2 and 6 -> 2/8.
        assert result.throughput == pytest.approx(0.25)

    def test_throughput_empty(self):
        assert make_result().throughput == 0.0
        assert make_result().average_delay == 0.0

    def test_worst_rtd(self):
        result = make_result(records=[
            record(0, 0.0, 2.0, 2.0, rtds=[0.05, 0.12]),
            record(1, 0.0, 2.0, 2.0, rtds=[0.03]),
        ])
        assert result.worst_rtd == pytest.approx(0.12)

    def test_stops_and_requests(self):
        result = make_result(records=[
            record(0, 0.0, 2.0, 2.0, requests=3, stopped=True),
            record(1, 0.0, 2.0, 2.0, requests=1),
        ])
        assert result.stops == 1
        assert result.requests_total == 4

    def test_safe_flag(self):
        assert make_result(collisions=0).safe
        assert not make_result(collisions=1).safe

    def test_summary_is_flat_floats(self):
        result = make_result(records=[record(0, 0.0, 2.0, 2.0)])
        summary = result.summary()
        assert all(isinstance(v, float) for v in summary.values())


class TestComparePolicies:
    def test_ratio(self):
        a = make_result("crossroads", records=[record(0, 0.0, 2.0, 2.0)])
        b = make_result("vt-im", records=[record(0, 0.0, 4.0, 2.0)])
        ratios = compare_policies([a, b], baseline="vt-im")
        assert ratios["crossroads"] == pytest.approx(2.0)

    def test_zero_baseline_raises(self):
        a = make_result("crossroads", records=[record(0, 0.0, 2.0, 2.0)])
        b = make_result("vt-im", records=[])
        with pytest.raises(ValueError):
            compare_policies([a, b], baseline="vt-im")
