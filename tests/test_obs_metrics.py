"""Tests for the streaming metrics layer (repro.obs.metrics / prom).

Covers the instrument primitives, snapshot/merge semantics, the
exporters and — most load-bearing — the two equivalence guarantees:

* metrics-on == metrics-off on ``SimResult.summary()`` (the registry
  never touches an RNG or schedules a DES event), and
* jobs=1 == jobs=2 on merged worker snapshots (the merge operators are
  order-insensitive).
"""

import json
import pickle

import pytest

from repro.geometry import Approach, Movement, Turn
from repro.grid import corridor_spec, run_grid
from repro.obs import (
    MetricsRegistry,
    NULL_METRICS,
    RTD_BUCKETS,
    merge_metrics_snapshots,
    metrics_to_csv,
    metrics_to_jsonl,
    parse_prometheus,
    to_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.sim import RunTask, run_scenario
from repro.sim.parallel import run_tasks
from repro.traffic import Arrival, PoissonTraffic


def _arrivals(n=8, flow=0.3, seed=5):
    return PoissonTraffic(flow_rate=flow, seed=seed).generate(n)


class TestCounter:
    def test_total_and_series(self):
        reg = MetricsRegistry(bucket_dt=1.0)
        c = reg.counter("events")
        c.inc(2.0, t=0.25)
        c.inc(3.0, t=0.75)
        c.inc(1.0, t=1.5)
        assert c.total == 6.0
        assert c.series == {0: 5.0, 1: 1.0}

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x")
        c.inc(2.0, t=0.0)
        with pytest.raises(ValueError):
            c.inc(-1.0, t=0.0)
        assert c.total == 2.0  # untouched by the rejected call

    def test_inc_without_timestamp_skips_series(self):
        c = MetricsRegistry().counter("x")
        c.inc(4.0)
        assert c.total == 4.0
        assert c.series == {}


class TestGauge:
    def test_value_peak_and_series(self):
        g = MetricsRegistry(bucket_dt=1.0).gauge("depth")
        g.set(3.0, t=0.1)
        g.set(7.0, t=0.9)
        g.set(2.0, t=1.1)
        assert g.value == 2.0
        assert g.peak == 7.0
        # last write per bucket wins
        assert g.series == {0: 7.0, 1: 2.0}


class TestHistogram:
    def test_bounds_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(1.0, float("inf")))
        with pytest.raises(ValueError):
            reg.histogram("h3", buckets=(2.0, 1.0))

    def test_observe_buckets_and_overflow(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v, t=0.0)
        assert h.counts == [1.0, 1.0, 1.0, 1.0]  # last slot = +Inf overflow
        assert h.count == 4.0
        assert h.sum == pytest.approx(14.0)

    def test_quantile_interpolation(self):
        h = MetricsRegistry().histogram("h", buckets=(10.0, 20.0))
        for _ in range(10):
            h.observe(5.0)
        # All mass in (0, 10]; histogram_quantile interpolates linearly.
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_overflow_clamps_to_top_bound(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0

    def test_quantile_empty_and_range(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", {"node": "N0"}) is not reg.counter("a")
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_pickles_and_round_trips(self):
        reg = MetricsRegistry(bucket_dt=0.5)
        reg.counter("c", {"node": "N0"}).inc(3.0, t=0.6)
        reg.gauge("g").set(4.0, t=0.2)
        reg.histogram("h", buckets=RTD_BUCKETS).observe(0.008, t=0.9)
        snap = reg.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        rebuilt = MetricsRegistry.from_snapshot(snap)
        assert rebuilt.snapshot() == snap
        assert rebuilt.flat() == reg.flat()

    def test_flat_headlines(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2.0)
        reg.gauge("g", {"node": "N1"}).set(5.0)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        flat = reg.flat()
        assert flat["c"] == 2.0
        assert flat["g{node=N1}"] == 5.0
        assert flat["g{node=N1}.peak"] == 5.0
        assert flat["h.count"] == 1.0
        assert flat["h.p50"] == pytest.approx(0.5)


class TestMerge:
    def _snap(self, counter=0.0, gauge=0.0, obs=()):
        reg = MetricsRegistry()
        if counter:
            reg.counter("c").inc(counter, t=0.0)
        if gauge:
            reg.gauge("g").set(gauge, t=0.0)
        for v in obs:
            reg.histogram("h", buckets=(1.0, 2.0)).observe(v, t=0.0)
        return reg.snapshot()

    def test_counters_add_gauges_max_hists_add(self):
        merged = MetricsRegistry.from_snapshot(self._snap(counter=3.0, gauge=5.0, obs=(0.5,)))
        merged.merge(self._snap(counter=4.0, gauge=2.0, obs=(1.5, 9.0)))
        flat = merged.flat()
        assert flat["c"] == 7.0
        assert flat["g"] == 5.0  # elementwise max, not last-write
        assert flat["g.peak"] == 5.0
        assert flat["h.count"] == 3.0

    def test_merge_order_insensitive(self):
        parts = [self._snap(counter=1.0, gauge=4.0, obs=(0.3,)),
                 self._snap(counter=2.0, gauge=9.0, obs=(1.7,)),
                 self._snap(counter=5.0, gauge=1.0)]
        forward = merge_metrics_snapshots(parts)
        backward = merge_metrics_snapshots(list(reversed(parts)))
        assert forward == backward

    def test_bucket_dt_mismatch_raises(self):
        reg = MetricsRegistry(bucket_dt=1.0)
        other = MetricsRegistry(bucket_dt=0.5)
        other.counter("c").inc(1.0, t=0.0)
        with pytest.raises(ValueError):
            reg.merge(other.snapshot())

    def test_histogram_bounds_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        bad = MetricsRegistry()
        bad.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            reg.merge(bad.snapshot())

    def test_merge_empty_inputs(self):
        assert merge_metrics_snapshots([]) == {}
        assert merge_metrics_snapshots([{}, {}]) == {}


class TestNullMetrics:
    def test_null_registry_is_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").inc(5.0, t=1.0)
        NULL_METRICS.gauge("g").set(3.0, t=1.0)
        NULL_METRICS.histogram("h").observe(0.5, t=1.0)
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.flat() == {}

    def test_world_normalises_null_to_none(self):
        result = run_scenario("crossroads", _arrivals(4), seed=2,
                              metrics=NULL_METRICS)
        assert result.metrics == {}


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("des.events").inc(120.0, t=0.5)
        reg.gauge("im.backlog", {"node": "world"}).set(3.0, t=1.5)
        h = reg.histogram("vehicle.rtd_seconds", buckets=RTD_BUCKETS)
        h.observe(0.0075, t=2.0)
        h.observe(0.012, t=2.5)
        return reg

    def test_prometheus_round_trip(self):
        snap = self._registry().snapshot()
        text = to_prometheus(snap)
        samples = parse_prometheus(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["repro_des_events_total"] == [({}, 120.0)]
        assert by_name["repro_im_backlog"] == [({"node": "world"}, 3.0)]
        # Cumulative histogram: the +Inf bucket equals the count.
        inf_bucket = [v for labels, v in by_name["repro_vehicle_rtd_seconds_bucket"]
                      if labels.get("le") == "+Inf"]
        assert inf_bucket == [2.0]
        assert by_name["repro_vehicle_rtd_seconds_count"] == [({}, 2.0)]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not { a sample\n")

    def test_csv_rows(self, tmp_path):
        path = tmp_path / "m.csv"
        text = metrics_to_csv(self._registry().snapshot(), str(path))
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "metric,type,labels,t_start_s,value"
        assert "des.events,counter,,0,120" in lines

    def test_jsonl_records(self, tmp_path):
        path = tmp_path / "m.jsonl"
        text = metrics_to_jsonl(self._registry().snapshot(), str(path))
        records = [json.loads(line) for line in text.strip().splitlines()]
        assert len(records) == 3
        counter = next(r for r in records if r["name"] == "des.events")
        assert counter["series"] == {"0": 120.0}


class TestInstrumentedRuns:
    def test_world_series_are_populated(self):
        reg = MetricsRegistry()
        result = run_scenario("crossroads", _arrivals(), seed=5, metrics=reg)
        flat = reg.flat()
        assert flat["des.events"] > 0
        assert flat["net.sent"] == result.messages_sent
        # Every completed round trip is observed exactly once.
        expected_rtds = sum(len(r.rtds) for r in result.records)
        assert flat["vehicle.rtd_seconds{node=world}.count"] == expected_rtds
        assert result.metrics == reg.snapshot()

    def test_aim_reports_tile_occupancy(self):
        reg = MetricsRegistry()
        run_scenario("aim", _arrivals(), seed=5, metrics=reg)
        flat = reg.flat()
        assert "tiles.claims{node=world}.peak" in flat
        assert "scheduler.reservations{node=world}.peak" not in flat

    def test_grid_per_node_series(self):
        reg = MetricsRegistry()
        result = run_grid(corridor_spec(3), n_cars=8, flow_rate=0.25,
                          seed=7, metrics=reg)
        flat = reg.flat()
        assert flat["grid.handoffs"] == result.handoffs
        for node in ("N0", "N1", "N2"):
            assert f"node.vehicles_active{{node={node}}}.peak" in flat
        assert result.metrics == reg.snapshot()


class TestBitIdentity:
    """Attaching metrics must not perturb the simulation at all."""

    def test_world_summary_identical_with_metrics(self):
        arrivals = _arrivals(10, flow=0.35, seed=9)
        plain = run_scenario("crossroads", arrivals, seed=9)
        metered = run_scenario("crossroads", arrivals, seed=9,
                               metrics=MetricsRegistry())
        assert plain.summary() == metered.summary()
        assert plain.metrics == {}
        assert metered.metrics != {}

    def test_grid_summary_identical_with_metrics(self):
        spec = corridor_spec(3)
        plain = run_grid(spec, n_cars=10, flow_rate=0.25, seed=4)
        metered = run_grid(spec, n_cars=10, flow_rate=0.25, seed=4,
                           metrics=MetricsRegistry())
        assert plain.summary() == metered.summary()


def _metered_cell(seed):
    """Module-level picklable worker: one metered run's snapshot."""
    reg = MetricsRegistry()
    arrivals = PoissonTraffic(flow_rate=0.3, seed=seed).generate(6)
    run_scenario("crossroads", arrivals, seed=seed, metrics=reg)
    return reg.snapshot()


class TestParallelMergeIdentity:
    def test_jobs1_equals_jobs2(self):
        tasks = [RunTask(_metered_cell, (seed,)) for seed in (1, 2, 3, 4)]
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert serial == parallel  # per-cell snapshots are byte-equal
        merged_serial = merge_metrics_snapshots(serial)
        merged_parallel = merge_metrics_snapshots(parallel)
        assert merged_serial == merged_parallel
        total = MetricsRegistry.from_snapshot(merged_serial).flat()
        per_cell = [MetricsRegistry.from_snapshot(s).flat() for s in serial]
        assert total["des.events"] == sum(f["des.events"] for f in per_cell)
