"""Loopback equivalence: the serve fabric does not change decisions.

Two pins, per the L8 contract:

* **Bit identity** — a stock :class:`~repro.sim.world.World` and the
  same world whose transport round-trips *every* message through the
  wire codec (:class:`~repro.network.wire.CodecChannel`) produce
  identical results: same summary, same per-vehicle decision sequence.
  The codec is provably lossless in situ, not just in unit round-trips.

* **Decision-level pin over TCP** — a one-node world whose IM traffic
  crosses a real localhost socket to a remote
  :class:`~repro.serve.ImServer` reaches the same per-vehicle decision
  sequence (grant/reject kinds, in order) as the stock in-process
  channel.  Timing-tolerant by design: wall-clock jitter may shift
  *when* decisions land, never *what* they are.
"""

import asyncio
import threading

from repro.geometry.layout import Approach, Movement, Turn
from repro.network.wire import codec_transport
from repro.obs.events import EventLog
from repro.serve import ImServer, ServeConfig, run_world_over_server
from repro.sim.world import World
from repro.traffic import PoissonTraffic
from repro.traffic.generator import Arrival

#: Message kinds that are IM decisions (vehicle-bound verdicts).
DECISIONS = frozenset(
    {"CrossroadsCommand", "VelocityCommand", "AimAccept", "AimReject"}
)


def _decision_sequences(log: EventLog) -> dict:
    """Per-vehicle ordered decision kinds from ``net.deliver`` events."""
    out: dict = {}
    for event in log.events:
        if event.kind != "net.deliver":
            continue
        if event.data.get("msg") not in DECISIONS:
            continue
        out.setdefault(event.actor, []).append(event.data["msg"])
    return out


class TestCodecBitIdentity:
    def _world(self, transport_factory=None):
        return World(
            "crossroads",
            PoissonTraffic(0.3, seed=11).generate(12),
            seed=7,
            obs=EventLog(),
            transport_factory=transport_factory,
        )

    def test_codec_transport_is_bit_identical(self):
        stock = self._world()
        stock_result = stock.run()
        coded = self._world(transport_factory=codec_transport)
        coded_result = coded.run()
        assert coded_result.summary() == stock_result.summary()
        assert coded.env.now == stock.env.now
        assert coded.env.events_processed == stock.env.events_processed
        assert _decision_sequences(coded.obs) == _decision_sequences(
            stock.obs
        )
        stats = coded.channel.stats
        assert stats.sent == stock.channel.stats.sent
        assert stats.delivered == stock.channel.stats.delivered


ARRIVALS = [
    (0.0, Approach.SOUTH, Turn.STRAIGHT),
    (2.0, Approach.EAST, Turn.RIGHT),
    (4.0, Approach.NORTH, Turn.STRAIGHT),
    (6.0, Approach.WEST, Turn.LEFT),
]


def _arrivals():
    return [
        Arrival(time=t, movement=Movement(entry=entry, turn=turn), speed=2.5)
        for t, entry, turn in ARRIVALS
    ]


class TestTcpDecisionPin:
    def test_world_over_tcp_matches_stock_decisions(self):
        # Reference: the same workload on the stock in-process channel.
        stock = World("crossroads", _arrivals(), seed=3, obs=EventLog())
        stock_result = stock.run()
        expected = _decision_sequences(stock.obs)
        assert stock_result.n_finished == len(ARRIVALS)
        assert expected, "stock run must produce decisions to pin against"

        # Serve-mode server on its own thread + event loop.
        holder = {}
        ready = threading.Event()

        def serve():
            async def main():
                server = ImServer(ServeConfig(
                    policy="crossroads", port=0,
                    time_scale=10.0, apply_estimate=False,
                ))
                await server.start()
                holder["server"] = server
                holder["loop"] = asyncio.get_running_loop()
                ready.set()
                await server.serve_forever()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(10.0), "server failed to start"
        server = holder["server"]

        decisions: dict = {}

        def on_deliver(message) -> None:
            if type(message).__name__ in DECISIONS:
                decisions.setdefault(message.receiver, []).append(
                    type(message).__name__
                )

        try:
            result = run_world_over_server(
                "crossroads",
                _arrivals(),
                "127.0.0.1",
                server.port,
                seed=3,
                time_scale=10.0,
                on_deliver=on_deliver,
            )
        finally:
            holder["loop"].call_soon_threadsafe(server.request_shutdown)
            thread.join(timeout=10.0)
        assert not thread.is_alive()

        assert result.n_finished == len(ARRIVALS)
        assert decisions == expected
        assert server.im.stats.accepts == len(ARRIVALS)
        assert server.im.stats.rejects == 0
        assert server.im.stats.exits == len(ARRIVALS)
