"""Tests for the bicycle model (Eq 7.1) and pure-pursuit tracking."""

import math

import numpy as np
import pytest

from repro.kinematics import BicycleModel, BicycleState, PurePursuitTracker


class TestBicycleModel:
    def test_straight_line_integration(self):
        model = BicycleModel(wheelbase=0.335)
        state = BicycleState(x=0.0, y=0.0, heading=0.0, speed=2.0)
        for _ in range(100):
            state = model.step(state, accel=0.0, steer=0.0, dt=0.01)
        assert state.x == pytest.approx(2.0, abs=1e-6)
        assert state.y == pytest.approx(0.0, abs=1e-9)
        assert state.speed == pytest.approx(2.0)

    def test_acceleration(self):
        model = BicycleModel(wheelbase=0.335)
        state = BicycleState(x=0.0, y=0.0, heading=0.0, speed=0.0)
        for _ in range(100):
            state = model.step(state, accel=1.0, steer=0.0, dt=0.01)
        assert state.speed == pytest.approx(1.0, abs=1e-6)
        assert state.x == pytest.approx(0.5, abs=1e-3)

    def test_constant_steer_traces_circle(self):
        """Eq 7.1 with constant steer: radius = L / tan(psi)."""
        wheelbase = 0.335
        steer = 0.3
        radius = wheelbase / math.tan(steer)
        model = BicycleModel(wheelbase=wheelbase)
        state = BicycleState(x=0.0, y=0.0, heading=0.0, speed=1.0)
        points = []
        for _ in range(2000):
            state = model.step(state, accel=0.0, steer=steer, dt=0.005)
            points.append((state.x, state.y))
        pts = np.array(points)
        # Circle centre should be at (0, radius); check radial distance.
        dists = np.hypot(pts[:, 0] - 0.0, pts[:, 1] - radius)
        assert np.allclose(dists, radius, atol=radius * 0.02)

    def test_speed_never_negative(self):
        model = BicycleModel(wheelbase=0.335)
        state = BicycleState(x=0.0, y=0.0, heading=0.0, speed=0.5)
        state = model.step(state, accel=-10.0, steer=0.0, dt=1.0)
        assert state.speed == 0.0

    def test_max_speed_respected(self):
        model = BicycleModel(wheelbase=0.335, max_speed=3.0)
        state = BicycleState(x=0.0, y=0.0, heading=0.0, speed=2.9)
        state = model.step(state, accel=100.0, steer=0.0, dt=1.0)
        assert state.speed == 3.0

    def test_steer_clipped(self):
        model = BicycleModel(wheelbase=0.335, max_steer=0.2)
        s_big = model.step(
            BicycleState(0, 0, 0.0, 1.0), accel=0.0, steer=5.0, dt=0.1
        )
        s_lim = model.step(
            BicycleState(0, 0, 0.0, 1.0), accel=0.0, steer=0.2, dt=0.1
        )
        assert s_big.heading == pytest.approx(s_lim.heading)

    def test_simulate_collects_samples(self):
        model = BicycleModel(wheelbase=0.335)
        samples = model.simulate(
            BicycleState(0, 0, 0, 1.0),
            control=lambda t, s: (0.0, 0.0),
            duration=1.0,
            dt=0.1,
        )
        assert len(samples) == 11
        assert samples[-1][0] == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BicycleModel(wheelbase=0.0)
        with pytest.raises(ValueError):
            BicycleModel(wheelbase=1.0, max_steer=2.0)
        model = BicycleModel(wheelbase=0.335)
        with pytest.raises(ValueError):
            model.step(BicycleState(0, 0, 0, 1.0), 0.0, 0.0, dt=0.0)


class TestPurePursuit:
    def test_follows_straight_path(self):
        path = np.array([[0.0, 0.0], [10.0, 0.0]])
        tracker = PurePursuitTracker(path, lookahead=0.5, wheelbase=0.335)
        model = BicycleModel(wheelbase=0.335)
        # Start offset from the path; it should converge.
        state = BicycleState(x=0.0, y=0.3, heading=0.0, speed=1.5)
        for _ in range(400):
            steer = tracker.steering(state)
            state = model.step(state, accel=0.0, steer=steer, dt=0.01)
        assert abs(state.y) < 0.05

    def test_follows_quarter_circle(self):
        """Drive the testbed's left-turn arc; stay within lane width."""
        from repro.geometry import Approach, IntersectionGeometry, Movement, Turn

        geometry = IntersectionGeometry()
        path = geometry.path(Movement(Approach.SOUTH, Turn.LEFT))
        tracker = PurePursuitTracker(path.points, lookahead=0.3, wheelbase=0.335)
        model = BicycleModel(wheelbase=0.335)
        start = path.point_at(0.0)
        state = BicycleState(
            x=float(start[0]), y=float(start[1]),
            heading=path.heading_at(0.0), speed=1.0,
        )
        worst = 0.0
        for _ in range(300):
            steer = tracker.steering(state)
            state = model.step(state, accel=0.0, steer=steer, dt=0.01)
            worst = max(worst, tracker.cross_track_error(state))
            if tracker.project(state.x, state.y) > tracker.length - 0.05:
                break
        assert worst < 0.08  # stays well inside the 0.45 m lane

    def test_point_at_and_length(self):
        path = np.array([[0.0, 0.0], [3.0, 4.0]])
        tracker = PurePursuitTracker(path, lookahead=0.5, wheelbase=0.3)
        assert tracker.length == pytest.approx(5.0)
        mid = tracker.point_at(2.5)
        assert mid == pytest.approx([1.5, 2.0])

    def test_project(self):
        path = np.array([[0.0, 0.0], [10.0, 0.0]])
        tracker = PurePursuitTracker(path, lookahead=0.5, wheelbase=0.3)
        assert tracker.project(4.0, 2.0) == pytest.approx(4.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PurePursuitTracker(np.array([[0.0, 0.0]]), 0.5, 0.3)
        with pytest.raises(ValueError):
            PurePursuitTracker(np.array([[0.0, 0.0], [1.0, 0.0]]), 0.0, 0.3)
