"""Tests for the batch re-ordering IM extension."""

import pytest

from repro.core import normalize_policy
from repro.core.batch import BatchCrossroadsIM
from repro.core.policy import make_im
from repro.core.scheduler import ConflictScheduler
from repro.des import Environment
from repro.geometry import Approach, ConflictTable, IntersectionGeometry, Movement, Turn
from repro.network import Channel, CrossingRequest
from repro.sim import run_scenario
from repro.traffic import PoissonTraffic
from repro.vehicle import VehicleInfo, VehicleSpec


GEOMETRY = IntersectionGeometry()
CONFLICTS = ConflictTable(GEOMETRY)


def info(vid, movement):
    return VehicleInfo(vehicle_id=vid, spec=VehicleSpec(), movement=movement)


def request(vid, movement, tt):
    return CrossingRequest(
        sender=f"V{vid}", receiver="IM", tt=tt, dt=3.0, vc=3.0,
        vehicle_info=info(vid, movement),
    )


class TestPolicyWiring:
    def test_normalize(self):
        assert normalize_policy("batch") == "batch-crossroads"
        assert normalize_policy("Batch_Crossroads") == "batch-crossroads"

    def test_make_im(self):
        env = Environment()
        channel = Channel(env)
        im = make_im("batch", env, channel, GEOMETRY, conflicts=CONFLICTS)
        assert isinstance(im, BatchCrossroadsIM)

    def test_invalid_window(self):
        env = Environment()
        channel = Channel(env)
        radio = channel.attach("IM")
        scheduler = ConflictScheduler(CONFLICTS)
        with pytest.raises(ValueError):
            BatchCrossroadsIM(env, radio, scheduler, batch_window=-1.0)


class TestReorder:
    def make_im(self):
        env = Environment()
        channel = Channel(env)
        radio = channel.attach("IM")
        return BatchCrossroadsIM(env, radio, ConflictScheduler(CONFLICTS))

    def test_reorder_chains_compatible_movements(self):
        im = self.make_im()
        # Arrival order interleaves two conflicting pairs; the heuristic
        # should place the compatible (opposite-straight) pair adjacent.
        msgs = [
            request(0, Movement(Approach.SOUTH, Turn.STRAIGHT), tt=0.0),
            request(1, Movement(Approach.EAST, Turn.STRAIGHT), tt=0.01),
            request(2, Movement(Approach.NORTH, Turn.STRAIGHT), tt=0.02),
            request(3, Movement(Approach.WEST, Turn.STRAIGHT), tt=0.03),
        ]
        ordered = im.reorder(msgs)
        keys = [m.vehicle_info.movement.key for m in ordered]
        # First stays FCFS; second must be the non-conflicting opposite.
        assert keys[0] == "S-straight"
        assert keys[1] == "N-straight"
        assert keys[2:] == ["E-straight", "W-straight"]

    def test_reorder_preserves_small_batches(self):
        im = self.make_im()
        msgs = [
            request(0, Movement(Approach.SOUTH, Turn.STRAIGHT), tt=0.5),
            request(1, Movement(Approach.EAST, Turn.STRAIGHT), tt=0.1),
        ]
        ordered = im.reorder(msgs)
        assert [m.vehicle_info.vehicle_id for m in ordered] == [1, 0]

    def test_reorder_is_permutation(self):
        im = self.make_im()
        msgs = [
            request(i, Movement(a, t), tt=0.01 * i)
            for i, (a, t) in enumerate(
                (a, t) for a in Approach for t in (Turn.LEFT, Turn.RIGHT)
            )
        ]
        ordered = im.reorder(msgs)
        assert sorted(m.seq for m in ordered) == sorted(m.seq for m in msgs)


class TestEndToEnd:
    def test_batch_world_is_safe_and_complete(self):
        arrivals = PoissonTraffic(0.8, seed=23).generate(24)
        result = run_scenario("batch-crossroads", arrivals, seed=23)
        assert result.n_finished == 24
        assert result.collisions == 0

    def test_batching_actually_batches(self):
        from repro.sim import World

        arrivals = PoissonTraffic(1.0, seed=24).generate(24)
        world = World("batch-crossroads", arrivals, seed=24)
        world.run()
        assert world.im.batches >= 1
        assert world.im.max_batch >= 2
