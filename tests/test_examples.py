"""Smoke tests: the documented examples must stay runnable.

Only the fast examples run here (the sweep examples are exercised by
the benchmarks); each is imported as a module and its ``main()`` driven
with stubbed argv.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py", "crossroads"])
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "average wait time" in out
        assert "ground-truth safe : True" in out

    def test_quickstart_other_policies(self, capsys, monkeypatch):
        for policy in ("vt-im", "aim"):
            monkeypatch.setattr(sys, "argv", ["quickstart.py", policy])
            load_example("quickstart").main()
            assert "safe : True" in capsys.readouterr().out.replace(
                "ground-truth ", ""
            )

    def test_safety_buffer_experiment(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["safety_buffer_experiment.py"])
        load_example("safety_buffer_experiment").main()
        out = capsys.readouterr().out
        assert "measured Elong bound" in out
        assert "total VT-IM buffer" in out

    def test_space_time_trace(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["space_time_trace.py", "crossroads"])
        load_example("space_time_trace").main()
        out = capsys.readouterr().out
        assert "approach" in out
        assert "speed profiles" in out

    def test_corridor_demo(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["corridor_demo.py", "2", "8"])
        load_example("corridor_demo").main()
        out = capsys.readouterr().out
        assert "uniform crossroads" in out
        assert "mixed policies" in out
        assert "safe True" in out
        assert "8/8 trips complete" in out
