"""Unit and property tests for motion profiles."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinematics import (
    MotionProfile,
    ProfileBuilder,
    Segment,
    brake_distance,
    brake_time,
)


class TestBraking:
    def test_brake_distance_formula(self):
        assert brake_distance(3.0, 4.0) == pytest.approx(9.0 / 8.0)

    def test_brake_distance_zero_speed(self):
        assert brake_distance(0.0, 4.0) == 0.0

    def test_brake_time_formula(self):
        assert brake_time(3.0, 4.0) == pytest.approx(0.75)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            brake_distance(-1.0, 4.0)
        with pytest.raises(ValueError):
            brake_distance(1.0, 0.0)
        with pytest.raises(ValueError):
            brake_time(1.0, -2.0)


class TestSegment:
    def test_length_constant_velocity(self):
        seg = Segment(duration=2.0, v0=3.0, accel=0.0)
        assert seg.length == pytest.approx(6.0)
        assert seg.v1 == 3.0

    def test_length_accelerating(self):
        seg = Segment(duration=1.0, v0=0.0, accel=2.0)
        assert seg.length == pytest.approx(1.0)
        assert seg.v1 == pytest.approx(2.0)

    def test_negative_final_velocity_rejected(self):
        with pytest.raises(ValueError):
            Segment(duration=2.0, v0=1.0, accel=-1.0)

    def test_time_at_distance_constant(self):
        seg = Segment(duration=4.0, v0=2.0, accel=0.0)
        assert seg.time_at_distance(4.0) == pytest.approx(2.0)

    def test_time_at_distance_accelerating(self):
        seg = Segment(duration=2.0, v0=0.0, accel=2.0)
        # 0.5*2*t^2 = 1 -> t = 1
        assert seg.time_at_distance(1.0) == pytest.approx(1.0)

    def test_time_at_distance_beyond_segment(self):
        seg = Segment(duration=1.0, v0=1.0, accel=0.0)
        assert seg.time_at_distance(5.0) is None

    def test_time_at_zero_distance(self):
        seg = Segment(duration=1.0, v0=1.0, accel=0.0)
        assert seg.time_at_distance(0.0) == 0.0

    def test_stationary_segment_never_covers_distance(self):
        seg = Segment(duration=5.0, v0=0.0, accel=0.0)
        assert seg.time_at_distance(0.1) is None


class TestMotionProfile:
    def build_trapezoid(self):
        """0 -> 2 m/s at 1 m/s^2, hold 3 s, starting at t=10, s=100."""
        return (
            ProfileBuilder(t0=10.0, s0=100.0, v0=0.0)
            .accelerate_to(2.0, accel=1.0)
            .hold_for(3.0)
            .build()
        )

    def test_end_time_and_position(self):
        p = self.build_trapezoid()
        assert p.end_time == pytest.approx(15.0)
        assert p.end_position == pytest.approx(100.0 + 2.0 + 6.0)

    def test_velocity_at_boundaries(self):
        p = self.build_trapezoid()
        assert p.velocity_at(10.0) == pytest.approx(0.0)
        assert p.velocity_at(11.0) == pytest.approx(1.0)
        assert p.velocity_at(12.0) == pytest.approx(2.0)
        assert p.velocity_at(14.9) == pytest.approx(2.0)

    def test_extension_before_start(self):
        p = self.build_trapezoid()
        assert p.velocity_at(0.0) == pytest.approx(0.0)
        assert p.position_at(5.0) == pytest.approx(100.0)

    def test_extension_after_end(self):
        p = self.build_trapezoid()
        assert p.velocity_at(20.0) == pytest.approx(2.0)
        assert p.position_at(16.0) == pytest.approx(p.end_position + 2.0)

    def test_time_at_position_inverts_position_at(self):
        p = self.build_trapezoid()
        for t in (10.5, 11.7, 13.0, 14.99):
            s = p.position_at(t)
            assert p.time_at_position(s) == pytest.approx(t, abs=1e-6)

    def test_time_at_position_beyond_extends(self):
        p = self.build_trapezoid()
        t = p.time_at_position(p.end_position + 4.0)
        assert t == pytest.approx(p.end_time + 2.0)

    def test_time_at_position_unreachable(self):
        p = ProfileBuilder(0.0, 0.0, 1.0).accelerate_to(0.0, 1.0).build()
        assert p.time_at_position(10.0) is None

    def test_shifted(self):
        p = self.build_trapezoid().shifted(dt=5.0, ds=-100.0)
        assert p.start_time == 15.0
        assert p.start_position == 0.0
        assert p.length == pytest.approx(8.0)

    def test_concat_contiguous(self):
        a = ProfileBuilder(0.0, 0.0, 1.0).hold_for(2.0).build()
        b = ProfileBuilder(a.end_time, a.end_position, 1.0).hold_for(3.0).build()
        c = a.concat(b)
        assert c.duration == pytest.approx(5.0)
        assert c.length == pytest.approx(5.0)

    def test_concat_discontinuous_raises(self):
        a = ProfileBuilder(0.0, 0.0, 1.0).hold_for(2.0).build()
        b = ProfileBuilder(99.0, 0.0, 1.0).hold_for(1.0).build()
        with pytest.raises(ValueError):
            a.concat(b)

    def test_sample_covers_plan(self):
        p = self.build_trapezoid()
        samples = p.sample(0.5)
        assert samples[0][0] == pytest.approx(10.0)
        assert samples[-1][0] >= p.end_time - 0.5
        for t, s, v in samples:
            assert s == pytest.approx(p.position_at(t))
            assert v == pytest.approx(p.velocity_at(t))

    def test_max_velocity(self):
        p = self.build_trapezoid()
        assert p.max_velocity() == pytest.approx(2.0)

    def test_empty_profile(self):
        p = MotionProfile(0.0, 5.0, [])
        assert p.position_at(10.0) == 5.0
        assert p.velocity_at(10.0) == 0.0


class TestProfileBuilder:
    def test_wait_until_requires_stopped(self):
        builder = ProfileBuilder(0.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            builder.wait_until(5.0)

    def test_wait_until_inserts_idle_segment(self):
        p = (
            ProfileBuilder(0.0, 0.0, 0.0)
            .wait_until(3.0)
            .accelerate_to(1.0, accel=1.0)
            .build()
        )
        assert p.velocity_at(2.0) == 0.0
        assert p.velocity_at(4.0) == pytest.approx(1.0)

    def test_hold_distance_zero_velocity_raises(self):
        with pytest.raises(ValueError):
            ProfileBuilder(0.0, 0.0, 0.0).hold_distance(1.0)

    def test_decelerate_uses_sign_correctly(self):
        p = ProfileBuilder(0.0, 0.0, 3.0).accelerate_to(1.0, accel=2.0).build()
        assert p.duration == pytest.approx(1.0)
        assert p.final_velocity == pytest.approx(1.0)

    def test_noop_accelerate_to_same_speed(self):
        p = ProfileBuilder(0.0, 0.0, 2.0).accelerate_to(2.0, accel=1.0).hold_for(1.0).build()
        assert len(p.segments) == 1


@st.composite
def profiles(draw):
    """Random multi-segment profiles via the builder."""
    v0 = draw(st.floats(0.0, 3.0))
    builder = ProfileBuilder(
        draw(st.floats(0.0, 100.0)), draw(st.floats(-50.0, 50.0)), v0
    )
    for _ in range(draw(st.integers(1, 5))):
        action = draw(st.sampled_from(["accel", "hold"]))
        if action == "accel":
            builder.accelerate_to(
                draw(st.floats(0.0, 3.0)), accel=draw(st.floats(0.5, 5.0))
            )
        else:
            builder.hold_for(draw(st.floats(0.0, 5.0)))
    return builder.build()


class TestProfileProperties:
    @given(profiles())
    @settings(max_examples=100, deadline=None)
    def test_position_is_monotone(self, profile):
        ts = [profile.start_time + k * profile.duration / 20 for k in range(21)]
        positions = [profile.position_at(t) for t in ts]
        for earlier, later in zip(positions, positions[1:]):
            assert later >= earlier - 1e-9

    @given(profiles())
    @settings(max_examples=100, deadline=None)
    def test_velocity_never_negative(self, profile):
        for k in range(21):
            t = profile.start_time + k * profile.duration / 20
            assert profile.velocity_at(t) >= -1e-9

    @given(profiles())
    @settings(max_examples=100, deadline=None)
    def test_length_consistency(self, profile):
        assert profile.position_at(profile.end_time) == pytest.approx(
            profile.end_position, abs=1e-6
        )

    @given(profiles(), st.floats(0.1, 0.9))
    @settings(max_examples=100, deadline=None)
    def test_time_at_position_round_trip(self, profile, frac):
        if profile.length < 1e-6:
            return
        s = profile.start_position + frac * profile.length
        t = profile.time_at_position(s)
        assert t is not None
        assert profile.position_at(t) == pytest.approx(s, abs=1e-5)

    @given(profiles())
    @settings(max_examples=50, deadline=None)
    def test_position_integrates_velocity(self, profile):
        """Trapezoidal numeric integration of v matches position."""
        if profile.duration < 1e-6:
            return
        n = 400
        h = profile.duration / n
        integral = 0.0
        for k in range(n):
            t0 = profile.start_time + k * h
            integral += 0.5 * (profile.velocity_at(t0) + profile.velocity_at(t0 + h)) * h
        assert integral == pytest.approx(profile.length, abs=1e-3 + 1e-3 * abs(profile.length))
