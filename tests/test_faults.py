"""Unit tests for the fault-injection layer (models, schedule, injector,
channel integration) and the safe-degradation plumbing around it."""

import numpy as np
import pytest

from repro.des import Environment
from repro.faults import (
    DelaySpikes,
    Duplication,
    FaultConfig,
    FaultInjector,
    FaultSchedule,
    FaultWindow,
    GilbertElliottLoss,
    ReorderJitter,
    random_fault_config,
)
from repro.network import Channel, ConstantDelay, Message


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.2)
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.1, 0.2, loss_bad=-0.1)

    def test_disabled_when_zeroed(self):
        assert not GilbertElliottLoss(0.0, 0.25, 0.0, 0.0).enabled
        assert not GilbertElliottLoss(0.0, 0.25, 0.0, 1.0).enabled  # unreachable bad
        assert GilbertElliottLoss(0.02, 0.25, 0.0, 0.9).enabled
        assert GilbertElliottLoss(0.0, 0.25, 0.1, 0.0).enabled

    def test_losses_come_in_bursts(self):
        """Mean burst length ~ 1/p_bad_good; losses must cluster."""
        ge = GilbertElliottLoss(0.02, 0.2, 0.0, 1.0)
        rng = np.random.default_rng(5)
        outcomes = [ge.step(rng) for _ in range(20000)]
        losses = sum(outcomes)
        assert losses > 0
        # Count loss runs: correlated loss means far fewer runs than
        # losses (i.i.d. would give runs ~= losses * (1 - p)).
        runs = sum(
            1 for i, o in enumerate(outcomes) if o and (i == 0 or not outcomes[i - 1])
        )
        assert runs < losses * 0.5

    def test_fixed_randomness_consumption(self):
        """step() draws exactly two uniforms regardless of outcome."""
        ge_a = GilbertElliottLoss(0.02, 0.2, 0.0, 1.0)
        ge_b = GilbertElliottLoss(0.9, 0.1, 0.0, 1.0)  # very different outcomes
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        for _ in range(200):
            ge_a.step(rng_a)
            ge_b.step(rng_b)
        # Both consumed the same number of draws: streams still agree.
        assert rng_a.random() == rng_b.random()

    def test_force_bad(self):
        ge = GilbertElliottLoss(0.0, 0.0, 0.0, 1.0)
        ge.force_bad()
        rng = np.random.default_rng(0)
        assert ge.step(rng)  # loss_bad = 1 and stuck in bad


class TestSpikesDupReorder:
    def test_spike_bounds(self):
        spikes = DelaySpikes(1.0, 0.05, 0.30)
        rng = np.random.default_rng(1)
        for _ in range(100):
            assert 0.05 <= spikes.sample(rng) <= 0.30

    def test_spike_forced(self):
        spikes = DelaySpikes(0.0, 0.05, 0.30)
        rng = np.random.default_rng(1)
        assert spikes.sample(rng) == 0.0
        assert spikes.sample(rng, forced=True) >= 0.05

    def test_duplication_sentinel(self):
        dup = Duplication(0.0)
        rng = np.random.default_rng(2)
        assert dup.sample(rng) < 0.0  # never duplicates
        always = Duplication(1.0, jitter=0.01)
        assert 0.0 <= always.sample(rng) <= 0.01

    def test_reorder_validation(self):
        with pytest.raises(ValueError):
            ReorderJitter(-0.1)
        assert not ReorderJitter(0.5, 0.0).enabled


class TestScheduleAndConfig:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(5.0, 4.0)
        with pytest.raises(ValueError):
            FaultWindow(0.0, 1.0, kind="nonsense")
        with pytest.raises(ValueError):
            FaultWindow(0.0, 1.0, direction="sideways")

    def test_window_direction(self):
        w = FaultWindow(1.0, 2.0, "blackout", "to_im")
        assert w.active(1.5, to_im=True)
        assert not w.active(1.5, to_im=False)
        assert not w.active(2.0, to_im=True)  # half-open interval

    def test_schedule_active_and_horizon(self):
        sched = FaultSchedule(
            (FaultWindow(1.0, 2.0, "blackout"), FaultWindow(5.0, 9.0, "spike"))
        )
        assert sched.active(1.5, "blackout", to_im=True)
        assert not sched.active(1.5, "spike", to_im=True)
        assert sched.horizon == 9.0
        assert bool(sched)
        assert not bool(FaultSchedule())

    def test_null_config(self):
        assert FaultConfig().is_null()
        assert not FaultConfig.from_spec("burst").is_null()
        assert not FaultConfig(schedule=FaultSchedule((FaultWindow(0, 1),))).is_null()
        # Unreachable bad state is still null.
        assert FaultConfig(ge_loss_bad=0.9, ge_p_good_bad=0.0).is_null()

    def test_from_spec_presets_and_params(self):
        config = FaultConfig.from_spec("burst=0.05:0.3:0.8,spike=0.1:0.02:0.4")
        assert config.ge_p_good_bad == 0.05
        assert config.ge_p_bad_good == 0.3
        assert config.ge_loss_bad == 0.8
        assert config.spike_prob == 0.1
        assert config.spike_high == 0.4

    def test_from_spec_blackout_window(self):
        config = FaultConfig.from_spec("blackout=40:45:to_im")
        (window,) = config.schedule.windows
        assert window.start == 40.0 and window.end == 45.0
        assert window.kind == "blackout" and window.direction == "to_im"

    def test_from_spec_chaos(self):
        config = FaultConfig.from_spec("chaos")
        assert config.ge_p_good_bad > 0 and config.spike_prob > 0
        assert config.dup_prob > 0 and config.reorder_prob > 0

    def test_from_spec_unknown_token(self):
        with pytest.raises(ValueError, match="unknown fault token"):
            FaultConfig.from_spec("gremlins")
        with pytest.raises(ValueError, match="needs start:end"):
            FaultConfig.from_spec("blackout=40")

    def test_describe(self):
        assert FaultConfig().describe() == "none"
        text = FaultConfig.from_spec("burst,blackout=1:2").describe()
        assert "burst" in text and "blackout" in text

    def test_config_is_picklable_and_hashable(self):
        import pickle

        config = FaultConfig.from_spec("chaos,blackout=3:5")
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        hash(config)  # frozen dataclasses must stay hashable

    def test_random_fault_config_valid(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            config = random_fault_config(rng)
            assert not config.is_null()
            assert config.ge_loss_bad > 0 and config.spike_high > 0


def _message(channel=None, sender="A", receiver="B"):
    return Message(sender=sender, receiver=receiver)


class TestInjector:
    def test_null_config_never_fires_or_draws(self):
        injector = FaultInjector(FaultConfig(), rng=np.random.default_rng(4))
        untouched = np.random.default_rng(4)
        for _ in range(100):
            verdict = injector.on_transmit(_message(), now=1.0)
            assert verdict.drop_reason is None
            assert verdict.extra_delay == 0.0
            assert verdict.duplicate_delay is None
        assert injector.rng.random() == untouched.random()  # no draws consumed
        assert injector.events == []
        assert injector.snapshot() == {}

    def test_blackout_window_drops(self):
        config = FaultConfig.from_spec("blackout=1:2")
        injector = FaultInjector(config, rng=np.random.default_rng(0))
        assert injector.on_transmit(_message(), 1.5).drop_reason == "blackout"
        assert injector.on_transmit(_message(), 2.5).drop_reason is None
        assert injector.snapshot() == {"blackout_loss": 1}

    def test_blackout_direction_filter(self):
        config = FaultConfig.from_spec("blackout=1:2:to_im")
        injector = FaultInjector(config, rng=np.random.default_rng(0), im_address="IM")
        to_im = Message(sender="V1", receiver="IM")
        from_im = Message(sender="IM", receiver="V1")
        assert injector.on_transmit(to_im, 1.5).drop_reason == "blackout"
        assert injector.on_transmit(from_im, 1.5).drop_reason is None

    def test_spike_window_forces_extra_delay(self):
        """A spike *window* spikes even with a zeroed spike model."""
        config = FaultConfig(
            schedule=FaultSchedule((FaultWindow(1.0, 2.0, "spike"),))
        )
        injector = FaultInjector(config, rng=np.random.default_rng(0))
        verdict = injector.on_transmit(_message(), 1.5)
        assert verdict.extra_delay > 0.0

    def test_trace_replays_exactly(self):
        """Same (config, seed, traffic) => identical event trace."""
        config = FaultConfig.from_spec("chaos,blackout=0.5:1.0")

        def run():
            injector = FaultInjector(config, rng=np.random.default_rng(21))
            messages = [Message(sender="V1", receiver="IM") for _ in range(50)]
            for i, message in enumerate(messages):
                injector.on_transmit(message, now=i * 0.05)
            # Normalise seqs (they are globally unique per process) to
            # positions so the two runs are comparable.
            seqs = {m.seq: i for i, m in enumerate(messages)}
            return [(t, kind, seqs[seq]) for t, kind, seq in injector.events]

        assert run() == run()

    def test_counters_match_trace(self):
        config = FaultConfig.from_spec("burst,spike")
        injector = FaultInjector(config, rng=np.random.default_rng(3))
        for i in range(500):
            injector.on_transmit(_message(), now=i * 0.01)
        from collections import Counter

        assert injector.counts == Counter(kind for _, kind, _ in injector.events)


class TestChannelIntegration:
    def _channel(self, config, seed=0, delay=0.005):
        env = Environment()
        injector = FaultInjector(config, rng=np.random.default_rng(seed))
        channel = Channel(
            env,
            delay_model=ConstantDelay(delay),
            rng=np.random.default_rng(seed + 1),
            faults=injector,
        )
        return env, channel, injector

    def test_blackout_drops_attributed(self):
        env, channel, _ = self._channel(FaultConfig.from_spec("blackout=0:10"))
        a = channel.attach("A")
        channel.attach("B")
        for _ in range(5):
            a.send(Message(sender="A", receiver="B"))
        env.run()
        assert channel.stats.by_reason["blackout"] == 5
        assert channel.stats.delivered == 0

    def test_spike_exceeds_worst_case(self):
        """A spiked delivery lands *after* the delay model's bound."""
        config = FaultConfig(spike_prob=1.0, spike_low=0.05, spike_high=0.30)
        env, channel, _ = self._channel(config, delay=0.005)
        a = channel.attach("A")
        b = channel.attach("B")
        arrivals = []

        def rx(env):
            yield b.receive()
            arrivals.append(env.now)

        env.process(rx(env))
        a.send(Message(sender="A", receiver="B"))
        env.run()
        assert arrivals[0] > channel.delay_model.worst_case + 0.05 - 1e-12

    def test_duplicates_injected_and_dropped(self):
        config = FaultConfig(dup_prob=1.0, dup_jitter=0.01)
        env, channel, injector = self._channel(config)
        a = channel.attach("A")
        b = channel.attach("B")
        n = 20
        for _ in range(n):
            a.send(Message(sender="A", receiver="B"))
        env.run()
        stats = channel.stats
        assert stats.duplicates_injected == n
        assert stats.duplicates_dropped == n  # every copy suppressed
        assert stats.delivered == n  # originals all arrived once
        assert b.pending() == n
        assert stats.lost == 0  # dedup is not loss: originals delivered
        assert injector.snapshot()["duplicate"] == n

    def test_null_injector_bit_identical_to_no_injector(self):
        """The differential property at channel level: a channel with a
        null injector consumes the identical random sequence."""

        def run(with_injector):
            env = Environment()
            kwargs = {}
            if with_injector:
                kwargs["faults"] = FaultInjector(
                    FaultConfig(), rng=np.random.default_rng(99)
                )
            channel = Channel(
                env,
                delay_model=ConstantDelay(0.003),
                loss_probability=0.3,
                rng=np.random.default_rng(42),
                **kwargs,
            )
            a = channel.attach("A")
            channel.attach("B")
            for _ in range(100):
                a.send(Message(sender="A", receiver="B"))
            env.run()
            return (channel.stats.delivered, channel.stats.lost)

        assert run(True) == run(False)
