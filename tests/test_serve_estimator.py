"""WC-RTD estimator: unit invariants, plus the fault-injected loopback
acceptance test — with :class:`~repro.faults.models.DelaySpikes` delay
injected on the serve link, the online estimate must cover the worst
observation yet stay within the documented safety factor of the true
injected delay bound:

    ``window_max <= wc_rtd() <= safety_factor * B``

where ``B`` is the per-round-trip bound implied by the injected delay
distribution (both link directions at their maxima, plus an event-loop
scheduling allowance).
"""

import asyncio

import numpy as np
import pytest

from repro.faults.models import DelaySpikes
from repro.serve import ImServer, RtdEstimator, ServeClient, ServeConfig
from repro.network.messages import ExitNotification
from tests.test_serve import _request


class TestEstimatorUnit:
    def test_validation(self):
        for kwargs in (
            {"alpha": 0.0}, {"alpha": 1.5}, {"window": 0},
            {"safety_factor": 0.9}, {"floor": -1.0},
        ):
            with pytest.raises(ValueError):
                RtdEstimator(**kwargs)

    def test_first_sample_initialises_ewma(self):
        estimator = RtdEstimator(alpha=0.5)
        estimator.observe(0.100)
        assert estimator.ewma == pytest.approx(0.100)
        estimator.observe(0.200)
        assert estimator.ewma == pytest.approx(0.150)

    def test_negative_samples_ignored(self):
        estimator = RtdEstimator()
        estimator.observe(-0.1)
        assert estimator.count == 0
        assert estimator.wc_rtd() == 0.0

    def test_window_max_slides(self):
        estimator = RtdEstimator(window=4, safety_factor=2.0)
        for sample in (0.5, 0.1, 0.1, 0.1):
            estimator.observe(sample)
        assert estimator.window_max == pytest.approx(0.5)
        estimator.observe(0.1)  # 0.5 falls out of the window
        assert estimator.window_max == pytest.approx(0.1)
        assert estimator.max_seen == pytest.approx(0.5)
        assert estimator.wc_rtd() == pytest.approx(0.2)

    def test_floor_dominates_when_quiet(self):
        estimator = RtdEstimator(floor=0.150)
        assert estimator.wc_rtd() == pytest.approx(0.150)
        estimator.observe(0.010)
        assert estimator.wc_rtd() == pytest.approx(0.150)
        estimator.observe(0.200)
        assert estimator.wc_rtd() == pytest.approx(0.400)

    def test_invariant_on_random_streams(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            estimator = RtdEstimator(
                window=64,
                safety_factor=float(rng.uniform(1.0, 4.0)),
            )
            bound = float(rng.uniform(0.01, 0.5))
            for _ in range(200):
                estimator.observe(float(rng.uniform(0.0, bound)))
            assert estimator.window_max <= estimator.wc_rtd()
            assert estimator.wc_rtd() <= estimator.safety_factor * bound


class TestFaultInjectedLoopback:
    """Acceptance: the online estimate tracks a known injected bound."""

    # Injected per-direction delay: BASE always, plus a DelaySpikes
    # excursion up to SPIKE_HIGH.  Both directions of the ack round
    # trip can hit the maximum, and the asyncio loop adds scheduling
    # time on top — JITTER absorbs that (wall seconds, generous for CI).
    BASE = 0.005
    SPIKE_HIGH = 0.020
    JITTER = 0.050
    TRUE_BOUND = 2 * (BASE + SPIKE_HIGH) + JITTER

    def test_estimate_within_safety_factor_of_true_bound(self):
        spikes = DelaySpikes(prob=0.3, low=0.005, high=self.SPIKE_HIGH)
        rng = np.random.default_rng(7)

        def delay():
            return self.BASE + spikes.sample(rng)

        async def body():
            server = ImServer(ServeConfig(
                policy="crossroads",
                time_scale=1.0,  # wall delay == simulated delay
                safety_factor=2.0,
                apply_estimate=True,
                min_samples=5,
                sample_dt=0.05,
            ))
            await server.start(listen=False)
            link = server.connect_local(
                to_server_delay=delay, to_client_delay=delay
            )
            client = ServeClient(link, address="V0", time_scale=1.0)
            await client.start()
            try:
                await client.sync_clock()
                for i in range(20):
                    await client.request(
                        _request("V0", index=i,
                                 tt=client.local_time() + 1.0),
                        timeout=5.0,
                    )
                    await client.send(
                        ExitNotification(sender="V0", receiver="IM")
                    )
                await asyncio.sleep(0.1)  # let the sampler tick

                estimator = server.estimator
                assert estimator.count >= 20
                # The invariant: covers the worst observation, bounded
                # by safety_factor times the true injected bound.
                assert estimator.window_max <= estimator.wc_rtd()
                assert estimator.wc_rtd() <= (
                    server.config.safety_factor * self.TRUE_BOUND
                )
                # Every sample respected the injected bound too (the
                # measurement path adds no phantom delay).
                assert estimator.max_seen <= self.TRUE_BOUND
                assert estimator.max_seen >= 2 * self.BASE

                # The estimate was applied to the live IM config and
                # exported as a metrics series.
                assert server.im.config.wc_rtd == pytest.approx(
                    max(server.wc_rtd_estimate(), 1e-3)
                )
                entries = {
                    entry["name"]: entry
                    for entry in server.metrics.snapshot()["series"]
                }
                assert entries["serve.wc_rtd_estimate"]["value"] > 0.0
                assert entries["serve.rtd_ewma"]["value"] == pytest.approx(
                    estimator.ewma
                )
                assert entries["serve.rtd_seconds"]["count"] >= 20
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(body())
