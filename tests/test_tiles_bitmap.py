"""Bitmap reservation book: differential + boundary + counter tests.

The bitmap :class:`TileReservations` must answer every query —
``conflicts``/``commit``/``release``/``release_stale``/``purge_before``
plus ``claim_count`` and the purge counters — identically to the seed
per-cell dict implementation (kept as :class:`DictTileReservations`)
on randomised workloads.  :class:`TileFootprint` is the packed
interchange format; its round-trips must be lossless.  Boundary
behaviour of ``TileGrid.tile_of`` / ``TileReservations.slot_of`` (box
edges, exact tile borders, negative times) is pinned here too.
"""

import math

import numpy as np
import pytest

from repro.geometry.tiles import (
    DictTileReservations,
    TileFootprint,
    TileGrid,
    TileReservations,
)


class TestTileFootprint:
    def test_round_trip_from_cells(self):
        cells = {((0, 0), 3), ((1, 5), 3), ((7, 7), 4), ((2, 2), 9)}
        fp = TileFootprint.from_cells(cells, n=8)
        assert fp.cell_count == len(cells)
        assert len(fp) == len(cells)
        assert fp.cells() == cells
        assert set(fp) == cells

    def test_empty(self):
        fp = TileFootprint.from_cells([], n=8)
        assert fp.cell_count == 0
        assert not fp
        assert fp.cells() == set()

    def test_duplicates_collapse(self):
        fp = TileFootprint.from_cells([((1, 1), 2), ((1, 1), 2)], n=4)
        assert fp.cell_count == 1

    def test_negative_slots_supported(self):
        cells = {((0, 1), -5), ((3, 3), -2)}
        fp = TileFootprint.from_cells(cells, n=4)
        assert fp.cells() == cells
        assert fp.s0 == -5

    def test_out_of_grid_tile_rejected(self):
        with pytest.raises(ValueError):
            TileFootprint.from_cells([((4, 0), 1)], n=4)
        with pytest.raises(ValueError):
            TileFootprint.from_cells([((0, -1), 1)], n=4)

    def test_large_grid_crosses_word_boundaries(self):
        n = 24  # 576 tiles -> 9 words
        cells = {((i, (3 * i) % n), i % 5) for i in range(n)}
        fp = TileFootprint.from_cells(cells, n=n)
        assert fp.cells() == cells

    def test_bad_masks_rejected(self):
        with pytest.raises(ValueError):
            TileFootprint(4, 0, np.zeros((2, 1), dtype=np.int64))


def random_workload(rng, n, n_ops=400):
    """A randomised op sequence driven against both implementations."""
    ops = []
    for _ in range(n_ops):
        kind = rng.choice(
            ["commit", "conflicts", "release", "release_stale", "purge"],
            p=[0.35, 0.25, 0.15, 0.1, 0.15],
        )
        vid = int(rng.integers(0, 12))
        if kind in ("commit", "conflicts"):
            count = int(rng.integers(1, 30))
            cells = [
                (
                    (int(rng.integers(0, n)), int(rng.integers(0, n))),
                    int(rng.integers(-3, 80)),
                )
                for _ in range(count)
            ]
            ops.append((kind, vid, cells))
        elif kind == "release":
            ops.append((kind, vid, None))
        elif kind == "release_stale":
            ops.append((kind, int(rng.integers(-5, 60)), None))
        else:
            ops.append((kind, float(rng.uniform(-1.0, 6.0)), None))
    return ops


class TestBitmapVsDictDifferential:
    @pytest.mark.parametrize("seed,n", [(1, 16), (2, 16), (3, 24), (4, 5), (5, 70)])
    def test_random_workloads_agree(self, seed, n):
        grid_a = TileGrid(1.2, n)
        grid_b = TileGrid(1.2, n)
        bitmap = TileReservations(grid_a, slot=0.1)
        ref = DictTileReservations(grid_b, slot=0.1)
        rng = np.random.default_rng(seed)
        for kind, arg, cells in random_workload(rng, n):
            if kind == "commit":
                conflict_a = bitmap.conflicts(cells, arg)
                conflict_b = ref.conflicts(cells, arg)
                assert conflict_a == conflict_b
                if conflict_b:
                    with pytest.raises(ValueError):
                        bitmap.commit(cells, arg)
                    with pytest.raises(ValueError):
                        ref.commit(cells, arg)
                else:
                    bitmap.commit(cells, arg)
                    ref.commit(cells, arg)
            elif kind == "conflicts":
                assert bitmap.conflicts(cells, arg) == ref.conflicts(cells, arg)
            elif kind == "release":
                assert bitmap.release(arg) == ref.release(arg)
            elif kind == "release_stale":
                assert bitmap.release_stale(arg) == ref.release_stale(arg)
            else:
                assert bitmap.purge_before(arg) == ref.purge_before(arg)
            assert bitmap.claim_count == ref.claim_count
            assert bitmap.purged_total == ref.purged_total

    def test_footprint_and_iterable_inputs_agree(self):
        """The bitmap book accepts both cell iterables and footprints."""
        grid = TileGrid(1.2, 16)
        res = TileReservations(grid, slot=0.1)
        cells = [((1, 2), 5), ((3, 4), 6)]
        fp = TileFootprint.from_cells(cells, 16)
        res.commit(fp, vehicle_id=1)
        assert res.conflicts(cells, vehicle_id=2)
        assert res.conflicts(fp, vehicle_id=2)
        assert not res.conflicts(fp, vehicle_id=1)
        assert res.release(1) == 2

    def test_mismatched_grid_footprint_rejected(self):
        res = TileReservations(TileGrid(1.2, 16), slot=0.1)
        fp = TileFootprint.from_cells([((1, 1), 0)], n=8)
        with pytest.raises(ValueError):
            res.commit(fp, vehicle_id=1)


class TestReleaseStaleIncremental:
    """Satellite: the watchdog scan is O(vehicles), not O(claims)."""

    def test_stale_vehicle_released_fresh_kept(self):
        res = TileReservations(TileGrid(1.2, 16), slot=0.1)
        res.commit([((1, 1), 5), ((2, 2), 8)], vehicle_id=1)   # all past
        res.commit([((3, 3), 5), ((4, 4), 90)], vehicle_id=2)  # future claim
        assert res.release_stale(50) == 1
        assert res.claim_count == 2
        assert not res.conflicts([((1, 1), 5)], vehicle_id=9)
        assert res.conflicts([((4, 4), 90)], vehicle_id=9)

    def test_max_slot_tracks_commits_incrementally(self):
        res = TileReservations(TileGrid(1.2, 16), slot=0.1)
        res.commit([((1, 1), 5)], vehicle_id=1)
        assert res._max_slot[1] == 5
        res.commit([((2, 2), 42)], vehicle_id=1)
        assert res._max_slot[1] == 42
        res.commit([((3, 3), 7)], vehicle_id=1)  # lower slot: max unchanged
        assert res._max_slot[1] == 42
        assert res.release_stale(42) == 0
        assert res.release_stale(43) == 1

    def test_purge_updates_max_slot_index(self):
        """A fully purged vehicle drops out of the watchdog scan."""
        res = TileReservations(TileGrid(1.2, 16), slot=0.1)
        res.commit([((1, 1), 3)], vehicle_id=1)
        res.purge_before(1.0)  # slot 3 < cutoff 10: claim purged
        assert res.claim_count == 0
        assert 1 not in res._max_slot
        assert res.release_stale(100) == 0


class TestTileOfBoundaries:
    """Satellite: box-edge and exact-border behaviour of tile_of."""

    def make_grid(self):
        return TileGrid(1.2, 16)  # tile_size 0.075, half box 0.6

    def test_centre_of_box(self):
        assert self.make_grid().tile_of(0.0, 0.0) == (8, 8)

    def test_min_corner_inclusive(self):
        assert self.make_grid().tile_of(-0.6, -0.6) == (0, 0)

    def test_max_corner_exclusive(self):
        grid = self.make_grid()
        assert grid.tile_of(0.6, 0.6) is None
        assert grid.tile_of(0.6 - 1e-9, 0.6 - 1e-9) == (15, 15)

    def test_outside_each_edge(self):
        grid = self.make_grid()
        assert grid.tile_of(-0.61, 0.0) is None
        assert grid.tile_of(0.0, -0.61) is None
        assert grid.tile_of(0.61, 0.0) is None
        assert grid.tile_of(0.0, 0.61) is None

    def test_exact_interior_tile_border(self):
        """A point on a tile border belongs to the higher tile."""
        grid = self.make_grid()
        ts = grid.tile_size
        x = -0.6 + 4 * ts  # border between tiles 3 and 4
        assert grid.tile_of(x, 0.0) == (4, 8)
        assert grid.tile_of(x - 1e-12, 0.0) == (3, 8)

    def test_float_truncation_clamped_at_far_edge(self):
        """Points a hair inside the far edge never index past n-1."""
        grid = self.make_grid()
        tile = grid.tile_of(np.nextafter(0.6, 0.0), 0.0)
        assert tile is not None and tile[0] == 15


class TestSlotOfBoundaries:
    """Satellite: slot_of at exact boundaries and negative times."""

    def make_reservations(self):
        return TileReservations(TileGrid(1.2, 16), slot=0.1)

    def test_zero_and_exact_boundaries(self):
        res = self.make_reservations()
        assert res.slot_of(0.0) == 0
        assert res.slot_of(0.1) == 1
        assert res.slot_of(0.2) == 2
        assert res.slot_of(0.3) == 2  # 0.3/0.1 = 2.9999... in float64

    def test_just_below_boundary(self):
        res = self.make_reservations()
        assert res.slot_of(0.1 - 1e-12) == 0

    def test_negative_times_floor(self):
        res = self.make_reservations()
        assert res.slot_of(-0.05) == -1
        assert res.slot_of(-0.1) == -1
        assert res.slot_of(-0.11) == -2

    def test_matches_math_floor(self):
        res = self.make_reservations()
        for t in np.linspace(-3.0, 3.0, 241):
            assert res.slot_of(float(t)) == int(math.floor(t / 0.1))


class TestPurgeCountersBitmap:
    """Satellite: purge_visited/purged_total invariants, bitmap backend."""

    def make_reservations(self):
        return TileReservations(TileGrid(1.2, 16), slot=0.1)

    def test_counters_start_zero(self):
        res = self.make_reservations()
        assert res.purge_visited == 0 and res.purged_total == 0

    def test_visited_equals_purged_when_all_dead(self):
        """The bitmap walk touches exactly the dead cells."""
        res = self.make_reservations()
        res.commit([((i, i), i) for i in range(8)], vehicle_id=1)
        assert res.purge_before(0.8) == 8
        assert res.purge_visited == 8
        assert res.purged_total == 8

    def test_counters_monotone_and_cumulative(self):
        res = self.make_reservations()
        res.commit([((1, 1), 0), ((2, 2), 10), ((3, 3), 20)], vehicle_id=1)
        res.purge_before(0.5)
        assert res.purged_total == 1
        res.purge_before(1.5)
        assert res.purged_total == 2
        res.purge_before(1.0)  # backward cutoff: no-op, counters keep
        assert res.purged_total == 2
        assert res.purge_visited == res.purged_total

    def test_released_cells_not_counted_by_purge(self):
        res = self.make_reservations()
        res.commit([((1, 1), 2), ((2, 2), 3)], vehicle_id=1)
        assert res.release(1) == 2
        assert res.purge_before(10.0) == 0
        assert res.purged_total == 0

    def test_claim_count_conserved(self):
        """commit adds, release/purge subtract; never negative."""
        res = self.make_reservations()
        res.commit([((1, 1), 2), ((2, 2), 60)], vehicle_id=1)
        res.commit([((3, 3), 2)], vehicle_id=2)
        assert res.claim_count == 3
        assert res.purge_before(1.0) == 2
        assert res.claim_count == 1
        assert res.release(1) == 1
        assert res.claim_count == 0
        assert res.release(2) == 0
