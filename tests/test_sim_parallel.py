"""Tests for the parallel experiment engine (repro.sim.parallel).

The load-bearing property: parallel execution is a pure wall-clock
optimisation — ``jobs=N`` must produce **bit-identical**
``SimResult.summary()`` dicts to ``jobs=1`` because every task carries
its own seed and results are gathered in submission order.
"""

import os

import pytest

from repro.geometry import Approach, Movement, Turn
from repro.sim.flowsweep import run_flow_sweep
import repro.sim.parallel as parallel_mod
from repro.sim.parallel import (
    JOBS_ENV_VAR,
    ParallelRunner,
    RunTask,
    resolve_jobs,
    run_tasks,
    shutdown_pool,
)
from repro.sim.replication import replicate, run_replicated
from repro.traffic import Arrival


def square(x):
    return x * x


def whoami(x):
    return (x, os.getpid())


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var_honoured(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_env_var_auto(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "auto")
        assert resolve_jobs(None) >= 1

    def test_env_var_garbage_is_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "lots")
        assert resolve_jobs(None) == 1

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(2) == 2

    def test_auto_values(self):
        cpus = os.cpu_count() or 1
        assert resolve_jobs("auto") == cpus
        assert resolve_jobs(0) == cpus
        assert resolve_jobs(-1) == cpus

    def test_clamped_to_one(self):
        assert resolve_jobs(-5) == 1
        assert resolve_jobs("4") == 4


class TestParallelRunner:
    def tasks(self, values):
        return [RunTask(square, (v,)) for v in values]

    def test_serial_path(self):
        runner = ParallelRunner(jobs=1)
        assert runner.map(self.tasks(range(5))) == [0, 1, 4, 9, 16]
        assert not runner.used_parallel
        assert runner.fallback_reason == "jobs<=1"

    def test_parallel_preserves_order(self):
        runner = ParallelRunner(jobs=4)
        assert runner.map(self.tasks(range(8))) == [v * v for v in range(8)]
        assert runner.used_parallel or runner.fallback_reason

    def test_parallel_uses_other_processes(self):
        runner = ParallelRunner(jobs=2)
        results = runner.map([RunTask(whoami, (i,)) for i in range(4)])
        assert [value for value, _pid in results] == [0, 1, 2, 3]
        if runner.used_parallel:
            assert any(pid != os.getpid() for _value, pid in results)

    def test_unpicklable_falls_back_to_serial(self):
        offset = 10
        runner = ParallelRunner(jobs=4)
        results = runner.map(
            [RunTask(lambda v=v: v + offset) for v in range(3)]
        )
        assert results == [10, 11, 12]
        assert not runner.used_parallel
        assert "unpicklable" in runner.fallback_reason

    def test_single_task_stays_serial(self):
        runner = ParallelRunner(jobs=4)
        assert runner.map(self.tasks([3])) == [9]
        assert not runner.used_parallel

    def test_empty(self):
        assert ParallelRunner(jobs=4).map([]) == []

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            run_tasks([RunTask(square, (1,)), RunTask(_raise_zero_div, ())],
                      jobs=2)

    def test_run_tasks_wrapper(self):
        assert run_tasks(self.tasks([2, 3]), jobs=2) == [4, 9]

    def test_kwargs_and_label(self):
        task = RunTask(_add, (1,), {"b": 2}, label="sum")
        assert task.run() == 3
        assert task.label == "sum"


def _raise_zero_div():
    return 1 // 0


def _add(a, b=0):
    return a + b


class TestPersistentPool:
    """The pool must be created once and reused across map() calls."""

    def tasks(self, values):
        return [RunTask(square, (v,)) for v in values]

    def test_pool_reused_across_maps(self):
        shutdown_pool()
        runner = ParallelRunner(jobs=2)
        runner.map(self.tasks(range(4)))
        if not runner.used_parallel:
            pytest.skip(f"no pool available: {runner.fallback_reason}")
        spawns = parallel_mod.POOL_SPAWNS
        for _ in range(3):
            runner.map(self.tasks(range(4)))
        assert parallel_mod.POOL_SPAWNS == spawns

    def test_pool_shared_between_runners(self):
        shutdown_pool()
        a = ParallelRunner(jobs=2)
        a.map(self.tasks(range(4)))
        if not a.used_parallel:
            pytest.skip(f"no pool available: {a.fallback_reason}")
        spawns = parallel_mod.POOL_SPAWNS
        b = ParallelRunner(jobs=2)
        b.map(self.tasks(range(4)))
        assert parallel_mod.POOL_SPAWNS == spawns

    def test_worker_count_change_recreates_pool(self):
        shutdown_pool()
        runner = ParallelRunner(jobs=2)
        runner.map(self.tasks(range(4)))
        if not runner.used_parallel:
            pytest.skip(f"no pool available: {runner.fallback_reason}")
        spawns = parallel_mod.POOL_SPAWNS
        other = ParallelRunner(jobs=3)
        other.map(self.tasks(range(6)))
        if other.used_parallel:
            assert parallel_mod.POOL_SPAWNS == spawns + 1

    def test_registry_mutation_recreates_pool(self):
        """Workers fork a snapshot of the policy registry; registering
        a plugin after the pool spawned must force a fresh pool so the
        plugin resolves inside workers (regression: plugin sweeps
        crashed once the pool became persistent)."""
        from repro.core.registry import register_policy, unregister_policy

        shutdown_pool()
        runner = ParallelRunner(jobs=2)
        runner.map(self.tasks(range(4)))
        if not runner.used_parallel:
            pytest.skip(f"no pool available: {runner.fallback_reason}")
        spawns = parallel_mod.POOL_SPAWNS
        register_policy(
            "pool-gen-probe", lambda *a, **k: None, object,
            extension=True, provider=__name__,
        )
        try:
            assert runner.map(self.tasks(range(4))) == [0, 1, 4, 9]
            if runner.used_parallel:
                assert parallel_mod.POOL_SPAWNS == spawns + 1
        finally:
            unregister_policy("pool-gen-probe")

    def test_shutdown_then_map_restarts(self):
        runner = ParallelRunner(jobs=2)
        runner.map(self.tasks(range(4)))
        shutdown_pool()
        assert runner.map(self.tasks(range(4))) == [0, 1, 4, 9]

    def test_unpicklable_leaves_pool_usable(self):
        """A pickling failure must not poison the shared pool."""
        runner = ParallelRunner(jobs=2)
        bad = [RunTask(lambda v=v: v) for v in range(3)]
        assert runner.map(bad) == [0, 1, 2]
        assert "unpicklable" in runner.fallback_reason
        good = runner.map(self.tasks(range(4)))
        assert good == [0, 1, 4, 9]


class TestChunking:
    def tasks(self, values):
        return [RunTask(square, (v,)) for v in values]

    def test_explicit_chunk_size_preserves_order(self):
        runner = ParallelRunner(jobs=2, chunk_size=3)
        assert runner.map(self.tasks(range(10))) == [v * v for v in range(10)]

    def test_chunk_size_larger_than_tasks(self):
        runner = ParallelRunner(jobs=2, chunk_size=100)
        assert runner.map(self.tasks(range(5))) == [v * v for v in range(5)]

    def test_auto_chunking_covers_all_tasks(self):
        runner = ParallelRunner(jobs=2)
        for count in (2, 3, 7, 16, 33):
            assert runner.map(self.tasks(range(count))) == [
                v * v for v in range(count)
            ]

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=2, chunk_size=0)

    def test_exception_in_chunk_propagates(self):
        runner = ParallelRunner(jobs=2, chunk_size=2)
        with pytest.raises(ZeroDivisionError):
            runner.map(
                [RunTask(square, (1,)), RunTask(_raise_zero_div, ()),
                 RunTask(square, (2,)), RunTask(square, (3,))]
            )


def summaries(sweep):
    return {
        policy: [point.result.summary() for point in points]
        for policy, points in sweep.items()
    }


class TestParallelDeterminism:
    """ISSUE satellite: jobs=4 must be bit-identical to jobs=1."""

    ARRIVALS = [
        Arrival(time=0.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT),
                speed=3.0),
        Arrival(time=0.3, movement=Movement(Approach.EAST, Turn.STRAIGHT),
                speed=3.0),
        Arrival(time=0.9, movement=Movement(Approach.NORTH, Turn.RIGHT),
                speed=3.0),
    ]

    def test_flow_sweep_bit_identical(self):
        kwargs = dict(
            policies=("vt-im", "crossroads"),
            flow_rates=(0.1, 0.4),
            n_cars=6,
            seed=7,
        )
        serial = run_flow_sweep(jobs=1, **kwargs)
        parallel = run_flow_sweep(jobs=4, **kwargs)
        assert summaries(serial) == summaries(parallel)

    def test_flow_sweep_aim_bit_identical(self):
        """AIM exercises the tile cache; caches are per-process state
        and must not leak into the scientific results."""
        kwargs = dict(policies=("aim",), flow_rates=(0.1, 0.3), n_cars=4,
                      seed=7)
        serial = run_flow_sweep(jobs=1, **kwargs)
        parallel = run_flow_sweep(jobs=4, **kwargs)
        assert summaries(serial) == summaries(parallel)

    def test_run_replicated_bit_identical(self):
        serial = run_replicated("crossroads", self.ARRIVALS,
                                seeds=(1, 2, 3, 4), jobs=1)
        parallel = run_replicated("crossroads", self.ARRIVALS,
                                  seeds=(1, 2, 3, 4), jobs=4)
        assert [r.summary() for r in serial.results] == [
            r.summary() for r in parallel.results
        ]

    def test_env_var_drives_flow_sweep(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        sweep = run_flow_sweep(policies=("crossroads",), flow_rates=(0.1,),
                               n_cars=3, seed=7)
        assert set(sweep) == {"crossroads"}
        assert len(sweep["crossroads"]) == 1

    def test_replicate_with_lambda_falls_back(self):
        """Closures cannot cross processes; replicate degrades serially."""
        rep = replicate(
            lambda seed: run_flow_sweep_stub(seed), seeds=(1, 2), jobs=4
        )
        assert rep.metric("avg_delay_s").n == 2


def run_flow_sweep_stub(seed):
    from repro.sim.world import run_scenario

    return run_scenario(
        "crossroads", TestParallelDeterminism.ARRIVALS[:2], seed=seed
    )


class TestFlowSweepValidation:
    def test_empty_flow_rates_rejected(self):
        with pytest.raises(ValueError, match="flow_rates"):
            run_flow_sweep(policies=("crossroads",), flow_rates=())

    def test_empty_policies_rejected(self):
        with pytest.raises(ValueError, match="policies"):
            run_flow_sweep(policies=(), flow_rates=(0.1,))

    def test_policy_alias_keying_preserved(self):
        sweep = run_flow_sweep(policies=("vtim",), flow_rates=(0.1,),
                               n_cars=2, seed=7)
        # Normalised policy name keys the dict (seed behaviour).
        assert set(sweep) == {"vt-im"}
