"""Tests for clocks and NTP synchronisation (paper Ch 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timesync import Clock, NtpClient, NtpSample, ntp_delay, ntp_offset, sync_buffer


class TestClock:
    def test_perfect_clock_reads_true_time(self):
        clock = Clock()
        assert clock.read(10.0) == 10.0

    def test_offset(self):
        clock = Clock(offset=0.5)
        assert clock.read(10.0) == pytest.approx(10.5)

    def test_drift_accumulates(self):
        clock = Clock(drift=1e-3, epoch=0.0)
        assert clock.read(100.0) == pytest.approx(100.1)

    def test_drift_relative_to_epoch(self):
        clock = Clock(drift=1e-3, epoch=50.0)
        assert clock.read(50.0) == pytest.approx(50.0)
        assert clock.read(150.0) == pytest.approx(150.1)

    def test_jitter_reproducible_with_seed(self):
        a = Clock(jitter_std=1e-3, rng=np.random.default_rng(1))
        b = Clock(jitter_std=1e-3, rng=np.random.default_rng(1))
        assert a.read(5.0) == b.read(5.0)

    def test_step_applies_correction(self):
        clock = Clock(offset=-0.4)
        clock.step(0.4)
        assert clock.read(10.0) == pytest.approx(10.0)

    def test_error_excludes_jitter(self):
        clock = Clock(offset=0.2, jitter_std=1.0)
        assert clock.error(0.0) == pytest.approx(0.2)

    def test_worst_case_error(self):
        clock = Clock(offset=0.1, drift=1e-3, jitter_std=1e-4)
        bound = clock.worst_case_error(0.0, 100.0)
        assert bound == pytest.approx(0.2 + 3e-4)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            Clock(jitter_std=-1.0)


class TestNtpEstimators:
    def test_symmetric_path_exact(self):
        # Client 0.3 s behind the server; 5 ms each way.
        offset_true = -0.3
        t_send, d = 100.0, 0.005
        t0 = t_send + offset_true
        t1 = t_send + d
        t2 = t1
        t3 = t_send + 2 * d + offset_true
        theta = ntp_offset(t0, t1, t2, t3)
        assert theta == pytest.approx(0.3)
        assert ntp_delay(t0, t1, t2, t3) == pytest.approx(2 * d)

    def test_asymmetry_error_bounded_by_half_delay(self):
        offset_true = 0.123
        d_up, d_down = 0.002, 0.009
        t0 = 10.0 + offset_true
        t1 = 10.0 + d_up
        t2 = t1 + 0.001  # server turnaround
        t3 = 10.0 + d_up + 0.001 + d_down + offset_true
        theta = ntp_offset(t0, t1, t2, t3)
        delay = ntp_delay(t0, t1, t2, t3)
        assert abs(theta - (-offset_true)) <= delay / 2 + 1e-12

    @given(
        st.floats(-1.0, 1.0),
        st.floats(1e-4, 0.02),
        st.floats(1e-4, 0.02),
    )
    @settings(max_examples=200, deadline=None)
    def test_correction_cancels_offset_within_bound(self, offset, d_up, d_down):
        t0 = 50.0 + offset
        t1 = 50.0 + d_up
        t2 = t1
        t3 = 50.0 + d_up + d_down + offset
        theta = ntp_offset(t0, t1, t2, t3)
        residual = abs(offset + theta)
        assert residual <= abs(d_up - d_down) / 2 + 1e-12


class TestSyncBuffer:
    def test_paper_number(self):
        # Ch 3.2: 1 ms at 3 m/s -> 3 mm.
        assert sync_buffer(1e-3, 3.0) == pytest.approx(0.003)

    def test_invalid(self):
        with pytest.raises(ValueError):
            sync_buffer(-1e-3, 3.0)


class TestNtpClient:
    def make_sample(self, offset, delay):
        t0 = 0.0 + offset
        t1 = delay / 2
        t2 = t1
        t3 = delay + offset
        return NtpSample(t0=t0, t1=t1, t2=t2, t3=t3)

    def test_best_is_min_delay(self):
        client = NtpClient(Clock())
        client.add_sample(self.make_sample(0.1, 0.010))
        client.add_sample(self.make_sample(0.1, 0.002))
        client.add_sample(self.make_sample(0.1, 0.020))
        assert client.best.delay == pytest.approx(0.002)

    def test_synchronize_steps_clock(self):
        clock = Clock(offset=0.25)
        client = NtpClient(clock)
        client.add_sample(self.make_sample(0.25, 0.004))
        client.synchronize()
        assert abs(clock.error(0.0)) < 1e-9

    def test_synchronize_without_samples_raises(self):
        with pytest.raises(RuntimeError):
            NtpClient(Clock()).synchronize()

    def test_sample_window_bounded(self):
        client = NtpClient(Clock(), max_samples=3)
        for i in range(10):
            client.add_sample(self.make_sample(0.0, 0.001 * (i + 1)))
        assert len(client.samples) == 3

    def test_residual_error_bound(self):
        client = NtpClient(Clock())
        client.add_sample(self.make_sample(0.1, 0.004))
        assert client.residual_error_bound() == pytest.approx(0.002)


class TestEndToEndSyncOverChannel:
    def test_sync_error_under_paper_bound(self):
        """Full NTP exchange over the simulated radio: residual < 1 ms
        when one-way delays are < 2 ms apart (the testbed's situation).
        """
        from repro.des import Environment
        from repro.network import Channel, SyncRequest, SyncResponse, UniformDelay

        env = Environment()
        channel = Channel(
            env, delay_model=UniformDelay(0.001, 0.002), rng=np.random.default_rng(5)
        )
        im_radio = channel.attach("IM")
        v_radio = channel.attach("V")
        clock = Clock(offset=0.37, drift=10e-6)
        client = NtpClient(clock)

        def server(env):
            while True:
                msg = yield im_radio.receive()
                now = env.now
                im_radio.send(
                    SyncResponse(sender="IM", receiver="V", t0=msg.t0, t1=now, t2=now)
                )

        def vehicle(env):
            for _ in range(4):
                t0 = clock.read(env.now)
                v_radio.send(SyncRequest(sender="V", receiver="IM", t0=t0))
                response = yield v_radio.receive()
                t3 = clock.read(env.now)
                client.add_sample(
                    NtpSample(t0=response.t0, t1=response.t1, t2=response.t2, t3=t3)
                )
            client.synchronize()

        env.process(server(env))
        done = env.process(vehicle(env))
        env.run(until=done)
        assert abs(clock.error(env.now)) < 1e-3
