"""Graceful shutdown of ``python -m repro serve`` (subprocess).

SIGINT and SIGTERM must both drain the server, flush the final
metrics snapshot and exit 0 — the contract an orchestrator (or an
operator's ^C) relies on.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.prom import parse_prometheus

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn(metrics_out):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.setdefault("PYTHONUNBUFFERED", "1")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--http-port", "0",
            "--time-scale", "10",
            "--duration", "60",  # safety net only; the signal ends it
            "--metrics-out", str(metrics_out),
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    assert line.startswith("serving "), f"unexpected startup line: {line!r}"
    assert " on tcp " in line
    return process


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM],
                         ids=["SIGINT", "SIGTERM"])
def test_signal_drains_and_exits_zero(tmp_path, signum):
    metrics_out = tmp_path / "serve.prom"
    process = _spawn(metrics_out)
    try:
        time.sleep(0.3)  # let the listeners settle
        process.send_signal(signum)
        stdout, stderr = process.communicate(timeout=30)
    except Exception:
        process.kill()
        raise
    assert process.returncode == 0, (
        f"exit {process.returncode}\nstdout:\n{stdout}\nstderr:\n{stderr}"
    )
    assert "drained and stopped" in stdout
    assert metrics_out.exists(), "final metrics snapshot not flushed"
    samples = parse_prometheus(metrics_out.read_text())
    names = {name for name, _labels, _value in samples}
    assert any("serve_wc_rtd_estimate" in name for name in names)


def test_duration_expiry_exits_zero(tmp_path):
    metrics_out = tmp_path / "serve.prom"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--http-port", "0",
            "--time-scale", "10",
            "--duration", "0.5",
            "--metrics-out", str(metrics_out),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=30,
    )
    assert process.returncode == 0, process.stderr
    assert "drained and stopped" in process.stdout
    assert metrics_out.exists()
