"""End-to-end integration tests: full worlds, all three policies.

These are the system-level guarantees the reproduction rests on:
every vehicle eventually crosses, ground-truth safety holds, the
metrics are self-consistent, and the paper's qualitative orderings
appear.
"""

import pytest

from repro.geometry import Approach, Movement, Turn
from repro.sim import World, WorldConfig, compare_policies, run_scenario
from repro.traffic import Arrival, PoissonTraffic, scale_model_scenarios
from repro.vehicle import VehicleSpec

POLICIES = ("crossroads", "vt-im", "aim")


def single_arrival():
    return [
        Arrival(
            time=0.0,
            movement=Movement(Approach.SOUTH, Turn.STRAIGHT),
            speed=3.0,
        )
    ]


class TestSingleVehicle:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_lone_vehicle_crosses_at_free_flow(self, policy):
        result = run_scenario(policy, single_arrival(), seed=1)
        assert result.n_finished == 1
        record = result.finished[0]
        assert record.delay == pytest.approx(0.0, abs=0.5)
        assert result.collisions == 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_protocol_message_types(self, policy):
        result = run_scenario(policy, single_arrival(), seed=1)
        types = result.messages_by_type
        assert types.get("SyncRequest", 0) >= 1
        assert types.get("SyncResponse", 0) >= 1
        assert types.get("ExitNotification", 0) == 1
        if policy == "aim":
            assert types.get("AimRequest", 0) >= 1
            assert types.get("AimAccept", 0) >= 1
        else:
            assert types.get("CrossingRequest", 0) >= 1

    @pytest.mark.parametrize("policy", POLICIES)
    def test_rtd_measured_within_bound(self, policy):
        result = run_scenario(policy, single_arrival(), seed=1)
        assert 0.0 < result.worst_rtd < 0.2


class TestScenarioRuns:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_worst_case_scenario_safe_and_complete(self, policy):
        scenario = scale_model_scenarios()[0]
        result = run_scenario(policy, scenario.arrivals, seed=3)
        assert result.n_finished == scenario.n_vehicles
        assert result.collisions == 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_best_case_scenario_near_free_flow(self, policy):
        scenario = scale_model_scenarios()[9]
        result = run_scenario(policy, scenario.arrivals, seed=3)
        assert result.n_finished == scenario.n_vehicles
        assert result.average_delay < 0.5

    def test_crossroads_beats_vtim_on_worst_case(self):
        scenario = scale_model_scenarios()[0]
        cr = run_scenario("crossroads", scenario.arrivals, seed=3)
        vt = run_scenario("vt-im", scenario.arrivals, seed=3)
        assert cr.average_delay < vt.average_delay

    def test_exit_order_fcfs_same_lane(self):
        """Two same-lane vehicles exit in spawn order."""
        arrivals = [
            Arrival(time=0.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT), speed=3.0),
            Arrival(time=1.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT), speed=3.0),
        ]
        result = run_scenario("crossroads", arrivals, seed=2)
        records = sorted(result.finished, key=lambda r: r.vehicle_id)
        assert records[0].exit_time < records[1].exit_time


class TestModerateFlow:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_sustained_flow_safe_and_complete(self, policy):
        arrivals = PoissonTraffic(0.3, seed=11).generate(20)
        result = run_scenario(policy, arrivals, seed=11)
        assert result.n_finished == 20
        assert result.collisions == 0
        assert result.buffer_violations == 0

    def test_same_traffic_for_fair_comparison(self):
        """The same seed gives every policy identical arrivals."""
        a = PoissonTraffic(0.3, seed=11).generate(20)
        b = PoissonTraffic(0.3, seed=11).generate(20)
        assert [(x.time, x.movement.key) for x in a] == [
            (y.time, y.movement.key) for y in b
        ]

    def test_compare_policies_helper(self):
        arrivals = PoissonTraffic(0.5, seed=12).generate(16)
        results = [run_scenario(p, arrivals, seed=12) for p in POLICIES]
        ratios = compare_policies(results, baseline="vt-im")
        assert ratios["vt-im"] == pytest.approx(1.0)
        assert set(ratios) == set(POLICIES)

    def test_compare_policies_unknown_baseline(self):
        arrivals = single_arrival()
        results = [run_scenario("crossroads", arrivals, seed=1)]
        with pytest.raises(ValueError):
            compare_policies(results, baseline="vt-im")


class TestWorldMechanics:
    def test_pose_of_straight_movement(self):
        world = World("crossroads", single_arrival(), seed=1)
        world.env.run(until=0.2)
        vehicle = world.vehicles[0]
        rect = world.pose_of(vehicle)
        # South approach: on the inbound lane, south of the box.
        assert rect.cy < -0.6
        assert rect.cx == pytest.approx(0.225, abs=0.05)

    def test_run_is_deterministic_given_seed(self):
        scenario = scale_model_scenarios()[2]
        r1 = run_scenario("crossroads", scenario.arrivals, seed=5)
        r2 = run_scenario("crossroads", scenario.arrivals, seed=5)
        assert r1.average_delay == pytest.approx(r2.average_delay)
        assert r1.messages_sent == r2.messages_sent

    def test_different_seeds_different_noise(self):
        scenario = scale_model_scenarios()[2]
        r1 = run_scenario("crossroads", scenario.arrivals, seed=5)
        r2 = run_scenario("crossroads", scenario.arrivals, seed=6)
        assert r1.average_delay != r2.average_delay

    def test_ideal_vehicles_mode(self):
        config = WorldConfig(ideal_vehicles=True)
        result = run_scenario("crossroads", single_arrival(), config=config, seed=1)
        assert result.n_finished == 1
        record = result.finished[0]
        # Noise-free tracking: only the 20 ms control-tick quantisation
        # remains, comfortably inside the sensing buffer.
        assert record.max_tracking_error < 0.078

    def test_sim_result_summary_keys(self):
        result = run_scenario("crossroads", single_arrival(), seed=1)
        summary = result.summary()
        for key in ("avg_delay_s", "throughput", "compute_s", "messages"):
            assert key in summary

    def test_message_loss_still_completes(self):
        """Retransmission recovers from a lossy channel."""
        config = WorldConfig(message_loss=0.2)
        arrivals = PoissonTraffic(0.2, seed=13).generate(6)
        result = run_scenario("crossroads", arrivals, config=config, seed=13)
        assert result.n_finished == 6
        assert result.collisions == 0


class TestComputeAndNetworkOverhead:
    def test_aim_costs_more_compute_than_crossroads(self):
        """Ch 7.2: AIM's trial-and-error costs multiples of Crossroads."""
        arrivals = PoissonTraffic(0.6, seed=14).generate(16)
        aim = run_scenario("aim", arrivals, seed=14)
        cr = run_scenario("crossroads", arrivals, seed=14)
        assert aim.compute_time > 2.0 * cr.compute_time
        assert aim.messages_sent > cr.messages_sent

    def test_vtim_and_crossroads_similar_compute(self):
        arrivals = PoissonTraffic(0.3, seed=15).generate(12)
        vt = run_scenario("vt-im", arrivals, seed=15)
        cr = run_scenario("crossroads", arrivals, seed=15)
        assert vt.compute_time < 6.0 * cr.compute_time
        assert cr.compute_time < 6.0 * vt.compute_time
