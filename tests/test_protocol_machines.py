"""Direct unit tests for the repro.protocol state machines.

Each machine is exercised in isolation — no World, no vehicle, no IM —
which is the point of the layer: the retransmit/backoff/degradation,
staleness-validation, sequence-guard and time-sync semantics the fault
suite pins end-to-end are testable here against a bare DES environment
and channel (or no DES at all for the pure-state machines).
"""

import numpy as np
import pytest

from repro.des import Environment
from repro.network.channel import Channel
from repro.network.messages import (
    SyncRequest,
    SyncResponse,
    VelocityCommand,
)
from repro.protocol import (
    CommandValidator,
    DegradationMonitor,
    RequestLoop,
    SequenceGuard,
    TimeSyncResponder,
    TimeSyncSession,
)
from repro.timesync.clock import Clock
from repro.timesync.ntp import NtpClient


class RecordSink:
    """Minimal duck-typed record for CommandValidator."""

    def __init__(self):
        self.rtds = []
        self.deadline_misses = 0
        self.stale_rejected = 0
        self.min_command_margin = float("inf")


# -- DegradationMonitor ------------------------------------------------------

class TestDegradationMonitor:
    def test_backoff_growth_and_cap(self):
        monitor = DegradationMonitor(0.25, growth=1.5, timeout_cap=0.8)
        assert monitor.retry_timeout == 0.25
        monitor.on_timeout()
        assert monitor.retry_timeout == pytest.approx(0.375)
        for _ in range(10):
            monitor.on_timeout()
        assert monitor.retry_timeout == pytest.approx(0.8)

    def test_contact_resets_everything(self):
        monitor = DegradationMonitor(0.25, silence_limit=2)
        monitor.on_timeout()
        monitor.on_timeout()
        assert monitor.degraded
        monitor.on_contact()
        assert not monitor.degraded
        assert monitor.retry_timeout == 0.25
        assert monitor.timeouts_in_a_row == 0

    def test_degrades_after_silence_limit(self):
        monitor = DegradationMonitor(0.25, silence_limit=3)
        assert not monitor.on_timeout()
        assert not monitor.on_timeout()
        assert monitor.on_timeout()  # third strike: newly degraded
        assert monitor.degraded
        assert not monitor.on_timeout()  # already degraded: not "newly"

    def test_committed_endpoint_never_degrades(self):
        monitor = DegradationMonitor(0.25, silence_limit=1)
        for _ in range(5):
            assert not monitor.on_timeout(committed=True)
        assert not monitor.degraded
        # ... but the backoff still grows (poll pacing).
        assert monitor.retry_timeout > 0.25

    def test_jitter_bounds_and_determinism(self):
        rng = np.random.default_rng(3)
        monitor = DegradationMonitor(0.2, backoff_jitter=0.1, rng=rng)
        draws = [monitor.next_timeout() for _ in range(100)]
        assert all(0.2 <= d <= 0.2 * 1.1 for d in draws)
        assert len(set(draws)) > 1  # jitter is drawn fresh per call
        rng2 = np.random.default_rng(3)
        monitor2 = DegradationMonitor(0.2, backoff_jitter=0.1, rng=rng2)
        assert draws == [monitor2.next_timeout() for _ in range(100)]

    def test_no_jitter_is_exact(self):
        monitor = DegradationMonitor(0.2)
        assert monitor.next_timeout() == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationMonitor(0.0)
        with pytest.raises(ValueError):
            DegradationMonitor(0.2, backoff_jitter=-0.1)
        with pytest.raises(ValueError):
            DegradationMonitor(0.2, silence_limit=0)
        with pytest.raises(ValueError):
            DegradationMonitor(0.2, growth=0.9)
        with pytest.raises(ValueError):
            DegradationMonitor(0.2, timeout_cap=0.1)


# -- CommandValidator --------------------------------------------------------

class TestCommandValidator:
    def test_rtd_within_bound(self):
        record = RecordSink()
        validator = CommandValidator(0.15, record)
        assert validator.admit_rtd(0.1)
        assert record.rtds == [0.1]
        assert record.deadline_misses == 0

    def test_rtd_miss_logged_and_counted(self):
        record = RecordSink()
        validator = CommandValidator(0.15, record)
        assert not validator.admit_rtd(0.2)
        # The full RTD distribution is kept either way (WC-RTD study).
        assert record.rtds == [0.2]
        assert record.deadline_misses == 1
        assert record.stale_rejected == 0  # rejecting is the policy's call

    def test_deadline_margin_folds_into_minimum(self):
        record = RecordSink()
        validator = CommandValidator(0.15, record)
        assert validator.admit_deadline(0.5)
        assert validator.admit_deadline(0.05)
        assert validator.admit_deadline(0.2)
        assert record.min_command_margin == pytest.approx(0.05)
        assert record.stale_rejected == 0

    def test_passed_deadline_rejected(self):
        record = RecordSink()
        validator = CommandValidator(0.15, record)
        assert not validator.admit_deadline(-0.01)
        assert record.stale_rejected == 1
        # A rejected command never contaminates the executed-margin min.
        assert record.min_command_margin == float("inf")

    def test_deadline_epsilon_tolerance(self):
        record = RecordSink()
        validator = CommandValidator(0.15, record)
        # Float noise just below zero still executes (margin ~ 0).
        assert validator.admit_deadline(-1e-12)
        assert record.stale_rejected == 0

    def test_note_executed(self):
        record = RecordSink()
        validator = CommandValidator(0.15, record)
        validator.note_executed(0.03)
        assert record.min_command_margin == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommandValidator(0.0, RecordSink())


# -- SequenceGuard -----------------------------------------------------------

class TestSequenceGuard:
    def test_monotonic_requests(self):
        guard = SequenceGuard()
        assert guard.admit_request("V1", 5)
        assert not guard.admit_request("V1", 5)  # duplicate
        assert not guard.admit_request("V1", 3)  # reordered
        assert guard.admit_request("V1", 6)

    def test_senders_are_independent(self):
        guard = SequenceGuard()
        assert guard.admit_request("V1", 10)
        assert guard.admit_request("V2", 2)
        assert not guard.admit_request("V2", 2)

    def test_stale_cancel(self):
        guard = SequenceGuard()
        guard.note_grant("V1", 7)
        assert guard.stale_cancel("V1", 6)  # predates the grant
        assert not guard.stale_cancel("V1", 7)
        assert not guard.stale_cancel("V1", 9)
        assert not guard.stale_cancel("V9", 1)  # never granted: not stale


# -- RequestLoop -------------------------------------------------------------

def _drive(env, gen, results, key):
    """Run a protocol generator as a DES process, capturing its return."""

    def proc():
        results[key] = yield from gen

    env.process(proc())


class TestRequestLoop:
    def _loop(self):
        env = Environment()
        channel = Channel(env)
        vehicle_radio = channel.attach("V1")
        im_radio = channel.attach("IM")
        monitor = DegradationMonitor(0.25)
        return env, vehicle_radio, im_radio, RequestLoop(env, vehicle_radio, monitor)

    def test_exchange_answered(self):
        env, vehicle_radio, im_radio, loop = self._loop()
        results = {}
        request = SyncRequest(sender="V1", receiver="IM", t0=0.0)

        def im():
            message = yield im_radio.receive()
            im_radio.send(
                SyncResponse(sender="IM", receiver="V1", t0=message.t0,
                             t1=env.now, t2=env.now)
            )

        env.process(im())
        _drive(env, loop.exchange(request, SyncResponse), results, "r")
        env.run()
        assert isinstance(results["r"], SyncResponse)

    def test_exchange_timeout_returns_none(self):
        env, _, _, loop = self._loop()
        results = {}
        request = SyncRequest(sender="V1", receiver="IM", t0=0.0)
        _drive(env, loop.exchange(request, SyncResponse), results, "r")
        env.run()  # IM never answers
        assert results["r"] is None
        assert env.now == pytest.approx(0.25)  # monitor's base timeout

    def test_foreign_types_discarded(self):
        env, vehicle_radio, im_radio, loop = self._loop()
        results = {}

        def im():
            yield env.timeout(0.01)
            im_radio.send(VelocityCommand(sender="IM", receiver="V1", vt=1.0))
            yield env.timeout(0.01)
            im_radio.send(SyncResponse(sender="IM", receiver="V1"))

        env.process(im())
        _drive(env, loop.await_response(0.2, SyncResponse), results, "r")
        env.run()
        assert isinstance(results["r"], SyncResponse)

    def test_superseded_reply_discarded(self):
        env, vehicle_radio, im_radio, loop = self._loop()
        results = {}

        def im():
            yield env.timeout(0.01)
            im_radio.send(
                VelocityCommand(sender="IM", receiver="V1", vt=1.0,
                                in_reply_to=999)  # answers an older request
            )
            yield env.timeout(0.01)
            im_radio.send(
                VelocityCommand(sender="IM", receiver="V1", vt=2.0,
                                in_reply_to=1000)
            )

        env.process(im())
        _drive(env, loop.await_response(0.2, VelocityCommand, reply_to=1000),
               results, "r")
        env.run()
        assert results["r"].vt == 2.0

    def test_uncorrelated_reply_accepted(self):
        # in_reply_to == 0 means "uncorrelated" and always matches.
        env, vehicle_radio, im_radio, loop = self._loop()
        results = {}

        def im():
            yield env.timeout(0.01)
            im_radio.send(VelocityCommand(sender="IM", receiver="V1", vt=3.0))

        env.process(im())
        _drive(env, loop.await_response(0.2, VelocityCommand, reply_to=1234),
               results, "r")
        env.run()
        assert results["r"].vt == 3.0

    def test_timeout_withdraws_pending_get(self):
        # A reply landing *after* the timeout must not be swallowed by
        # the abandoned get — the next await must still receive it.
        env, vehicle_radio, im_radio, loop = self._loop()
        results = {}

        def im():
            yield env.timeout(0.3)  # past the 0.2 s timeout below
            im_radio.send(SyncResponse(sender="IM", receiver="V1"))

        def vehicle():
            first = yield from loop.await_response(0.2, SyncResponse)
            second = yield from loop.await_response(0.5, SyncResponse)
            results["first"], results["second"] = first, second

        env.process(im())
        env.process(vehicle())
        env.run()
        assert results["first"] is None
        assert isinstance(results["second"], SyncResponse)


# -- TimeSyncSession / TimeSyncResponder -------------------------------------

class TestTimeSync:
    def _fixture(self, *, offset=0.05, rtt_limit=0.015, attempt_budget=4,
                 delay_model=None):
        env = Environment()
        channel = Channel(env, delay_model=delay_model)
        vehicle_radio = channel.attach("V1")
        im_radio = channel.attach("IM")
        clock = Clock(offset=offset)
        ntp = NtpClient(clock)
        monitor = DegradationMonitor(0.25)
        loop = RequestLoop(env, vehicle_radio, monitor)
        session = TimeSyncSession(
            loop, ntp, server="IM",
            local_time=lambda: clock.read(env.now),
            rtt_limit=rtt_limit, attempt_budget=attempt_budget,
        )
        return env, im_radio, clock, session

    def test_clean_exchange_steps_clock(self):
        env, im_radio, clock, session = self._fixture(offset=0.05)
        responder = TimeSyncResponder(im_radio)
        results = {}

        def im():
            while True:
                message = yield im_radio.receive()
                responder.respond(message, env.now)

        env.process(im())
        _drive(env, session.run(), results, "synced")
        env.run(until=2.0)
        assert results["synced"] is True
        assert responder.responses == 1
        # Zero channel delay => exact offset recovery.
        assert clock.read(env.now) == pytest.approx(env.now, abs=1e-9)

    def test_responder_echoes_and_counts(self):
        env = Environment()
        channel = Channel(env)
        im_radio = channel.attach("IM")
        channel.attach("V1")
        responder = TimeSyncResponder(im_radio)
        request = SyncRequest(sender="V1", receiver="IM", t0=42.0)
        responder.respond(request, 7.0)
        assert responder.responses == 1
        # Deliver and inspect via the DES.
        results = {}

        def vehicle():
            results["m"] = yield channel._radios["V1"].receive()

        env.process(vehicle())
        env.run()
        reply = results["m"]
        assert reply.t0 == 42.0 and reply.t1 == 7.0 and reply.t2 == 7.0

    def test_spiked_samples_resample_then_settle(self):
        from repro.network.delay import ConstantDelay

        # One-way 20 ms => RTT 40 ms, far over the 15 ms trust bound:
        # every sample is "spiked", so the session re-exchanges up to
        # the budget and then settles for the best sample it has.
        env, im_radio, clock, session = self._fixture(
            offset=0.05, delay_model=ConstantDelay(0.02), attempt_budget=3,
        )
        responder = TimeSyncResponder(im_radio)
        resamples = []
        results = {}

        def im():
            while True:
                message = yield im_radio.receive()
                responder.respond(message, env.now)

        env.process(im())
        _drive(env, session.run(on_resample=lambda: resamples.append(1)),
               results, "synced")
        env.run(until=5.0)
        assert results["synced"] is True
        assert responder.responses == 3  # budget exhausted
        assert len(resamples) == 2  # budget - 1 forced re-exchanges
        # Symmetric delay still recovers the offset exactly.
        assert clock.read(env.now) == pytest.approx(env.now, abs=1e-9)

    def test_timeout_fires_backoff_hook(self):
        env, _, clock, session = self._fixture()
        timeouts = []
        aborted = {"flag": False}
        results = {}

        def on_timeout():
            timeouts.append(env.now)
            if len(timeouts) >= 3:
                aborted["flag"] = True

        _drive(
            env,
            session.run(should_abort=lambda: aborted["flag"],
                        on_timeout=on_timeout),
            results, "synced",
        )
        env.run(until=10.0)  # IM never answers
        assert results["synced"] is False  # aborted, never synced
        assert len(timeouts) == 3

    def test_validation(self):
        env, _, clock, session = self._fixture()
        with pytest.raises(ValueError):
            TimeSyncSession(session.loop, session.ntp, server="IM",
                            local_time=lambda: 0.0, rtt_limit=0.0)
        with pytest.raises(ValueError):
            TimeSyncSession(session.loop, session.ntp, server="IM",
                            local_time=lambda: 0.0, rtt_limit=0.1,
                            attempt_budget=0)
