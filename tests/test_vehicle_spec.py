"""Tests for vehicle specs and the VehicleInfo packet."""

import pytest

from repro.geometry import Approach, Movement, Turn
from repro.vehicle import VehicleInfo, VehicleSpec


class TestVehicleSpec:
    def test_testbed_defaults(self):
        spec = VehicleSpec()
        assert spec.length == pytest.approx(0.568)
        assert spec.width == pytest.approx(0.296)
        assert spec.v_max == pytest.approx(3.0)

    def test_with_limits(self):
        spec = VehicleSpec().with_limits(v_max=2.0)
        assert spec.v_max == 2.0
        assert spec.length == pytest.approx(0.568)

    def test_frozen(self):
        with pytest.raises(Exception):
            VehicleSpec().length = 1.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            VehicleSpec(length=0.0)
        with pytest.raises(ValueError):
            VehicleSpec(v_max=-1.0)
        with pytest.raises(ValueError):
            VehicleSpec(wheelbase=1.0, length=0.5)


class TestVehicleInfo:
    def make(self, buffer=0.078):
        return VehicleInfo(
            vehicle_id=3,
            spec=VehicleSpec(),
            movement=Movement(Approach.SOUTH, Turn.STRAIGHT),
            buffer=buffer,
        )

    def test_effective_length(self):
        info = self.make(buffer=0.078)
        assert info.effective_length == pytest.approx(0.568 + 2 * 0.078)

    def test_effective_length_with_extra(self):
        info = self.make(buffer=0.078)
        assert info.effective_length_with(0.45) == pytest.approx(
            0.568 + 2 * (0.078 + 0.45)
        )

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            self.make(buffer=-0.01)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            VehicleInfo(
                vehicle_id=-1,
                spec=VehicleSpec(),
                movement=Movement(Approach.SOUTH, Turn.STRAIGHT),
            )
