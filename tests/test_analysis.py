"""Tests for tables and report builders."""

import pytest

from repro.analysis import (
    flow_sweep_rows,
    format_value,
    geometric_mean,
    overhead_rows,
    render_table,
    scenario_rows,
    speedup_summary,
)
from repro.sim.flowsweep import FlowPoint
from repro.sim.metrics import SimResult
from repro.vehicle.agent import VehicleRecord


def fake_result(policy, delays):
    records = []
    for i, d in enumerate(delays):
        r = VehicleRecord(
            vehicle_id=i, movement_key="S-straight", spawn_time=0.0, spawn_speed=3.0
        )
        r.ideal_transit = 1.0
        r.exit_time = 1.0 + d
        records.append(r)
    return SimResult(policy=policy, records=records, sim_duration=100.0)


class TestTables:
    def test_render_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1.23456) == "1.235"
        assert format_value("x") == "x"

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestReports:
    def make_sweep(self):
        sweep = {}
        for policy, thr in (("crossroads", [3.0, 0.2]), ("vt-im", [2.0, 0.05])):
            points = []
            for flow, t in zip((0.1, 1.0), thr):
                result = fake_result(policy, [1.0 / t] * 4)
                points.append(FlowPoint(policy=policy, flow_rate=flow, result=result))
            sweep[policy] = points
        return sweep

    def test_scenario_rows(self):
        per_scenario = {
            "S1": {"crossroads": fake_result("crossroads", [1.0]),
                   "vt-im": fake_result("vt-im", [2.0])},
        }
        headers, rows = scenario_rows(per_scenario)
        assert rows[0][0] == "S1"
        assert rows[0][-1] == "crossroads"

    def test_flow_sweep_rows(self):
        headers, rows = flow_sweep_rows(self.make_sweep())
        assert headers[0] == "flow (car/lane/s)"
        assert len(rows) == 2
        assert rows[0][0] == 0.1

    def test_overhead_rows(self):
        headers, rows = overhead_rows(self.make_sweep())
        assert len(rows) == 2
        assert len(headers) == 1 + 2 + 2

    def test_speedup_summary(self):
        sweep = self.make_sweep()
        summary = speedup_summary(sweep, subject="crossroads")
        assert "vt-im" in summary
        stats = summary["vt-im"]
        assert stats["worst_case"] >= stats["average"] >= stats["best_case"]
        assert stats["worst_case"] > 1.0

    def test_speedup_unknown_subject(self):
        with pytest.raises(ValueError):
            speedup_summary({}, subject="crossroads")
