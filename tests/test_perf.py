"""Tests for the repro.perf instrumentation module."""

import pickle
import time

import pytest

from repro.geometry import Approach, Movement, Turn
from repro.perf import PerfCounters, hit_rate, merge_snapshots
from repro.sim import run_scenario
from repro.traffic import Arrival


class TestCounters:
    def test_incr_and_count(self):
        perf = PerfCounters()
        assert perf.count("x") == 0
        perf.incr("x")
        perf.incr("x", 4)
        assert perf.count("x") == 5

    def test_timer_accumulates(self):
        perf = PerfCounters()
        with perf.timer("work"):
            time.sleep(0.01)
        with perf.timer("work"):
            pass
        assert perf.time_of("work") >= 0.01
        assert perf.time_of("other") == 0.0

    def test_timer_survives_exceptions(self):
        perf = PerfCounters()
        with pytest.raises(RuntimeError):
            with perf.timer("work"):
                raise RuntimeError("boom")
        assert perf.time_of("work") >= 0.0
        assert "work" in perf.times

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PerfCounters().add_time("x", -1.0)

    def test_nested_timers_accumulate_independently(self):
        """Nested ``timer()`` contexts each accumulate their own key,
        and the outer context includes the inner's span."""
        perf = PerfCounters()
        with perf.timer("outer"):
            with perf.timer("inner"):
                time.sleep(0.01)
        assert perf.time_of("inner") >= 0.01
        assert perf.time_of("outer") >= perf.time_of("inner")

    def test_nested_timer_same_key_reentrant(self):
        """Re-entering one key nests safely: both spans land on the
        accumulator (outer covers inner, so total >= 2x inner sleep)."""
        perf = PerfCounters()
        with perf.timer("work"):
            with perf.timer("work"):
                time.sleep(0.01)
        assert perf.time_of("work") >= 0.02

    def test_merge(self):
        a = PerfCounters()
        a.incr("cells", 10)
        a.add_time("run", 1.0)
        b = PerfCounters()
        b.incr("cells", 5)
        b.incr("events", 2)
        b.add_time("run", 0.5)
        a.merge(b)
        assert a.count("cells") == 15
        assert a.count("events") == 2
        assert a.time_of("run") == pytest.approx(1.5)

    def test_snapshot_prefixes(self):
        perf = PerfCounters()
        perf.incr("cells", 3)
        perf.add_time("run", 0.25)
        snap = perf.snapshot()
        assert snap == {"count.cells": 3.0, "time.run_s": 0.25}

    def test_snapshot_is_picklable_and_detached(self):
        perf = PerfCounters()
        perf.incr("cells")
        snap = perf.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        perf.incr("cells")
        assert snap["count.cells"] == 1.0

    def test_hit_rate(self):
        assert hit_rate(0, 0) == 0.0
        assert hit_rate(3, 1) == pytest.approx(0.75)
        perf = PerfCounters()
        perf.incr("hits", 1)
        perf.incr("misses", 3)
        assert perf.hit_rate("hits", "misses") == pytest.approx(0.25)

    def test_reset(self):
        perf = PerfCounters()
        perf.incr("x")
        perf.add_time("y", 1.0)
        perf.reset()
        assert perf.snapshot() == {}

    def test_negative_incr_rejected(self):
        """Counters are documented as monotonic; a negative increment
        would silently corrupt merged snapshots."""
        perf = PerfCounters()
        perf.incr("x", 2)
        with pytest.raises(ValueError):
            perf.incr("x", -1)
        assert perf.count("x") == 2  # untouched by the rejected call
        perf.incr("x", 0)  # zero is a legal no-op
        assert perf.count("x") == 2


class TestSnapshotMerge:
    def test_from_snapshot_round_trip(self):
        perf = PerfCounters()
        perf.incr("cells", 7)
        perf.add_time("run", 0.5)
        rebuilt = PerfCounters.from_snapshot(perf.snapshot())
        assert rebuilt.snapshot() == perf.snapshot()

    def test_from_snapshot_skips_derived_keys(self):
        snap = {"count.hits": 3.0, "tile_cache_hit_rate": 0.75}
        rebuilt = PerfCounters.from_snapshot(snap)
        assert rebuilt.snapshot() == {"count.hits": 3.0}

    def test_merge_snapshots(self):
        a = {"count.cells": 10.0, "time.run_s": 1.0}
        b = {"count.cells": 5.0, "count.events": 2.0, "time.run_s": 0.5,
             "tile_cache_hit_rate": 0.9}
        merged = merge_snapshots([a, b])
        assert merged["count.cells"] == 15.0
        assert merged["count.events"] == 2.0
        assert merged["time.run_s"] == pytest.approx(1.5)
        assert "tile_cache_hit_rate" not in merged  # derived, not additive

    def test_merge_snapshots_empty(self):
        assert merge_snapshots([]) == {}

    def test_merge_snapshots_disjoint_keys(self):
        """Workers that counted entirely different things merge into
        the union — nothing is dropped and nothing cross-pollinates."""
        a = {"count.cells": 10.0, "time.batch_s": 0.25}
        b = {"count.events": 7.0, "time.run_s": 1.0}
        merged = merge_snapshots([a, b])
        assert merged == {"count.cells": 10.0, "count.events": 7.0,
                          "time.batch_s": 0.25, "time.run_s": 1.0}


class TestSimResultPerf:
    def arrivals(self):
        return [
            Arrival(time=0.0, movement=Movement(Approach.SOUTH, Turn.STRAIGHT),
                    speed=3.0),
            Arrival(time=0.4, movement=Movement(Approach.EAST, Turn.STRAIGHT),
                    speed=3.0),
        ]

    def test_world_populates_perf_snapshot(self):
        result = run_scenario("crossroads", self.arrivals(), seed=3)
        assert result.perf["count.des_events"] > 0
        assert result.perf["time.sim_run_s"] > 0.0
        # Perf never leaks into the scientific summary.
        assert not any(k.startswith(("count.", "time.")) for k in result.summary())

    def test_aim_reports_tile_counters(self):
        result = run_scenario("aim", self.arrivals(), seed=3)
        assert result.perf["count.tile_cells_tested"] > 0
        assert result.perf["count.tile_cells_simulated"] > 0
        hits = result.perf["count.tile_cache_hits"]
        misses = result.perf["count.tile_cache_misses"]
        assert misses > 0
        assert 0.0 <= result.perf["tile_cache_hit_rate"] <= 1.0
        assert result.perf["tile_cache_hit_rate"] == pytest.approx(
            hit_rate(hits, misses)
        )

    def test_non_aim_has_no_tile_counters(self):
        result = run_scenario("vt-im", self.arrivals(), seed=3)
        assert "count.tile_cells_tested" not in result.perf
