"""Unit tests for DES stores and resources."""

import pytest

from repro.des import (
    Environment,
    PriorityStore,
    Resource,
    SimulationError,
    Store,
    StoreFullError,
)


class TestStore:
    def test_put_then_get_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env, store):
            for i in range(3):
                yield env.timeout(1.0)
                store.put_nowait(i)

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                got.append((env.now, item))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env, store):
            yield env.timeout(5.0)
            store.put_nowait("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [(5.0, "late")]

    def test_capacity_put_nowait_raises_when_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put_nowait("x")
        with pytest.raises(StoreFullError):
            store.put_nowait("y")

    def test_blocking_put_waits_for_space(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("a")
            log.append(("a", env.now))
            yield store.put("b")
            log.append(("b", env.now))

        def consumer(env, store):
            yield env.timeout(4.0)
            item = yield store.get()
            log.append((item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("a", 0.0) in log
        assert ("b", 4.0) in log

    def test_get_nowait_empty_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env).get_nowait()

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)
        store.put_nowait(1)
        store.put_nowait(2)
        assert len(store) == 2
        assert store.items == [1, 2]

    def test_cancel_get_prevents_item_theft(self):
        env = Environment()
        store = Store(env)
        # First getter is abandoned (like a timed-out receive).
        abandoned = store.get()
        store.cancel_get(abandoned)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append(item)

        env.process(consumer(env, store))
        store.put_nowait("message")
        env.run()
        assert got == ["message"]
        assert not abandoned.triggered

    def test_cancel_satisfied_get_is_noop(self):
        env = Environment()
        store = Store(env)
        store.put_nowait("x")
        get = store.get()
        assert get.triggered
        store.cancel_get(get)  # must not raise

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestPriorityStore:
    def test_get_returns_smallest(self):
        env = Environment()
        store = PriorityStore(env)
        for value in (5, 1, 3):
            store.put_nowait(value)
        got = []

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(consumer(env, store))
        env.run()
        assert got == [1, 3, 5]

    def test_items_sorted(self):
        env = Environment()
        store = PriorityStore(env)
        for value in (2, 9, 4):
            store.put_nowait(value)
        assert store.items == [2, 4, 9]

    def test_tuple_priorities(self):
        env = Environment()
        store = PriorityStore(env)
        store.put_nowait((2.0, 1, "late"))
        store.put_nowait((1.0, 2, "early"))
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append(item[2])

        env.process(consumer(env, store))
        env.run()
        assert got == ["early"]


class TestResource:
    def test_capacity_one_serialises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, tag, hold):
            req = res.request()
            yield req
            log.append((tag, "in", env.now))
            yield env.timeout(hold)
            res.release(req)
            log.append((tag, "out", env.now))

        env.process(user(env, res, "a", 2.0))
        env.process(user(env, res, "b", 1.0))
        env.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 3.0),
        ]

    def test_counts(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        assert res.count == 2
        assert res.queue_length == 1
        res.release(r1)
        assert res.count == 2  # r3 was granted
        assert res.queue_length == 0
        res.release(r2)
        res.release(r3)
        assert res.count == 0

    def test_release_unheld_raises(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release(env.event())

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.cancel(r2)
        res.release(r1)
        assert res.count == 0
        assert not r2.triggered

    def test_cancel_granted_raises(self):
        env = Environment()
        res = Resource(env)
        r1 = res.request()
        with pytest.raises(SimulationError):
            res.cancel(r1)

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
