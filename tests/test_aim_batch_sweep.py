"""The vectorised AIM trajectory sweep against its scalar reference.

Two contracts:

* **Exact mode** (``pose_quant=0``): :meth:`AimIM.simulate_cells`
  falls back to the scalar sweep — the very loop the seed shipped.
* **Coarse mode** (the default): the batched sweep's
  :class:`TileFootprint` must claim a *superset* of the exact sweep's
  cells for every request (snapping poses may only grow the footprint,
  never shrink it — shrinking would under-reserve and break AIM's
  safety argument), over the same time-slot span.
"""

import math

import numpy as np
import pytest

from repro.core import make_im
from repro.core.aim import AimConfig, AimIM, _PoseTable
from repro.des import Environment
from repro.geometry import IntersectionGeometry, TileFootprint
from repro.network.channel import Channel
from repro.vehicle import VehicleSpec


class FakeInfo:
    def __init__(self, movement, spec, buffer):
        self.movement = movement
        self.spec = spec
        self.buffer = buffer
        self.vehicle_id = 0


def make_aim(**aim_kwargs):
    env = Environment()
    channel = Channel(env)
    geometry = IntersectionGeometry()
    return (
        make_im("aim", env, channel, geometry, aim_config=AimConfig(**aim_kwargs)),
        geometry,
    )


def random_requests(geometry, rng, count):
    spec = VehicleSpec()
    movements = geometry.movements
    for _ in range(count):
        movement = movements[int(rng.integers(len(movements)))]
        info = FakeInfo(movement, spec, float(rng.choice([0.0, 0.075, 0.15])))
        accelerate = bool(rng.integers(2))
        yield dict(
            info=info,
            toa=float(rng.uniform(0.2, 18.0)),
            vc=float(rng.uniform(0.15, 1.5)),
            accelerate=accelerate,
            standoff=float(rng.uniform(0.0, 0.3)) if accelerate else 0.0,
        )


class TestExactMode:
    def test_pose_quant_zero_restores_scalar_sweep(self):
        im, geometry = make_aim(pose_quant=0)
        rng = np.random.default_rng(3)
        for req in random_requests(geometry, rng, 40):
            cells = im.simulate_cells(**req)
            assert isinstance(cells, set)
            assert cells == im._simulate_cells_scalar(**req)

    def test_pose_quant_none_also_exact(self):
        im, _ = make_aim(pose_quant=None)
        assert isinstance(
            im.simulate_cells(
                FakeInfo(im.geometry.movements[0], VehicleSpec(), 0.075),
                toa=1.0, vc=0.5, accelerate=False,
            ),
            set,
        )

    def test_negative_pose_quant_rejected(self):
        with pytest.raises(ValueError):
            AimConfig(pose_quant=-0.1)


class TestCoarseSuperset:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_batch_footprint_superset_of_scalar(self, seed):
        im, geometry = make_aim()  # default pose_quant=0.75
        rng = np.random.default_rng(seed)
        growths = []
        for req in random_requests(geometry, rng, 60):
            exact = im._simulate_cells_scalar(**req)
            coarse = im.simulate_cells(**req)
            assert isinstance(coarse, TileFootprint)
            coarse_cells = coarse.cells()
            missing = exact - coarse_cells
            assert not missing, (req["info"].movement.key, sorted(missing)[:4])
            growths.append(len(coarse_cells) / max(len(exact), 1))
        # Conservative, but not absurdly so: the padding costs a
        # bounded fraction of extra cells, not multiples.
        assert np.mean(growths) < 1.6

    def test_same_slot_span_as_scalar(self):
        """Snapping quantises poses, never timestamps."""
        im, geometry = make_aim()
        rng = np.random.default_rng(21)
        for req in random_requests(geometry, rng, 30):
            exact = im._simulate_cells_scalar(**req)
            coarse = im.simulate_cells(**req)
            exact_slots = {slot for _, slot in exact}
            coarse_slots = {slot for _, slot in coarse.cells()}
            assert exact_slots == coarse_slots

    def test_footprint_usable_by_reservations(self):
        im, geometry = make_aim()
        info = FakeInfo(geometry.movements[0], VehicleSpec(), 0.075)
        fp = im.simulate_cells(info, toa=1.0, vc=0.5, accelerate=False)
        res = im.reservations
        assert not res.conflicts(fp, vehicle_id=1)
        res.commit(fp, vehicle_id=1)
        assert res.claim_count == fp.cell_count
        assert res.conflicts(fp, vehicle_id=2)
        assert res.release(1) == fp.cell_count


class TestPoseTable:
    def test_snap_error_bounded(self):
        geometry = IntersectionGeometry()
        path = geometry.path(geometry.movements[0])
        quant = 0.0375
        table = _PoseTable(path, quant)
        positions = np.linspace(0.0, path.length, 533)
        idx = table.snap(positions)
        snapped = np.minimum(idx * quant, path.length)
        assert np.all(np.abs(positions - snapped) <= quant / 2 + 1e-12)

    def test_straight_path_has_negligible_heading_deviation(self):
        geometry = IntersectionGeometry()
        from repro.geometry import Approach, Movement, Turn

        path = geometry.path(Movement(Approach.SOUTH, Turn.STRAIGHT))
        table = _PoseTable(path, 0.0375)
        # linspace rounding perturbs the polyline deltas by ~1 ulp, so
        # the bound is float noise rather than an exact zero.
        assert table.dtheta_max < 1e-12

    def test_turn_path_heading_deviation_small_but_positive(self):
        geometry = IntersectionGeometry()
        from repro.geometry import Approach, Movement, Turn

        path = geometry.path(Movement(Approach.SOUTH, Turn.LEFT))
        table = _PoseTable(path, 0.0375)
        # A quant/2 = 18.75 mm window on a 0.75 m-radius arc subtends
        # ~2.9 deg; the piecewise-constant-heading bound sits near it.
        assert 0.0 < table.dtheta_max < math.radians(8.0)

    def test_tables_cached_per_movement(self):
        im, geometry = make_aim()
        info = FakeInfo(geometry.movements[0], VehicleSpec(), 0.075)
        im.simulate_cells(info, toa=1.0, vc=0.5, accelerate=False)
        table = im._pose_tables[info.movement]
        im.simulate_cells(info, toa=2.0, vc=0.7, accelerate=False)
        assert im._pose_tables[info.movement] is table
