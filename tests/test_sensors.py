"""Tests for sensor models, the plant, fusion and buffer sizing (Ch 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors import (
    BufferBreakdown,
    EncoderModel,
    ErrorExperimentConfig,
    GpsModel,
    ImuModel,
    LongitudinalKalman,
    LongitudinalPlant,
    PlantConfig,
    SafetyBufferCalculator,
    run_error_experiment,
    worst_case_elong,
)


class TestEncoder:
    def test_quantisation(self):
        enc = EncoderModel(counts_per_metre=100.0, sample_interval=0.1, slip_noise_std=0.0)
        # Resolution = 1/(100*0.1) = 0.1 m/s.
        assert enc.velocity_resolution == pytest.approx(0.1)
        rng = np.random.default_rng(0)
        assert enc.measure(0.24, rng) == pytest.approx(0.2)
        assert enc.measure(0.26, rng) == pytest.approx(0.3)

    def test_zero_velocity(self):
        enc = EncoderModel()
        assert enc.measure(0.0, np.random.default_rng(0)) == 0.0

    def test_slip_noise_statistics(self):
        enc = EncoderModel(slip_noise_std=0.05)
        rng = np.random.default_rng(1)
        samples = [enc.measure(3.0, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(3.0, abs=0.05)
        assert np.std(samples) > 0.05

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EncoderModel(counts_per_metre=-1)
        with pytest.raises(ValueError):
            EncoderModel(sample_interval=0)


class TestGpsImu:
    def test_gps_unbiased(self):
        gps = GpsModel(sigma_long=0.01, sigma_lat=0.02)
        rng = np.random.default_rng(2)
        fixes = [gps.measure(5.0, -2.0, rng) for _ in range(500)]
        longs, lats = zip(*fixes)
        assert np.mean(longs) == pytest.approx(5.0, abs=0.005)
        assert np.mean(lats) == pytest.approx(-2.0, abs=0.01)

    def test_imu_bias(self):
        imu = ImuModel(bias=0.1, sigma=0.0)
        assert imu.measure(1.0) == pytest.approx(1.1)


class TestPlant:
    def test_tracks_constant_command(self):
        plant = LongitudinalPlant(PlantConfig(accel_noise_std=0.0), velocity=0.0)
        for _ in range(200):
            plant.step(2.0, 0.01)
        assert plant.velocity == pytest.approx(2.0, abs=0.05)

    def test_acceleration_limited(self):
        cfg = PlantConfig(a_max=3.0, accel_noise_std=0.0, tau=1e-3)
        plant = LongitudinalPlant(cfg, velocity=0.0)
        plant.step(3.0, 0.1)
        assert plant.velocity <= 0.3 + 1e-6

    def test_velocity_never_negative(self):
        plant = LongitudinalPlant(PlantConfig(), velocity=0.5, rng=np.random.default_rng(0))
        for _ in range(500):
            plant.step(0.0, 0.02)
            assert plant.velocity >= 0.0

    def test_brake_hold_prevents_creep(self):
        """A commanded stop must not random-walk the vehicle forward."""
        plant = LongitudinalPlant(PlantConfig(), velocity=2.0, rng=np.random.default_rng(7))
        for _ in range(100):
            plant.step(0.0, 0.02)
        parked = plant.position
        for _ in range(50_000):  # 1000 simulated seconds
            plant.step(0.0, 0.02)
        assert plant.position - parked < 0.01

    def test_odometry_error_bound_accrues_while_moving(self):
        """Half an encoder count per moving sample, nothing at rest."""
        cfg = PlantConfig(accel_noise_std=0.0)
        plant = LongitudinalPlant(cfg, velocity=1.0, rng=np.random.default_rng(0))
        assert plant.odometry_error_bound == 0.0
        for _ in range(100):
            plant.step(1.0, 0.02)
        expected = 0.5 * cfg.encoder.velocity_resolution * 2.0
        assert plant.odometry_error_bound == pytest.approx(expected)

    def test_odometry_error_bound_frozen_at_rest(self):
        plant = LongitudinalPlant(
            PlantConfig(), velocity=1.0, rng=np.random.default_rng(3)
        )
        for _ in range(200):  # brake to a dead stop
            plant.step(0.0, 0.02)
        assert plant.velocity == 0.0
        frozen = plant.odometry_error_bound
        for _ in range(500):
            plant.step(0.0, 0.02)
        assert plant.odometry_error_bound == frozen

    def test_odometry_error_bound_ideal_and_reset(self):
        ideal = LongitudinalPlant(PlantConfig(), velocity=1.0, ideal=True)
        for _ in range(100):
            ideal.step(1.0, 0.02)
        assert ideal.odometry_error_bound == 0.0
        noisy = LongitudinalPlant(
            PlantConfig(), velocity=1.0, rng=np.random.default_rng(5)
        )
        noisy.step(1.0, 0.02)
        assert noisy.odometry_error_bound > 0.0
        noisy.reset()
        assert noisy.odometry_error_bound == 0.0

    def test_odometry_bound_covers_actual_drift(self):
        """The bound dominates the true |measured - actual| drift on a
        worst-case crawl (speed parked on a count boundary)."""
        cfg = PlantConfig(accel_noise_std=0.0)
        # 0.15 m/s sits exactly between the 0.14/0.16 count levels.
        plant = LongitudinalPlant(cfg, velocity=0.15, rng=np.random.default_rng(9))
        for _ in range(500):  # 10 s of creep
            plant.step(0.15, 0.02)
        drift = abs(plant.measured_position() - plant.position)
        assert drift <= plant.odometry_error_bound + 1e-9

    def test_ideal_mode_is_exact(self):
        plant = LongitudinalPlant(PlantConfig(), velocity=1.0, ideal=True)
        for _ in range(100):
            plant.step(1.0, 0.01)
        assert plant.position == pytest.approx(1.0, abs=1e-9)
        assert plant.measured_velocity() == plant.velocity

    def test_odometry_tracks_position_roughly(self):
        plant = LongitudinalPlant(PlantConfig(), velocity=2.0, rng=np.random.default_rng(3))
        for _ in range(500):
            plant.step(2.0, 0.02)
        assert plant.measured_position() == pytest.approx(plant.position, abs=0.3)

    def test_reset(self):
        plant = LongitudinalPlant(PlantConfig(), velocity=2.0)
        plant.step(2.0, 0.1)
        plant.reset(position=1.0, velocity=0.5)
        assert plant.position == 1.0
        assert plant.velocity == 0.5
        assert plant.time == 0.0


class TestKalman:
    def test_converges_on_constant_velocity(self):
        kf = LongitudinalKalman(position=0.0, velocity=0.0)
        rng = np.random.default_rng(4)
        true_v = 2.0
        pos = 0.0
        for _ in range(300):
            kf.predict(0.02)
            pos += true_v * 0.02
            kf.update_velocity(true_v + rng.normal(0, 0.02))
            kf.update_position(pos + rng.normal(0, 0.02))
        est = kf.estimate
        assert est.velocity == pytest.approx(true_v, abs=0.05)
        assert est.position == pytest.approx(pos, abs=0.05)

    def test_uncertainty_grows_without_updates(self):
        kf = LongitudinalKalman()
        kf.predict(0.02)
        var0 = kf.estimate.var_position
        for _ in range(100):
            kf.predict(0.02)
        assert kf.estimate.var_position > var0

    def test_position_bound_positive(self):
        kf = LongitudinalKalman()
        kf.predict(1.0)
        assert kf.estimate.position_bound > 0

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            LongitudinalKalman(q_accel=-1.0)


class TestErrorExperiment:
    def test_ideal_profile_position(self):
        cfg = ErrorExperimentConfig(v0=0.1, v1=3.0, hold1=1.0, hold2=1.0, ramp_accel=3.0)
        # 0.1*1 + 0.5*(0.1+3.0)*(2.9/3) + 3.0*1
        expected = 0.1 + 0.5 * 3.1 * (2.9 / 3.0) + 3.0
        assert cfg.ideal_final_position() == pytest.approx(expected)

    def test_command_profile_shape(self):
        cfg = ErrorExperimentConfig(v0=1.0, v1=2.0)
        assert cfg.command_at(0.0) == 1.0
        assert cfg.command_at(cfg.hold1 + cfg.ramp_duration / 2) == pytest.approx(1.5)
        assert cfg.command_at(cfg.total_duration) == 2.0

    def test_experiment_reproducible(self):
        cfg = ErrorExperimentConfig(trials=5)
        a = run_error_experiment(cfg, np.random.default_rng(9))
        b = run_error_experiment(cfg, np.random.default_rng(9))
        assert a.elongs == pytest.approx(b.elongs)

    def test_accelerating_profile_positive_error(self):
        """Tracking lag makes the real car fall short when speeding up."""
        result = run_error_experiment(
            ErrorExperimentConfig(v0=0.1, v1=3.0, trials=10),
            np.random.default_rng(11),
        )
        assert result.mean_elong > 0

    def test_decelerating_profile_negative_error(self):
        result = run_error_experiment(
            ErrorExperimentConfig(v0=3.0, v1=0.1, trials=10),
            np.random.default_rng(11),
        )
        assert result.mean_elong < 0

    def test_worst_case_in_testbed_range(self):
        """The calibrated plant lands near the paper's +-75 mm."""
        bound, up, down = worst_case_elong(trials=20, rng=np.random.default_rng(2017))
        assert 0.03 < bound < 0.15

    @given(st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_trial_count_respected(self, trials):
        result = run_error_experiment(
            ErrorExperimentConfig(trials=trials), np.random.default_rng(0)
        )
        assert len(result.trials) == trials


class TestBufferCalculator:
    def test_paper_numbers(self):
        calc = SafetyBufferCalculator(
            elong=0.075, sync_error=1e-3, wc_rtd=0.150, v_max=3.0
        )
        b = calc.breakdown()
        assert b.sensing == pytest.approx(0.075)
        assert b.sync == pytest.approx(0.003)   # Ch 3.2
        assert b.base == pytest.approx(0.078)   # Ch 3.2 total
        assert b.rtd == pytest.approx(0.45)     # Ch 4 (0.45 m, typo-fixed)
        assert b.total == pytest.approx(0.528)

    def test_policy_buffers(self):
        calc = SafetyBufferCalculator()
        assert calc.for_policy("vt-im") > calc.for_policy("crossroads")
        assert calc.for_policy("aim") == calc.for_policy("crossroads")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            SafetyBufferCalculator().for_policy("magic")

    def test_breakdown_is_frozen(self):
        b = BufferBreakdown(sensing=0.1, sync=0.0, rtd=0.0)
        with pytest.raises(Exception):
            b.sensing = 0.2
