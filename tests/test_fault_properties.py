"""Property-based safety under fault injection (ISSUE 2 satellites a/b/d).

The claim under test: **no fault regime the injector can produce ever
violates a safety invariant** — the protocols degrade (waits grow,
vehicles stop, reservations get invalidated) but never collide and
never execute a command past its deadline.

Three invariant families are pinned:

* *ground truth*: zero body collisions (``geometry/collision.py``
  overlap test, sampled by the world's safety monitor) and every
  vehicle eventually finishes;
* *no stale execution*: ``SimResult.min_command_margin >= 0`` — every
  executed command still had its deadline (TE / ToA / WC-RTD bound)
  ahead of the local clock.  The margin is recorded by the vehicles at
  execution time, so the assertion is machine-checked, not vacuous;
* *no tile double-claim*: ``TileReservations.commit`` raises on
  conflicting cells, so any double-claim would crash the AIM run
  before the assertion is even reached.

Every assertion message carries the ``(policy, seed)`` pair so a
failing draw can be replayed exactly::

    python -c "from tests.test_fault_properties import replay; replay('aim', 123)"

The replay path is the scenario DSL: a matrix cell *is*
``repro.scenarios.random_fault_spec(policy, seed)`` run through
``run_spec`` with the safety oracle attached
(``TestDslPromotion`` pins this form bit-identical to the historical
imperative construction, so promoting the workload changed nothing).
A failing cell can therefore also be serialised —
``random_fault_spec(policy, seed).to_json(path)`` — and handed to
``repro fuzz --replay``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig, random_fault_config
from repro.scenarios import random_fault_spec, run_spec
from repro.sim import run_scenario
from repro.sim.replication import run_replicated
from repro.sim.world import World, WorldConfig
from repro.traffic import PoissonTraffic

POLICIES = ("vt-im", "crossroads", "aim")

#: The fault-matrix seeds CI sweeps (3 seeds x 3 policies).
MATRIX_SEEDS = (101, 202, 303)


def _workload(seed, n=8, flow=0.4):
    return PoissonTraffic(flow, seed=seed).generate(n)


def _fault_config(seed):
    """Deterministic 'random' fault regime for a given seed."""
    return random_fault_config(np.random.default_rng(seed), horizon=20.0)


def _check_invariants(result, policy, seed, n):
    tag = f"policy={policy} seed={seed} (replay: replay({policy!r}, {seed}))"
    assert result.collisions == 0, f"collision under faults: {tag}"
    assert result.n_finished == n, (
        f"only {result.n_finished}/{n} finished: {tag}"
    )
    margin = result.min_command_margin
    assert margin >= 0.0, f"command executed past deadline ({margin}): {tag}"


def replay(policy, seed, n=8, flow=0.4):
    """Re-run one (policy, seed) matrix cell exactly via the scenario
    DSL; returns the SimResult."""
    outcome = run_spec(random_fault_spec(policy, seed, n=n, flow=flow))
    _check_invariants(outcome.result, policy, seed, n)
    # The oracle sees what the metrics cannot: the scheduler's book.
    # Double-booked reservations are a protocol bug under *any* regime.
    assert "reservation_overlap" not in outcome.kinds, (
        f"double-booked reservations: policy={policy} seed={seed}: "
        + "; ".join(str(v) for v in outcome.violations)
    )
    return outcome.result


class TestDslPromotion:
    """Satellite: the fault-matrix workload was promoted into the
    scenario DSL — this pins the promoted form bit-identical to the
    historical imperative construction, per policy."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_spec_form_matches_imperative_form(self, policy):
        seed = 101
        via_dsl = run_spec(random_fault_spec(policy, seed))
        legacy = run_scenario(
            policy,
            _workload(seed),
            config=WorldConfig(faults=_fault_config(seed)),
            seed=seed,
        )
        assert via_dsl.result.summary() == legacy.summary()
        assert via_dsl.result.fault_injections == legacy.fault_injections

    def test_matrix_cells_replay_clean_under_the_oracle(self):
        """The pinned CI cells carry no oracle violations at all (the
        wider hypothesis sweep asserts only the hard invariants)."""
        for policy in POLICIES:
            for seed in MATRIX_SEEDS:
                outcome = run_spec(random_fault_spec(policy, seed))
                assert outcome.kinds == set(), (
                    f"policy={policy} seed={seed}: "
                    + "; ".join(str(v) for v in outcome.violations)
                )


@pytest.mark.faults
class TestFaultMatrix:
    """3 seeds x 3 policies under seed-derived random fault regimes
    (the CI fault-matrix job runs exactly this class)."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_safety_invariants_hold(self, policy, seed):
        replay(policy, seed)


class TestRandomFaultSchedules:
    """Hypothesis-driven: any seed's fault regime is survivable."""

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_crossroads_survives_any_regime(self, seed):
        replay("crossroads", seed, n=6)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_vtim_survives_any_regime(self, seed):
        replay("vt-im", seed, n=6)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_aim_survives_any_regime(self, seed):
        replay("aim", seed, n=6)


class TestDifferentialRegression:
    """Satellite (b): a *null* fault config is bit-identical to the
    fault-free path — the injector's private RNG guarantees attaching
    it consumes no channel randomness."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_null_faults_bit_identical(self, policy):
        arrivals = _workload(17, n=6)
        plain = run_scenario(policy, arrivals, seed=17)
        nulled = run_scenario(
            policy, arrivals, config=WorldConfig(faults=FaultConfig()), seed=17
        )
        assert plain.summary() == nulled.summary()
        assert nulled.fault_injections == {}
        assert plain.losses_by_reason == nulled.losses_by_reason


class TestReplayDeterminism:
    """Satellite (d): same seed + same FaultSchedule => identical fault
    event trace and metrics, serially and across worker counts."""

    def _run_world(self, policy="crossroads", seed=23):
        world = World(
            policy,
            _workload(seed, n=6),
            config=WorldConfig(faults=FaultConfig.from_spec("chaos,blackout=2:4")),
            seed=seed,
        )
        result = world.run()
        return world, result

    def test_identical_trace_and_metrics(self):
        world_a, result_a = self._run_world()
        world_b, result_b = self._run_world()
        trace_a, trace_b = world_a.faults.events, world_b.faults.events
        # Message seqs come from a process-global counter, so normalise
        # them to ranks before comparing the two runs' traces.
        def normalise(trace):
            order = {s: i for i, s in enumerate(sorted({s for _, _, s in trace}))}
            return [(t, kind, order[s]) for t, kind, s in trace]

        assert [(t, k) for t, k, _ in trace_a] == [(t, k) for t, k, _ in trace_b]
        assert normalise(trace_a) == normalise(trace_b)
        assert world_a.faults.snapshot() == world_b.faults.snapshot()
        assert result_a.summary() == result_b.summary()

    def test_parallel_matches_serial(self):
        """--jobs 1 and --jobs 2 see the same per-seed summaries."""
        arrivals = _workload(29, n=6)
        config = WorldConfig(faults=FaultConfig.from_spec("burst,spike"))
        serial = run_replicated(
            "crossroads", arrivals, seeds=(1, 2), config=config, jobs=1
        )
        parallel = run_replicated(
            "crossroads", arrivals, seeds=(1, 2), config=config, jobs=2
        )
        assert [r.summary() for r in serial.results] == [
            r.summary() for r in parallel.results
        ]


@pytest.mark.faults_heavy
class TestHeavyDemo:
    """The ISSUE 2 acceptance demo: 200 vehicles per policy under a
    burst-loss + delay-spike schedule, zero safety violations.

    Opt-in (slow: ~1 min wall): ``-m faults_heavy`` or
    ``REPRO_FAULTS_HEAVY=1``.  The exact (flow, seed) pair is listed in
    EXPERIMENTS.md as the replayable reference run.
    """

    FLOW = 0.3
    CARS = 200
    SEED = 2017
    SPEC = "burst=0.02:0.25:0.9,spike=0.05:0.05:0.30,blackout=30:33"

    @pytest.mark.parametrize("policy", POLICIES)
    def test_200_vehicles_zero_violations(self, policy):
        arrivals = PoissonTraffic(self.FLOW, seed=self.SEED).generate(self.CARS)
        result = run_scenario(
            policy,
            arrivals,
            config=WorldConfig(faults=FaultConfig.from_spec(self.SPEC)),
            seed=self.SEED,
        )
        _check_invariants(result, policy, self.SEED, self.CARS)
        # The run was genuinely faulted, not a no-op.
        assert sum(result.fault_injections.values()) > 0
        assert result.retries > 0


class TestSpanReconstruction:
    """ISSUE 4 satellite: exchange spans reconstruct sanely under
    faults — dropped replies leave *incomplete/retried* spans (never a
    crash), duplicated replies are folded at most once (no
    double-counted latency), and tracing a faulted run never changes
    its scientific summary."""

    BURST = "burst=0.05:0.2:0.9"
    DUP = "dup=0.2:0.01"

    def _traced(self, spec, policy="crossroads", seed=29, n=8):
        from repro.obs import EventLog, build_spans

        log = EventLog()
        result = run_scenario(
            policy,
            _workload(seed, n=n),
            config=WorldConfig(faults=FaultConfig.from_spec(spec)),
            seed=seed,
            obs=log,
        )
        return result, build_spans(log.events)

    def test_dropped_replies_leave_incomplete_spans(self):
        result, spans = self._traced(self.BURST)
        assert result.retries > 0, "regime produced no retries; bump spec"
        retried = [s for s in spans if s.retried]
        assert retried, "no span carries the timeout flag"
        for span in retried:
            # A timed-out exchange never also folds a reply: the
            # retransmission opened a fresh correlation id.
            assert span.replies == 0
            assert span.rtd is None
        # Loop-level accounting and span-level accounting agree.
        assert len(retried) == result.perf[
            "count.machine.request_loop.timeouts"
        ]
        assert result.obs["spans_retried"] == float(len(retried))

    def test_no_double_counted_latency(self):
        for spec in (self.BURST, self.DUP):
            result, spans = self._traced(spec)
            # Receiver-side dedup bounds every span at one reply, so
            # each exchange contributes at most one RTD sample.
            assert all(s.replies <= 1 for s in spans), spec
            with_rtd = [s for s in spans if s.rtd is not None]
            assert len(with_rtd) == sum(1 for s in spans if s.complete)
            assert result.obs["spans_complete"] == float(len(with_rtd))

    def test_duplicated_replies_are_suppressed(self):
        result, spans = self._traced(self.DUP)
        assert result.duplicates_dropped > 0, "regime produced no dups"
        assert all(s.replies <= 1 for s in spans)
        # The suppressed copies are visible as net.drop attributions.
        dropped_dup = [s for s in spans if "duplicate" in s.drops]
        assert dropped_dup

    @pytest.mark.parametrize("policy", POLICIES)
    def test_tracing_faulted_run_is_bit_identical(self, policy):
        from repro.obs import EventLog

        arrivals = _workload(29, n=6)
        config = WorldConfig(faults=FaultConfig.from_spec("burst,spike"))
        plain = run_scenario(policy, arrivals, config=config, seed=29)
        traced = run_scenario(
            policy, arrivals, config=config, seed=29, obs=EventLog()
        )
        assert plain.summary() == traced.summary()

    def test_ring_buffer_survives_fault_storm(self):
        """A tiny capacity under heavy faults evicts events mid-span;
        reconstruction must stay well-defined (orphans fold into
        incomplete spans, no crash)."""
        from repro.obs import EventLog, build_spans, span_stats

        log = EventLog(capacity=64)
        result = run_scenario(
            "crossroads",
            _workload(29, n=8),
            config=WorldConfig(faults=FaultConfig.from_spec(self.BURST)),
            seed=29,
            obs=log,
        )
        assert log.dropped > 0, "capacity too large to exercise eviction"
        stats = span_stats(build_spans(log.events))
        assert stats["spans_total"] >= 1.0
        assert result.collisions == 0
