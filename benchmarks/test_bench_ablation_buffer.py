"""A1 — ablation: what does buffer size alone cost?

DESIGN.md calls out the paper's central causal claim: the RTD buffer —
not anything else about the VT protocol — is what destroys VT-IM's
throughput.  This ablation runs *Crossroads* (identical protocol,
scheduler and traffic) with an artificially inflated base buffer from
the sensing value (78 mm) up to the full VT-IM value (528 mm) and
watches throughput fall.
"""

import pytest

from conftest import N_CARS, banner
from repro.analysis import render_table
from repro.core.base import IMConfig
from repro.sim import WorldConfig, run_scenario
from repro.traffic import PoissonTraffic

BUFFERS = (0.078, 0.228, 0.378, 0.528)
FLOW = 0.6


def run_with_buffer(buffer: float):
    arrivals = PoissonTraffic(FLOW, seed=7 + int(FLOW * 1000)).generate(N_CARS)
    config = WorldConfig(im=IMConfig(base_buffer=buffer))
    return run_scenario("crossroads", arrivals, config=config, seed=7)


def campaign():
    return {buffer: run_with_buffer(buffer) for buffer in BUFFERS}


def test_ablation_buffer_size(benchmark):
    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    rows = [
        [f"{buffer * 1000:.0f} mm", r.throughput, r.average_delay, r.collisions]
        for buffer, r in results.items()
    ]
    print(banner(f"Ablation - buffer size vs throughput (flow {FLOW})"))
    print(render_table(
        ["buffer", "throughput", "avg delay (s)", "collisions"], rows, precision=3
    ))

    throughputs = [results[b].throughput for b in BUFFERS]
    # Bigger buffer, lower throughput: the paper's causal story.  Allow
    # small non-monotonic noise between adjacent steps but require a
    # clear end-to-end drop.
    assert throughputs[-1] < 0.8 * throughputs[0]
    # Everyone still crosses safely regardless of buffer size.
    for r in results.values():
        assert r.collisions == 0
        assert r.n_finished == N_CARS
