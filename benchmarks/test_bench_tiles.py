"""Tile-sweep microbenchmark (opt-in: ``-m perf``).

The AIM trajectory sweep is the canonical hot path of the paper's
overhead story (Ch 7.2: AIM's re-simulation costs 16-20x Crossroads').
This bench replays a Fig 7.2-style AIM request workload — every
movement, mixed constant-speed and launch proposals — through

* the **scalar exact sweep** (pose-at-a-time windowed rasterisation,
  the seed hot path, kept as ``AimIM._simulate_cells_scalar``), and
* the **batched coarse sweep** (quantised pose tables + one vectorised
  rasterisation pass + packed bitmap footprints, the default),

on fresh caches each, and records wall clocks, the measured speedup
and the footprint-cache hit rates in ``BENCH_tiles.json``.

Unlike the parallel bench this is single-process compute, so the
speedup is asserted on every box: the batched sweep must be >= 5x the
scalar one.  Set ``REPRO_BENCH_DIR`` to redirect the JSON artefact.
"""

import json
import os
import time

import numpy as np
import pytest

from conftest import banner
from repro.core import make_im
from repro.des import Environment
from repro.geometry import IntersectionGeometry
from repro.network.channel import Channel
from repro.vehicle import VehicleSpec

pytestmark = pytest.mark.perf

N_REQUESTS = 600
SEED = 7


class _Info:
    def __init__(self, movement, spec, buffer):
        self.movement = movement
        self.spec = spec
        self.buffer = buffer
        self.vehicle_id = 0


def _make_aim():
    env = Environment()
    channel = Channel(env)
    geometry = IntersectionGeometry()
    return make_im("aim", env, channel, geometry), geometry


def _workload(geometry):
    """A Fig 7.2-shaped AIM request mix: all 12 movements, speeds
    across the feasible band, constant-speed and launch proposals."""
    spec = VehicleSpec()
    rng = np.random.default_rng(SEED)
    movements = geometry.movements
    requests = []
    for _ in range(N_REQUESTS):
        movement = movements[int(rng.integers(len(movements)))]
        accelerate = bool(rng.integers(2))
        requests.append(dict(
            info=_Info(movement, spec, 0.075),
            toa=float(rng.uniform(0.2, 18.0)),
            vc=float(rng.uniform(0.15, 1.5)),
            accelerate=accelerate,
            standoff=float(rng.uniform(0.0, 0.3)) if accelerate else 0.0,
        ))
    return requests


def test_tile_sweep_batch_speedup(benchmark):
    im_scalar, geometry = _make_aim()
    requests = _workload(geometry)

    start = time.perf_counter()
    scalar_cells = 0
    for req in requests:
        scalar_cells += len(im_scalar._simulate_cells_scalar(**req))
    scalar_wall = time.perf_counter() - start
    scalar_grid = im_scalar.reservations.grid

    im_batch, _ = _make_aim()
    requests_b = _workload(im_batch.geometry)

    def batch_run():
        total = 0
        for req in requests_b:
            total += len(im_batch.simulate_cells(**req))
        return total

    start = time.perf_counter()
    batch_cells = benchmark.pedantic(batch_run, rounds=1, iterations=1)
    batch_wall = time.perf_counter() - start
    batch_grid = im_batch.reservations.grid

    speedup = scalar_wall / batch_wall if batch_wall > 0 else 0.0
    growth = batch_cells / scalar_cells if scalar_cells else 0.0

    payload = {
        "workload": {"n_requests": N_REQUESTS, "seed": SEED,
                     "movements": len(geometry.movements)},
        "scalar_wall_s": round(scalar_wall, 4),
        "batch_wall_s": round(batch_wall, 4),
        "speedup": round(speedup, 2),
        "scalar_cells": scalar_cells,
        "batch_cells": batch_cells,
        "conservative_cell_growth": round(growth, 3),
        "scalar_cache_hit_rate": round(scalar_grid.cache_hit_rate, 4),
        "batch_cache_hit_rate": round(batch_grid.cache_hit_rate, 4),
        "scalar_cells_tested": scalar_grid.cells_tested,
        "batch_cells_tested": batch_grid.cells_tested,
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_tiles.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    print(banner("AIM tile sweep - batched vs scalar"))
    print(f"{N_REQUESTS} requests | scalar {scalar_wall:.3f} s "
          f"(hit rate {scalar_grid.cache_hit_rate:.1%}) | batch "
          f"{batch_wall:.3f} s (hit rate {batch_grid.cache_hit_rate:.1%})")
    print(f"speedup {speedup:.1f}X | conservative cell growth "
          f"{growth:.2f}X | wrote {out_path}")

    # Single-process compute: assert on every box.
    assert speedup >= 5.0, f"batched sweep only {speedup:.1f}X the scalar one"
    assert batch_grid.cache_hit_rate >= 0.85
    # Conservative but bounded over-approximation.
    assert 1.0 <= growth < 1.6
