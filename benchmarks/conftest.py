"""Shared fixtures and caches for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures and
prints a paper-vs-measured comparison (run pytest with ``-s`` to see
them).  Expensive artefacts (the Fig 7.2 sweep) are computed once per
session and shared.

Scale: by default the benches run a reduced workload (40 cars, 4 flow
rates) so the suite finishes in a few minutes.  Set ``REPRO_FULL=1``
to run the paper's full 160-car, 10-flow grid.

Parallelism: set ``REPRO_JOBS=N`` (or ``auto``) to spread the sweep's
grid cells over a process pool — results are bit-identical to serial.

Benchmarks marked ``@pytest.mark.perf`` (wall-clock speedup studies)
are opt-in: they are skipped unless selected explicitly with
``-m perf`` or forced with ``REPRO_PERF=1``.
"""

import os

import pytest

from repro.sim.flowsweep import run_flow_sweep
from repro.sim.parallel import resolve_jobs

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Worker processes for the session sweep (``REPRO_JOBS``, default serial).
JOBS = resolve_jobs(None)

#: Reduced grid (default) vs the paper's Fig 7.2 grid.
FLOW_RATES = (
    (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0, 1.25)
    if FULL
    else (0.05, 0.1, 0.3, 0.6, 1.0)
)
N_CARS = 160 if FULL else 40
SCENARIO_REPEATS = 10 if FULL else 2

_cache = {}


def get_flow_sweep():
    """The Fig 7.2 grid, computed once and shared by several benches."""
    key = ("sweep", FLOW_RATES, N_CARS)
    if key not in _cache:
        _cache[key] = run_flow_sweep(
            policies=("aim", "vt-im", "crossroads"),
            flow_rates=FLOW_RATES,
            n_cars=N_CARS,
            seed=7,
            jobs=JOBS,
        )
    return _cache[key]


@pytest.fixture(scope="session")
def flow_sweep():
    return get_flow_sweep()


def pytest_collection_modifyitems(config, items):
    """Keep ``perf``-marked benches opt-in (see module docstring)."""
    if config.getoption("-m"):
        return  # the user picked marks explicitly; respect them
    if os.environ.get("REPRO_PERF", "") not in ("", "0"):
        return
    skip_perf = pytest.mark.skip(
        reason="perf bench is opt-in: run with -m perf or REPRO_PERF=1"
    )
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)


def banner(title: str) -> str:
    bar = "=" * max(len(title), 30)
    return f"\n{bar}\n{title}\n{bar}"
