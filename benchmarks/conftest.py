"""Shared fixtures and caches for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures and
prints a paper-vs-measured comparison (run pytest with ``-s`` to see
them).  Expensive artefacts (the Fig 7.2 sweep) are computed once per
session and shared.

Scale: by default the benches run a reduced workload (40 cars, 4 flow
rates) so the suite finishes in a few minutes.  Set ``REPRO_FULL=1``
to run the paper's full 160-car, 10-flow grid.
"""

import os

import pytest

from repro.sim.flowsweep import run_flow_sweep

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Reduced grid (default) vs the paper's Fig 7.2 grid.
FLOW_RATES = (
    (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0, 1.25)
    if FULL
    else (0.05, 0.1, 0.3, 0.6, 1.0)
)
N_CARS = 160 if FULL else 40
SCENARIO_REPEATS = 10 if FULL else 2

_cache = {}


def get_flow_sweep():
    """The Fig 7.2 grid, computed once and shared by several benches."""
    key = ("sweep", FLOW_RATES, N_CARS)
    if key not in _cache:
        _cache[key] = run_flow_sweep(
            policies=("aim", "vt-im", "crossroads"),
            flow_rates=FLOW_RATES,
            n_cars=N_CARS,
            seed=7,
        )
    return _cache[key]


@pytest.fixture(scope="session")
def flow_sweep():
    return get_flow_sweep()


def banner(title: str) -> str:
    bar = "=" * max(len(title), 30)
    return f"\n{bar}\n{title}\n{bar}"
