"""Parallel experiment-engine speedup study (opt-in: ``-m perf``).

Runs a reduced Fig 7.2 grid serially and twice on a 2+-worker process
pool — once *cold* (the first ``map()`` pays the worker spawn) and once
*warm* (the persistent pool is already up, the steady-state cost every
subsequent sweep in a session pays) — asserts the scientific results
are **bit-identical**, and records wall clocks plus the hot-path
``repro.perf`` counters (tile cells tested, footprint-cache hit rate,
DES events) in ``BENCH_parallel.json``.

The footprint-cache hit rate is deterministic (counter-based) and is
asserted everywhere.  Wall-clock speedup depends on hardware: the
recorded number is the *warm* speedup, and the >= 1.5x gate only
applies under ``REPRO_BENCH_STRICT=1`` (set by the CI ``perf-smoke``
job, which runs on multi-core runners — a 1-CPU box physically cannot
speed up).  Set ``REPRO_BENCH_DIR`` to redirect the JSON artefact
(default: CWD).
"""

import json
import os
import time

import pytest

from conftest import banner
import repro.sim.parallel as parallel_mod
from repro.sim.flowsweep import run_flow_sweep
from repro.sim.parallel import resolve_jobs, shutdown_pool

pytestmark = pytest.mark.perf

POLICIES = ("aim", "vt-im", "crossroads")
FLOWS = (0.1, 0.3, 0.6)
N_CARS = 12
SEED = 7

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")


def _summaries(sweep):
    return {
        policy: [point.result.summary() for point in points]
        for policy, points in sweep.items()
    }


def _perf_totals(sweep):
    """Sum every per-run perf counter across the grid."""
    totals = {}
    for points in sweep.values():
        for point in points:
            for name, value in point.result.perf.items():
                if name.startswith("count.") or name.startswith("time."):
                    totals[name] = totals.get(name, 0.0) + value
    return totals


def test_parallel_speedup(benchmark):
    jobs = max(resolve_jobs("auto"), 2)
    kwargs = dict(policies=POLICIES, flow_rates=FLOWS, n_cars=N_CARS,
                  seed=SEED)

    start = time.perf_counter()
    serial = run_flow_sweep(jobs=1, **kwargs)
    serial_wall = time.perf_counter() - start

    # Cold: the first parallel map of the process spawns the pool.
    shutdown_pool()
    spawns_before = parallel_mod.POOL_SPAWNS
    start = time.perf_counter()
    cold = run_flow_sweep(jobs=jobs, **kwargs)
    cold_wall = time.perf_counter() - start

    # Warm: the persistent pool is reused — this is the steady state.
    def parallel_run():
        return run_flow_sweep(jobs=jobs, **kwargs)

    start = time.perf_counter()
    warm = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    warm_wall = time.perf_counter() - start
    pool_spawns = parallel_mod.POOL_SPAWNS - spawns_before

    # The acceptance property: parallel == serial, bit for bit.
    assert _summaries(serial) == _summaries(cold)
    assert _summaries(serial) == _summaries(warm)

    speedup = serial_wall / warm_wall if warm_wall > 0 else 0.0
    cold_speedup = serial_wall / cold_wall if cold_wall > 0 else 0.0
    perf = _perf_totals(serial)
    sim_wall = perf.get("time.sim_run_s", 0.0)
    cells = perf.get("count.tile_cells_tested", 0.0)
    hits = perf.get("count.tile_cache_hits", 0.0)
    misses = perf.get("count.tile_cache_misses", 0.0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    payload = {
        "grid": {"policies": POLICIES, "flow_rates": FLOWS, "n_cars": N_CARS,
                 "seed": SEED},
        "workers": jobs,
        "cpus": os.cpu_count() or 1,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_cold_wall_s": round(cold_wall, 4),
        "parallel_wall_s": round(warm_wall, 4),
        "speedup_cold": round(cold_speedup, 3),
        "speedup": round(speedup, 3),
        "pool_spawns": pool_spawns,
        "bit_identical": True,
        "perf": {
            "des_events": perf.get("count.des_events", 0.0),
            "sim_run_wall_s": round(sim_wall, 4),
            "tile_cells_tested": cells,
            "tile_cache_hits": hits,
            "tile_cache_misses": misses,
            "tile_cache_hit_rate": round(hit_rate, 4),
        },
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_parallel.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    print(banner("Parallel experiment engine - speedup"))
    print(f"grid {len(POLICIES)} policies x {len(FLOWS)} flows x "
          f"{N_CARS} cars | workers {jobs} on {payload['cpus']} cpus")
    print(f"serial {serial_wall:.2f} s | cold {cold_wall:.2f} s "
          f"({cold_speedup:.2f}X) | warm {warm_wall:.2f} s "
          f"({speedup:.2f}X, bit-identical: yes)")
    print(f"tile cells tested {cells:.0f} | footprint-cache hit rate "
          f"{hit_rate:.1%} | DES events {payload['perf']['des_events']:.0f}")
    print(f"wrote {out_path}")

    # Deterministic acceptance: the quantised-pose sweep keeps the
    # footprint cache hot regardless of hardware.
    assert cells > 0
    assert hit_rate >= 0.85
    # The cold map must spawn exactly one pool; the warm map none.
    assert pool_spawns == 1
    if STRICT:
        # CI perf-smoke gate (multi-core runners only).
        assert speedup >= 1.5, f"warm 2-worker speedup {speedup:.2f}X < 1.5X"
    else:
        # Sanity, not a hardware bet: the warm pool must not be
        # pathologically slower than serial even on one core.
        assert speedup > 0.5
