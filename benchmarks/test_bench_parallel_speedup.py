"""Parallel experiment-engine speedup study (opt-in: ``-m perf``).

Runs a reduced Fig 7.2 grid twice — serially and on a 2+-worker
process pool — asserts the scientific results are **bit-identical**,
and records the wall-clock speedup plus the hot-path ``repro.perf``
counters (tile cells tested, footprint-cache hit rate, DES events) in
``BENCH_parallel.json``.

Speedup is *recorded, not asserted as a hard threshold*: CI boxes may
be single-core or oversubscribed, and the acceptance property is
determinism + measured improvement on real hardware.  Set
``REPRO_BENCH_DIR`` to redirect the JSON artefact (default: CWD).
"""

import json
import os
import time

import pytest

from conftest import banner
from repro.sim.flowsweep import run_flow_sweep
from repro.sim.parallel import resolve_jobs

pytestmark = pytest.mark.perf

POLICIES = ("aim", "vt-im", "crossroads")
FLOWS = (0.1, 0.3, 0.6)
N_CARS = 12
SEED = 7


def _summaries(sweep):
    return {
        policy: [point.result.summary() for point in points]
        for policy, points in sweep.items()
    }


def _perf_totals(sweep):
    """Sum every per-run perf counter across the grid."""
    totals = {}
    for points in sweep.values():
        for point in points:
            for name, value in point.result.perf.items():
                if name.startswith("count.") or name.startswith("time."):
                    totals[name] = totals.get(name, 0.0) + value
    return totals


def test_parallel_speedup(benchmark):
    jobs = max(resolve_jobs("auto"), 2)
    kwargs = dict(policies=POLICIES, flow_rates=FLOWS, n_cars=N_CARS,
                  seed=SEED)

    start = time.perf_counter()
    serial = run_flow_sweep(jobs=1, **kwargs)
    serial_wall = time.perf_counter() - start

    def parallel_run():
        return run_flow_sweep(jobs=jobs, **kwargs)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_wall = time.perf_counter() - start

    # The acceptance property: parallel == serial, bit for bit.
    assert _summaries(serial) == _summaries(parallel)

    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    perf = _perf_totals(serial)
    sim_wall = perf.get("time.sim_run_s", 0.0)
    cells = perf.get("count.tile_cells_tested", 0.0)
    hits = perf.get("count.tile_cache_hits", 0.0)
    misses = perf.get("count.tile_cache_misses", 0.0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    payload = {
        "grid": {"policies": POLICIES, "flow_rates": FLOWS, "n_cars": N_CARS,
                 "seed": SEED},
        "workers": jobs,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "perf": {
            "des_events": perf.get("count.des_events", 0.0),
            "sim_run_wall_s": round(sim_wall, 4),
            "tile_cells_tested": cells,
            "tile_cache_hits": hits,
            "tile_cache_misses": misses,
            "tile_cache_hit_rate": round(hit_rate, 4),
        },
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_parallel.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    print(banner("Parallel experiment engine - speedup"))
    print(f"grid {len(POLICIES)} policies x {len(FLOWS)} flows x "
          f"{N_CARS} cars | workers {jobs}")
    print(f"serial {serial_wall:.2f} s | parallel {parallel_wall:.2f} s | "
          f"speedup {speedup:.2f}X (bit-identical: yes)")
    print(f"tile cells tested {cells:.0f} | footprint-cache hit rate "
          f"{hit_rate:.1%} | DES events {payload['perf']['des_events']:.0f}")
    print(f"wrote {out_path}")

    # Sanity, not a hardware bet: the pool must not be pathologically
    # slower than serial, and the hot-path counters must be live.
    assert speedup > 0.5
    assert cells > 0
    assert hit_rate > 0.0
