"""Per-machine protocol telemetry breakdown (the ``repro.obs`` bench).

Runs one traced workload per policy and tabulates the per-machine
counters (``count.machine.*``) that ride on ``SimResult.perf`` next to
the exchange-span latency histogram (``SimResult.obs``): RequestLoop
exchanges/timeouts, TimeSyncSession samples/resamples, DegradationMonitor
entries/degraded time, SequenceGuard admissions/drops, plus RTD and
IM-compute percentiles reconstructed from the event log.

The table makes Ch 7.2's overhead story attributable: AIM's extra
messages show up as RequestLoop exchanges, not as an opaque total.
Writes ``BENCH_obs_machines.json`` (``REPRO_BENCH_DIR`` redirects).
"""

import json
import os

from conftest import banner
from repro.analysis import render_table
from repro.obs import EventLog
from repro.sim.world import run_scenario
from repro.traffic.generator import PoissonTraffic

POLICIES = ("aim", "vt-im", "crossroads")
FLOW = 0.4
N_CARS = 24
SEED = 7

#: (row label, perf key) for the per-machine table.
MACHINE_ROWS = (
    ("request_loop.exchanges", "count.machine.request_loop.exchanges"),
    ("request_loop.timeouts", "count.machine.request_loop.timeouts"),
    ("timesync.samples", "count.machine.timesync.samples"),
    ("timesync.resamples", "count.machine.timesync.resamples"),
    ("degradation.entries", "count.machine.degradation.entries"),
    ("degradation.degraded_s", "count.machine.degradation.degraded_s"),
    ("sequence_guard.admitted", "count.machine.sequence_guard.admitted"),
    ("sequence_guard.drops", "count.machine.sequence_guard.drops"),
)

SPAN_ROWS = (
    ("spans complete", "spans_complete"),
    ("spans incomplete", "spans_incomplete"),
    ("RTD p50 (ms)", "rtd_p50_s"),
    ("RTD p95 (ms)", "rtd_p95_s"),
    ("compute p95 (ms)", "compute_p95_s"),
)


def _traced_results():
    arrivals = PoissonTraffic(FLOW, seed=SEED).generate(N_CARS)
    results = {}
    for policy in POLICIES:
        results[policy] = run_scenario(
            policy, arrivals, seed=SEED, obs=EventLog()
        )
    return results


def test_obs_machine_breakdown(benchmark):
    results = benchmark.pedantic(_traced_results, rounds=1, iterations=1)

    headers = ["machine counter"] + list(POLICIES)
    rows = []
    for label, key in MACHINE_ROWS:
        rows.append(
            [label] + [results[p].perf.get(key, 0.0) for p in POLICIES]
        )
    for label, key in SPAN_ROWS:
        scale = 1000.0 if key.endswith("_s") else 1.0
        rows.append(
            [label] + [results[p].obs.get(key, 0.0) * scale for p in POLICIES]
        )

    print(banner("repro.obs - per-machine telemetry breakdown"))
    print(f"flow {FLOW} veh/s | {N_CARS} cars | seed {SEED} | traced runs")
    print(render_table(headers, rows, precision=2))

    payload = {
        "workload": {"flow": FLOW, "n_cars": N_CARS, "seed": SEED},
        "machines": {
            policy: {
                key: results[policy].perf.get(key, 0.0)
                for _, key in MACHINE_ROWS
            }
            for policy in POLICIES
        },
        "spans": {policy: results[policy].obs for policy in POLICIES},
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_obs_machines.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    for policy in POLICIES:
        result = results[policy]
        # Safety and liveness of the traced runs themselves.
        assert result.safe
        # Every vehicle talked to the IM at least once...
        exchanges = result.perf.get(
            "count.machine.request_loop.exchanges", 0.0
        )
        assert exchanges >= result.n_finished
        # ...and the event log reconstructed complete spans for them.
        assert result.obs.get("spans_complete", 0.0) >= result.n_finished
        assert result.obs.get("rtd_p95_s", 0.0) > 0.0
        # Per-machine counters agree with the summary-level aggregates
        # (two independent accounting paths must tell one story).
        assert result.perf.get(
            "count.machine.degradation.entries", 0.0
        ) == float(result.degraded_entries)

    # The Ch 7.2 overhead story, attributed: AIM's trial-and-error
    # scheme costs more request-loop exchanges than Crossroads.
    assert payload["machines"]["aim"][
        "count.machine.request_loop.exchanges"
    ] > payload["machines"]["crossroads"][
        "count.machine.request_loop.exchanges"
    ]
