"""E3 — Ch 4: worst-case round-trip-delay measurement.

Paper: 10 trials of four simultaneous arrivals (one per approach) give
a worst-case computation delay of 135 ms; the worst network delay is
15 ms round trip; WC-RTD is bounded at 150 ms.

Measured here: the same four-simultaneous-arrival experiment on the
micro-simulator, taking per-vehicle request->response round trips and
the IM's service times.
"""

import numpy as np
import pytest

from conftest import banner
from repro.analysis import render_table
from repro.geometry import Approach, Movement, Turn
from repro.sim import run_scenario
from repro.traffic import Arrival
from repro.vehicle import VehicleSpec


def four_simultaneous(seed: int):
    spec = VehicleSpec()
    arrivals = [
        Arrival(time=0.001 * i, movement=Movement(a, Turn.STRAIGHT), speed=3.0,
                spec=spec)
        for i, a in enumerate(
            (Approach.NORTH, Approach.EAST, Approach.SOUTH, Approach.WEST)
        )
    ]
    return run_scenario("crossroads", arrivals, seed=seed)


def campaign(trials: int = 10):
    worst_rtd = 0.0
    worst_service = 0.0
    for seed in range(trials):
        result = four_simultaneous(seed)
        worst_rtd = max(worst_rtd, result.worst_rtd)
        worst_service = max(worst_service, result.worst_service_time)
    return worst_rtd, worst_service


def test_ch4_wc_rtd(benchmark):
    worst_rtd, worst_service = benchmark.pedantic(campaign, rounds=1, iterations=1)

    print(banner("Ch 4 - worst-case round-trip delay (4 simultaneous arrivals)"))
    print(render_table(
        ["quantity", "measured (ms)", "paper (ms)"],
        [
            ["worst single-request service", worst_service * 1000, "-"],
            ["worst measured RTD", worst_rtd * 1000, "135 (compute) + 15 (net)"],
            ["protocol bound", 150.0, "150"],
        ],
        precision=1,
    ))

    # The measured worst RTD must approach but never exceed the bound
    # the protocol is designed around.
    assert 0.05 < worst_rtd <= 0.150 + 1e-6
    assert worst_service < 0.150


def test_ch4_network_delay_bound(benchmark):
    """Ack-measured network round trips stay under the paper's 15 ms."""
    from repro.des import Environment
    from repro.network import Ack, Channel, Message
    from repro.network import testbed_delay_model as make_testbed_delay

    def measure(n=200):
        rng = np.random.default_rng(5)
        env = Environment()
        channel = Channel(env, delay_model=make_testbed_delay(), rng=rng)
        a = channel.attach("A")
        b = channel.attach("B")
        rtts = []

        def responder(env):
            while True:
                msg = yield b.receive()
                b.send(Ack(sender="B", receiver="A", acked_seq=msg.seq))

        def requester(env):
            for _ in range(n):
                sent = env.now
                a.send(Message(sender="A", receiver="B"))
                yield a.receive()
                rtts.append(env.now - sent)

        env.process(responder(env))
        done = env.process(requester(env))
        env.run(until=done)
        return rtts

    rtts = benchmark.pedantic(measure, rounds=1, iterations=1)
    worst = max(rtts)
    print(banner("Ch 4 - network round-trip (ack-based measurement)"))
    print(f"worst of {len(rtts)} samples: {worst * 1000:.2f} ms (paper: 15 ms)")
    assert worst <= 0.015 + 1e-9
