"""G1 — corridor scaling study: 1-node vs 3-node grids.

Measures how the grid layer scales the single-intersection world to a
corridor: wall-clock vehicles/second, DES events, hand-off counts and
the per-node scheduler/compute split (``SimResult.perf``), and records
everything in ``BENCH_grid.json`` for the CI artefact trail.

Also pins the two scientific properties the corridor rests on:

* the 1-node grid run **is** the single-intersection run (identical
  summary, so the corridor numbers extend the paper reproduction);
* the 3-node corridor completes every trip with zero ground-truth
  collisions.

Wall-clock numbers are *recorded, not asserted*: CI boxes vary.  Set
``REPRO_BENCH_DIR`` to redirect the JSON artefact (default: CWD).
"""

import json
import os
import time

from conftest import banner
from repro.analysis import render_table
from repro.grid import GridPoissonTraffic, GridWorld, corridor_spec
from repro.sim import World
from repro.traffic import PoissonTraffic

POLICY = "crossroads"
N_CARS = 24
FLOW = 0.25
SEED = 11


def _run_nodes(n_nodes):
    spec = corridor_spec(n_nodes, policies=[POLICY] * n_nodes)
    arrivals = GridPoissonTraffic(spec, flow_rate=FLOW,
                                  seed=SEED).generate(N_CARS)
    start = time.perf_counter()
    result = GridWorld(spec, arrivals, seed=SEED).run()
    wall = time.perf_counter() - start
    return result, wall


def _node_row(name, node_result):
    perf = node_result.perf
    return [
        name,
        node_result.n_finished,
        node_result.average_delay,
        node_result.compute_time * 1000.0,
        perf.get("count.machine.request_loop.exchanges", 0.0),
        node_result.messages_sent,
    ]


def test_grid_scaling(benchmark):
    def both():
        return _run_nodes(1), _run_nodes(3)

    (single, single_wall), (corridor, corridor_wall) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    # Property 1: the 1-node grid is the plain world, bit for bit.
    plain = World(
        POLICY, PoissonTraffic(FLOW, seed=SEED).generate(N_CARS), seed=SEED
    ).run()
    assert single.per_node["N0"].summary() == plain.summary()

    # Property 2: the corridor completes safely.
    assert corridor.n_completed == corridor.n_vehicles
    assert corridor.collisions == 0
    assert corridor.safe

    print(banner("G1 - corridor scaling, 1 vs 3 nodes"))
    rows = [_node_row(name, node)
            for name, node in corridor.per_node.items()]
    print(render_table(
        ["node", "served", "avg wait (s)", "IM compute (ms)",
         "proto exchanges", "messages"],
        rows, precision=2,
    ))

    def rate(result, wall):
        return result.n_vehicles / wall if wall > 0 else 0.0

    single_rate = rate(single, single_wall)
    corridor_rate = rate(corridor, corridor_wall)
    print(f"\n1 node:  {single_wall:.3f} s wall, "
          f"{single_rate:.1f} vehicles/s, "
          f"{single.perf.get('count.des_events', 0):.0f} DES events")
    print(f"3 nodes: {corridor_wall:.3f} s wall, "
          f"{corridor_rate:.1f} vehicles/s, "
          f"{corridor.perf.get('count.des_events', 0):.0f} DES events, "
          f"{corridor.handoffs} hand-offs "
          f"({corridor.handoffs_delayed} delayed)")

    payload = {
        "workload": {"policy": POLICY, "n_cars": N_CARS, "flow": FLOW,
                     "seed": SEED},
        "single_node": {
            "wall_s": round(single_wall, 4),
            "vehicles_per_s": round(single_rate, 2),
            "des_events": single.perf.get("count.des_events", 0.0),
            "sim_duration_s": round(single.sim_duration, 3),
            "matches_world": True,
        },
        "corridor_3": {
            "wall_s": round(corridor_wall, 4),
            "vehicles_per_s": round(corridor_rate, 2),
            "des_events": corridor.perf.get("count.des_events", 0.0),
            "sim_duration_s": round(corridor.sim_duration, 3),
            "handoffs": corridor.handoffs,
            "handoffs_delayed": corridor.handoffs_delayed,
            "handoff_wait_s": round(corridor.handoff_wait_s, 4),
            "avg_corridor_time_s": round(corridor.average_corridor_time, 4),
            "per_node": {
                name: {
                    "served": node.n_finished,
                    "avg_wait_s": round(node.average_delay, 4),
                    "im_compute_s": round(node.compute_time, 6),
                    "messages": node.messages_sent,
                    "proto_exchanges": node.perf.get(
                        "count.machine.request_loop.exchanges", 0.0),
                }
                for name, node in corridor.per_node.items()
            },
        },
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_grid.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nrecorded {out_path}")
