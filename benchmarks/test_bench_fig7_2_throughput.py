"""E5 — Fig 7.2: throughput versus input flow rate, all three IMs.

Paper: Matlab simulations routing 160 cars at flows 0.05-1.25
cars/lane/second with identical traffic for all policies.  All three
are equal at low flow; VT-IM and AIM saturate as flow grows;
Crossroads stays ahead — 1.62X over VT-IM in the worst case (1.36X
average), 1.28X over AIM in the worst case (1.15X average).

Measured here: the same sweep on the micro-simulator (reduced grid by
default; ``REPRO_FULL=1`` for the paper's full grid).
"""

import pytest

from conftest import FLOW_RATES, N_CARS, banner, get_flow_sweep
from repro.analysis import flow_sweep_rows, render_table, speedup_summary


def test_fig7_2_throughput_sweep(benchmark):
    sweep = benchmark.pedantic(get_flow_sweep, rounds=1, iterations=1)

    headers, rows = flow_sweep_rows(sweep)
    print(banner(f"Fig 7.2 - throughput vs flow ({N_CARS} cars per cell)"))
    print(render_table(headers, rows, precision=4))

    summary = speedup_summary(sweep, subject="crossroads")
    print("\nCrossroads advantage (measured vs paper):")
    paper = {"vt-im": (1.62, 1.36), "aim": (1.28, 1.15)}
    for baseline, stats in summary.items():
        worst_paper, avg_paper = paper.get(baseline, (float("nan"),) * 2)
        print(f"  vs {baseline:10s}: worst {stats['worst_case']:.2f}X "
              f"(paper {worst_paper}X), avg {stats['average']:.2f}X "
              f"(paper {avg_paper}X)")

    # Safety everywhere.
    for points in sweep.values():
        for point in points:
            assert point.result.collisions == 0, (
                point.policy, point.flow_rate, "collision",
            )
            assert point.result.n_finished == N_CARS

    # Shape: near-parity at the lowest flow is not required (protocol
    # overheads differ), but at every saturated flow Crossroads wins.
    top_flows = [f for f in FLOW_RATES if f >= 0.5]
    by_key = {
        (policy, p.flow_rate): p.throughput
        for policy, points in sweep.items()
        for p in points
    }
    for flow in top_flows:
        cr = by_key[("crossroads", flow)]
        assert cr > by_key[("vt-im", flow)], f"CR must beat VT-IM at flow {flow}"
        assert cr > by_key[("aim", flow)], f"CR must beat AIM at flow {flow}"

    # Headline ratios in a sane band around the paper's.
    assert summary["vt-im"]["worst_case"] > 1.3
    assert summary["aim"]["worst_case"] > 1.2


def test_fig7_2_low_flow_parity(benchmark):
    """At the lowest flow the three policies are near parity — "at low
    input rates, all the techniques perform almost the same"."""
    sweep = benchmark.pedantic(get_flow_sweep, rounds=1, iterations=1)
    low = min(FLOW_RATES)
    values = {
        policy: next(p.throughput for p in points if p.flow_rate == low)
        for policy, points in sweep.items()
    }
    print(f"\nthroughput at flow {low}: " +
          ", ".join(f"{k}={v:.3f}" for k, v in values.items()))
    assert max(values.values()) < 2.5 * min(values.values())


def test_fig7_2_saturation_shape(benchmark):
    """VT-IM and AIM saturate: their absolute throughput at the top
    flow is no better than at moderate flow, while demand has grown."""
    sweep = benchmark.pedantic(get_flow_sweep, rounds=1, iterations=1)
    for policy in ("vt-im", "aim"):
        points = {p.flow_rate: p.throughput for p in sweep[policy]}
        flows = sorted(points)
        # Throughput at the top flow is within noise of (or below) the
        # best achieved anywhere: no headroom left.
        assert points[flows[-1]] <= max(points.values()) + 1e-9
        assert points[flows[-1]] < points[flows[0]], (
            f"{policy} should be saturated at the top flow"
        )
