"""E4 — Fig 7.1: scale-model average wait times, VT-IM vs Crossroads.

Paper: ten 5-vehicle scenarios on the 1/10-scale testbed, 10 repeats
each.  Crossroads has lower average wait in every scenario — 1.24X
better in the worst case (S1), 1.08X in the best (S10), ~24% lower on
average.

Measured here: the same ten scenarios on the micro-simulator.
"""

import numpy as np
import pytest

from conftest import SCENARIO_REPEATS, banner
from repro.analysis import render_table
from repro.sim import run_scenario
from repro.traffic import scale_model_scenarios


def run_campaign(repeats: int):
    scenarios = scale_model_scenarios()
    table = {}
    for scenario in scenarios:
        means = {}
        for policy in ("vt-im", "crossroads"):
            delays = []
            collisions = 0
            for rep in range(repeats):
                result = run_scenario(policy, scenario.arrivals, seed=100 + rep)
                delays.append(result.average_delay)
                collisions += result.collisions
            means[policy] = (float(np.mean(delays)), collisions)
        table[scenario.name] = means
    return table


def test_fig7_1_scale_model_wait_times(benchmark):
    table = benchmark.pedantic(run_campaign, args=(SCENARIO_REPEATS,),
                               rounds=1, iterations=1)

    rows = []
    vt_means, cr_means = [], []
    for name, means in table.items():
        vt, vt_coll = means["vt-im"]
        cr, cr_coll = means["crossroads"]
        vt_means.append(vt)
        cr_means.append(cr)
        rows.append([name, vt, cr, (vt / cr) if cr > 1e-6 else float("nan"),
                     vt_coll + cr_coll])

    print(banner("Fig 7.1 - average wait per scenario (scale model)"))
    print(render_table(
        ["scenario", "VT-IM (s)", "Crossroads (s)", "VT/CR", "collisions"],
        rows, precision=2,
    ))
    overall_vt = float(np.mean(vt_means))
    overall_cr = float(np.mean(cr_means))
    reduction = 1.0 - overall_cr / overall_vt if overall_vt > 0 else 0.0
    print(f"\noverall: VT-IM {overall_vt:.2f} s, Crossroads {overall_cr:.2f} s "
          f"-> {reduction * 100:.0f}% lower wait (paper: ~24%)")

    # Shape assertions.
    s1 = table["S1-worst"]
    s10 = table["S10-best"]
    assert s1["crossroads"][0] < s1["vt-im"][0], "Crossroads must win the worst case"
    assert s10["vt-im"][0] < 0.5 and s10["crossroads"][0] < 0.5, (
        "sparse best case should be near free flow for both"
    )
    assert overall_cr < overall_vt, "Crossroads must lower the average wait"
    # Ground-truth safety in every run.
    assert all(
        means[p][1] == 0 for means in table.values() for p in means
    ), "no collisions allowed in any scenario"
