"""E6 — Ch 7.2: computation and network overhead comparison.

Paper: "AIM has up to 16x higher computation overhead ... the
performance overhead and network traffic of Crossroads and VT-IM is up
to 20X lower than AIM" — the price of the query-based trial-and-error
scheme (every re-request re-simulates the trajectory over the tile
grid).

Measured here: total IM compute seconds and on-air messages from the
shared Fig 7.2 sweep.
"""

import pytest

from conftest import FLOW_RATES, banner, get_flow_sweep
from repro.analysis import overhead_rows, render_table


def test_ch7_overhead(benchmark):
    sweep = benchmark.pedantic(get_flow_sweep, rounds=1, iterations=1)

    headers, rows = overhead_rows(sweep)
    print(banner("Ch 7.2 - IM compute time and network traffic"))
    print(render_table(headers, rows, precision=1))

    by_key = {
        (policy, p.flow_rate): p
        for policy, points in sweep.items()
        for p in points
    }
    top = max(FLOW_RATES)
    aim = by_key[("aim", top)]
    cr = by_key[("crossroads", top)]
    vt = by_key[("vt-im", top)]

    compute_ratio = aim.compute_time / cr.compute_time
    msg_ratio = aim.messages / cr.messages
    print(f"\nat flow {top}: AIM/Crossroads compute {compute_ratio:.1f}X "
          f"(paper: up to 16X), messages {msg_ratio:.1f}X (paper: up to 20X)")

    # Shape: AIM is multiples more expensive on both axes; VT-IM and
    # Crossroads are the same order of magnitude.
    assert compute_ratio > 2.0
    assert msg_ratio > 1.5
    assert aim.result.requests_total > cr.result.requests_total
    assert 0.2 < vt.compute_time / cr.compute_time < 5.0


def test_ch7_per_request_cost(benchmark):
    """One AIM tile simulation costs a multiple of one VT/Crossroads
    scheduling pass (the per-request compute gap)."""
    sweep = benchmark.pedantic(get_flow_sweep, rounds=1, iterations=1)
    top = max(FLOW_RATES)
    by_key = {
        (policy, p.flow_rate): p.result
        for policy, points in sweep.items()
        for p in points
    }
    aim = by_key[("aim", top)]
    cr = by_key[("crossroads", top)]
    aim_per_request = aim.compute_time / max(aim.compute_requests, 1)
    cr_per_request = cr.compute_time / max(cr.compute_requests, 1)
    print(f"\nper-request compute: AIM {aim_per_request * 1000:.1f} ms, "
          f"Crossroads {cr_per_request * 1000:.1f} ms")
    assert aim_per_request > cr_per_request
