"""E2 — Ch 3.2: time-synchronisation error and its buffer cost.

Paper: NTP over the 2.4 GHz link leaves ~1 ms of residual error,
costing 3 mm of buffer at the 3 m/s top speed.

Measured here: full NTP exchanges over the simulated testbed radio
(gamma delays, 7.5 ms one-way worst case), worst residual over many
vehicles with random initial offsets/drifts.
"""

import numpy as np
import pytest

from conftest import banner
from repro.analysis import render_table
from repro.des import Environment
from repro.network import Channel, SyncRequest, SyncResponse
from repro.network import testbed_delay_model as make_testbed_delay
from repro.timesync import Clock, NtpClient, NtpSample, sync_buffer


def sync_once(seed: int) -> float:
    """One vehicle's sync; returns the absolute residual clock error."""
    rng = np.random.default_rng(seed)
    env = Environment()
    channel = Channel(env, delay_model=make_testbed_delay(), rng=rng)
    im_radio = channel.attach("IM")
    v_radio = channel.attach("V")
    clock = Clock(
        offset=float(rng.uniform(-0.5, 0.5)),
        drift=float(rng.uniform(-20e-6, 20e-6)),
        rng=rng,
    )
    client = NtpClient(clock)

    def server(env):
        while True:
            msg = yield im_radio.receive()
            now = env.now
            im_radio.send(
                SyncResponse(sender="IM", receiver="V", t0=msg.t0, t1=now, t2=now)
            )

    def vehicle(env):
        for _ in range(4):
            t0 = clock.read(env.now)
            v_radio.send(SyncRequest(sender="V", receiver="IM", t0=t0))
            response = yield v_radio.receive()
            client.add_sample(
                NtpSample(t0=response.t0, t1=response.t1, t2=response.t2,
                          t3=clock.read(env.now))
            )
        client.synchronize()

    env.process(server(env))
    done = env.process(vehicle(env))
    env.run(until=done)
    return abs(clock.error(env.now))


def campaign(n: int = 50):
    return [sync_once(seed) for seed in range(n)]


def test_ch3_2_sync_error(benchmark):
    errors = benchmark.pedantic(campaign, rounds=1, iterations=1)
    worst = max(errors)
    mean = float(np.mean(errors))

    print(banner("Ch 3.2 - NTP residual synchronisation error"))
    print(render_table(
        ["quantity", "measured", "paper"],
        [
            ["mean residual (ms)", mean * 1000, "-"],
            ["worst residual (ms)", worst * 1000, "~1"],
            ["buffer at 3 m/s (mm)", sync_buffer(worst, 3.0) * 1000, "3"],
        ],
        precision=2,
    ))

    # The worst residual is bounded by half the worst round-trip
    # asymmetry (7.5 ms one-way cap -> < 3.75 ms), and with the
    # min-delay filter it should land near the paper's millisecond.
    assert worst < 3.75e-3
    assert mean < 1.5e-3
