"""S11 — serve-mode load curve: sustainable TPS, p99 RTD, overload.

Self-hosts a TCP :class:`~repro.serve.ImServer` on localhost and
sweeps an open-loop request rate across the saturation knee.  Service
time is *simulated* (LinearComputeModel, ~28 ms/request at the default
geometry), so the saturation point is a property of the configuration
— capacity ≈ ``time_scale / 0.028`` ≈ 360 TPS at the 10x scale used
here — not of the CI box; only the wall-RTD percentiles are
machine-dependent, and the gate classes them as noisy ``time`` keys.

Asserted (the graceful-degradation contract, not wall clock):

* the sub-capacity rates complete everything they send;
* the past-capacity rate sheds load as ``AimReject`` + ``by_reason
  ["overload"]`` with the backlog pinned at ``max_queue``;
* the server still answers after the overload burst.

Records ``BENCH_serve.json`` (``REPRO_BENCH_DIR`` redirects, default
CWD) for the bench gate.
"""

import json
import os

import pytest

from conftest import banner
from repro.serve import bench_serve

pytestmark = pytest.mark.perf

RATES = (40.0, 120.0, 800.0)
DURATION_S = 2.0
TIME_SCALE = 10.0
MAX_QUEUE = 64


def test_serve_load_curve():
    payload = bench_serve(
        rates=RATES,
        duration_s=DURATION_S,
        policy="crossroads",
        time_scale=TIME_SCALE,
        max_queue=MAX_QUEUE,
    )

    banner("S11 serve load curve")
    header = (f"{'rate':>8} {'sent':>6} {'tps':>8} {'p50 ms':>8} "
              f"{'p99 ms':>8} {'rejects':>8}")
    print(header)
    for rate in RATES:
        row = payload["sweep"][f"rate_{rate:g}"]
        print(f"{rate:8g} {row['sent']:6d} {row['tps']:8.1f} "
              f"{row['rtd_p50_wall_s'] * 1e3:8.2f} "
              f"{row['rtd_p99_wall_s'] * 1e3:8.2f} "
              f"{row['rejects']:8d}")
    print(f"overload: rejects={payload['overload']['rejects']} "
          f"peak_backlog={payload['overload']['peak_backlog']} "
          f"alive={payload['overload']['alive_after_overload']}")
    print(f"wc-rtd estimate: "
          f"{payload['server']['wc_rtd_estimate_s'] * 1e3:.1f} ms "
          f"({payload['server']['rtd_samples']} samples)")

    # Sub-capacity rates sustain their offered load.
    for rate in RATES[:2]:
        row = payload["sweep"][f"rate_{rate:g}"]
        assert row["timeouts"] == 0
        assert row["completed"] == row["sent"]

    # The past-capacity rate degrades gracefully: explicit rejects,
    # backlog clamped at the queue bound, server alive afterwards.
    hot = payload["sweep"][f"rate_{RATES[-1]:g}"]
    assert hot["rejects"] > 0
    assert payload["overload"]["rejects"] == hot["rejects"]
    assert payload["overload"]["peak_backlog"] <= MAX_QUEUE
    assert payload["overload"]["alive_after_overload"] is True
    assert payload["server"]["rtd_samples"] > 0
    assert payload["server"]["wc_rtd_estimate_s"] > 0.0

    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_serve.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
