"""A2 — ablation: sensitivity to the worst-case RTD bound.

Crossroads' claim is *insensitivity*: WC-RTD only shifts the execution
time ``TE``, not the buffer, so its throughput should barely move as
the delay bound grows.  VT-IM pays ``v_max * WC-RTD`` of extra buffer,
so its throughput should degrade.
"""

import pytest

from conftest import N_CARS, banner
from repro.analysis import render_table
from repro.core.base import IMConfig
from repro.sim import WorldConfig, run_scenario
from repro.traffic import PoissonTraffic

RTDS = (0.05, 0.15, 0.30)
#: Moderate flow: Crossroads vehicles mostly keep rolling, so the
#: ablation isolates the *buffer* cost of the delay bound (at heavy
#: saturation both policies also pay WC-RTD as per-stop latency).
FLOW = 0.3
SEEDS = (7, 17)


def run_policy(policy: str, wc_rtd: float) -> float:
    """Mean throughput over noise seeds (single runs are too noisy for
    a sensitivity ablation)."""
    values = []
    for seed in SEEDS:
        arrivals = PoissonTraffic(FLOW, seed=seed + int(FLOW * 1000)).generate(N_CARS)
        config = WorldConfig(im=IMConfig(wc_rtd=wc_rtd))
        result = run_scenario(policy, arrivals, config=config, seed=seed)
        assert result.collisions == 0
        values.append(result.throughput)
    return sum(values) / len(values)


def campaign():
    return {
        (policy, rtd): run_policy(policy, rtd)
        for policy in ("vt-im", "crossroads")
        for rtd in RTDS
    }


def test_ablation_wc_rtd(benchmark):
    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    rows = []
    for rtd in RTDS:
        rows.append([
            f"{rtd * 1000:.0f} ms",
            results[("vt-im", rtd)],
            results[("crossroads", rtd)],
        ])
    print(banner(f"Ablation - WC-RTD sensitivity (flow {FLOW}, "
                 f"mean over {len(SEEDS)} seeds)"))
    print(render_table(
        ["WC-RTD", "VT-IM throughput", "Crossroads throughput"], rows, precision=3
    ))

    vt_low = results[("vt-im", RTDS[0])]
    vt_high = results[("vt-im", RTDS[-1])]
    cr_low = results[("crossroads", RTDS[0])]
    cr_high = results[("crossroads", RTDS[-1])]

    vt_drop = 1.0 - vt_high / vt_low
    cr_drop = 1.0 - cr_high / cr_low
    print(f"\nthroughput drop 50->300 ms RTD: VT-IM {vt_drop * 100:.0f}%, "
          f"Crossroads {cr_drop * 100:.0f}%")

    # The delay bound must cost VT-IM real throughput while Crossroads
    # stays within run-to-run noise of flat.
    assert vt_drop > 0.08, "VT-IM must degrade with WC-RTD"
    assert vt_drop > cr_drop, (
        "Crossroads must be less RTD-sensitive than VT-IM"
    )
    assert abs(cr_drop) < vt_drop + 0.10
