"""E1 — Fig 3.1 / Ch 3.1: the safety-buffer estimation experiment.

Paper: 20 trials of the hold/ramp/hold profile on the physical car,
worst cases 0.1->3.0 and 3.0->0.1 m/s, give ``Elong = +-75 mm``.

Measured here: the same procedure on the calibrated noisy plant.  The
benchmark times one full 2x20-trial campaign.
"""

import numpy as np
import pytest

from conftest import banner
from repro.analysis import render_table
from repro.sensors import worst_case_elong


def run_campaign(seed: int = 2017):
    return worst_case_elong(trials=20, rng=np.random.default_rng(seed))


def test_fig3_1_elong_bound(benchmark):
    bound, up, down = benchmark.pedantic(run_campaign, rounds=3, iterations=1)

    print(banner("Fig 3.1 - worst-case longitudinal error (Elong)"))
    print(render_table(
        ["profile", "mean Elong (mm)", "max |Elong| (mm)"],
        [
            ["0.1 -> 3.0 m/s", up.mean_elong * 1000, up.max_abs_elong * 1000],
            ["3.0 -> 0.1 m/s", down.mean_elong * 1000, down.max_abs_elong * 1000],
        ],
        precision=1,
    ))
    print(f"measured bound: +-{bound * 1000:.1f} mm   (paper: +-75 mm)")

    # Shape assertions: sign structure and testbed-range magnitude.
    assert up.mean_elong > 0, "accelerating profile should fall short (+Elong)"
    assert down.mean_elong < 0, "decelerating profile should overshoot (-Elong)"
    assert 0.03 < bound < 0.15, "Elong bound should be in the testbed's range"


def test_fig3_1_trial_spread(benchmark):
    """Per-trial spread is small relative to the bound (repeatability)."""

    def spread():
        _, up, down = run_campaign(seed=99)
        return max(up.std_elong, down.std_elong)

    sigma = benchmark.pedantic(spread, rounds=3, iterations=1)
    assert sigma < 0.05
