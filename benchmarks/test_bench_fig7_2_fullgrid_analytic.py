"""E5 (full scale) — Fig 7.2 on the analytic engine, paper-sized.

The micro-simulator benches default to a reduced grid for wall-time;
this bench runs the *paper's* full workload — 160 cars per cell over
the complete 0.05–1.25 cars/lane/second grid — on the ideal-vehicle
analytic engine (the moral equivalent of the authors' Matlab
simulators), which finishes in seconds.

AIM's trial-and-error loop needs the closed-loop micro engine, so this
grid covers the two VT-style policies; the AIM comparison lives in the
micro-engine bench.
"""

import pytest

from conftest import banner
from repro.analysis import render_table, speedup_summary
from repro.geometry import ConflictTable, IntersectionGeometry
from repro.sim import run_analytic
from repro.sim.flowsweep import PAPER_FLOW_RATES, FlowPoint
from repro.traffic import PoissonTraffic

N_CARS = 160


def full_grid():
    geometry = IntersectionGeometry()
    conflicts = ConflictTable(geometry)
    sweep = {}
    for policy in ("vt-im", "crossroads"):
        points = []
        for flow in PAPER_FLOW_RATES:
            arrivals = PoissonTraffic(flow, seed=7 + int(flow * 1000)).generate(N_CARS)
            result = run_analytic(
                policy, arrivals, geometry=geometry, conflicts=conflicts
            )
            points.append(FlowPoint(policy=result.policy, flow_rate=flow,
                                    result=result))
        sweep[policy] = points
    return sweep


def test_fig7_2_full_grid_analytic(benchmark):
    sweep = benchmark.pedantic(full_grid, rounds=1, iterations=1)

    rows = []
    for vt, cr in zip(sweep["vt-im"], sweep["crossroads"]):
        rows.append([vt.flow_rate, vt.throughput, cr.throughput,
                     cr.throughput / vt.throughput if vt.throughput else float("nan")])
    print(banner(f"Fig 7.2 (full grid, analytic engine, {N_CARS} cars/cell)"))
    print(render_table(
        ["flow (car/lane/s)", "VT-IM thr", "Crossroads thr", "CR/VT"],
        rows, precision=4,
    ))
    summary = speedup_summary(sweep, subject="crossroads")["vt-im"]
    print(f"\nCrossroads vs VT-IM: worst {summary['worst_case']:.2f}X, "
          f"avg {summary['average']:.2f}X  (paper: 1.62X / 1.36X)")

    # Every cell completes all 160 vehicles.
    for points in sweep.values():
        for point in points:
            assert point.result.n_finished == N_CARS, (
                point.policy, point.flow_rate,
            )

    by_flow = {
        (policy, p.flow_rate): p.throughput
        for policy, points in sweep.items()
        for p in points
    }
    # Parity at the sparse end; Crossroads strictly ahead from 0.3 on.
    low = PAPER_FLOW_RATES[0]
    assert by_flow[("crossroads", low)] == pytest.approx(
        by_flow[("vt-im", low)], rel=0.15
    )
    for flow in (f for f in PAPER_FLOW_RATES if f >= 0.3):
        assert by_flow[("crossroads", flow)] > by_flow[("vt-im", flow)]
    # Both saturate downward end-to-end.
    for policy in ("vt-im", "crossroads"):
        assert by_flow[(policy, PAPER_FLOW_RATES[-1])] < by_flow[(policy, low)]
    assert summary["worst_case"] > 1.6
