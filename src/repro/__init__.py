"""Crossroads: time-sensitive autonomous intersection management.

A from-scratch reproduction of *"Crossroads — A Time-Sensitive
Autonomous Intersection Management Technique"* (Andert, Shrivastava et
al., DAC 2017), including every substrate the paper's evaluation needs:
a discrete-event kernel, network and clock-sync models, vehicle
kinematics and noisy plants, intersection geometry with conflict and
tile analyses, the three intersection-management policies (plain VT-IM,
query-based AIM, and Crossroads), and the full micro-simulation /
benchmark harness that regenerates the paper's figures.

Quick start::

    from repro import run_scenario, scale_model_scenarios

    scenario = scale_model_scenarios()[0]          # S1, the worst case
    result = run_scenario("crossroads", scenario.arrivals, seed=1)
    print(result.average_delay, result.safe)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured numbers.
"""

from repro.core import AimIM, CrossroadsIM, VtimIM, make_im
from repro.geometry import Approach, IntersectionGeometry, Movement, Turn
from repro.grid import (
    GridPoissonTraffic,
    GridResult,
    GridSpec,
    GridWorld,
    corridor_spec,
    run_grid,
    sweep_grid,
)
from repro.obs import MetricsRegistry, merge_metrics_snapshots, to_prometheus
from repro.perf import PerfCounters
from repro.scenarios import (
    BehaviourSpec,
    SafetyOracle,
    ScenarioResult,
    ScenarioSpec,
    SpawnSpec,
    TrafficSpec,
    Violation,
    run_spec,
    scale_model_specs,
)
from repro.sensors import SafetyBufferCalculator
from repro.sim import (
    ParallelRunner,
    RunTask,
    SimResult,
    TraceRecorder,
    World,
    WorldConfig,
    compare_policies,
    run_analytic,
    run_flow,
    run_flow_sweep,
    run_replicated,
    run_scenario,
)
from repro.traffic import Arrival, PoissonTraffic, Scenario, scale_model_scenarios
from repro.vehicle import VehicleInfo, VehicleSpec

__version__ = "1.0.0"

__all__ = [
    "AimIM",
    "Approach",
    "Arrival",
    "BehaviourSpec",
    "CrossroadsIM",
    "GridPoissonTraffic",
    "GridResult",
    "GridSpec",
    "GridWorld",
    "IntersectionGeometry",
    "MetricsRegistry",
    "Movement",
    "ParallelRunner",
    "PerfCounters",
    "PoissonTraffic",
    "RunTask",
    "SafetyBufferCalculator",
    "SafetyOracle",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "SimResult",
    "SpawnSpec",
    "TraceRecorder",
    "TrafficSpec",
    "Turn",
    "VehicleInfo",
    "VehicleSpec",
    "Violation",
    "VtimIM",
    "World",
    "WorldConfig",
    "compare_policies",
    "corridor_spec",
    "make_im",
    "merge_metrics_snapshots",
    "run_analytic",
    "run_flow",
    "run_flow_sweep",
    "run_grid",
    "run_replicated",
    "run_scenario",
    "run_spec",
    "scale_model_scenarios",
    "scale_model_specs",
    "sweep_grid",
    "to_prometheus",
    "__version__",
]
