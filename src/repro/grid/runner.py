"""One-call corridor runs and parallel replication.

:func:`run_grid` is the grid analogue of
:func:`~repro.sim.world.run_scenario`: generate a routed boundary
workload, build a :class:`~repro.grid.world.GridWorld`, run it, return
the :class:`~repro.grid.world.GridResult`.

:func:`sweep_grid` replicates a corridor across seeds on the
:class:`~repro.sim.parallel.ParallelRunner`.  Each cell carries its
own seed and a picklable :class:`~repro.grid.spec.GridSpec` (frozen
tuples of frozen dataclasses), node policies ride along *by name*
inside the spec, and cells return plain summary dicts — so jobs=1 and
jobs=N executions of the same seeds are bit-identical, exactly like
the single-intersection sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.grid.routing import RouteMix
from repro.grid.spec import GridSpec
from repro.grid.traffic import GridArrival, GridPoissonTraffic
from repro.grid.world import GridResult, GridWorld
from repro.obs.events import EventLog
from repro.sim.parallel import RunTask, run_tasks
from repro.sim.world import WorldConfig

__all__ = ["run_grid", "sweep_grid"]


def run_grid(
    spec: GridSpec,
    n_cars: int,
    flow_rate: float = 0.10,
    route_mix: Optional[RouteMix] = None,
    arrivals: Optional[Sequence[GridArrival]] = None,
    config: Optional[WorldConfig] = None,
    seed: Optional[int] = None,
    traffic_seed: Optional[int] = None,
    geometry: Optional[IntersectionGeometry] = None,
    conflicts: Optional[ConflictTable] = None,
    obs: Optional[EventLog] = None,
    metrics=None,
) -> GridResult:
    """Generate (or accept) a workload, run one corridor, return results.

    ``traffic_seed`` defaults to ``seed`` so one integer reproduces
    the whole experiment; pass ``arrivals`` to skip generation
    entirely (``n_cars``/``flow_rate``/``route_mix`` are then ignored).
    """
    if arrivals is None:
        traffic = GridPoissonTraffic(
            spec,
            flow_rate,
            route_mix=route_mix,
            seed=traffic_seed if traffic_seed is not None else seed,
        )
        arrivals = traffic.generate(n_cars)
    world = GridWorld(
        spec,
        arrivals,
        geometry=geometry,
        conflicts=conflicts,
        config=config,
        seed=seed,
        obs=obs,
        metrics=metrics,
    )
    return world.run()


def _grid_cell(
    spec: GridSpec,
    n_cars: int,
    flow_rate: float,
    seed: int,
    config: Optional[WorldConfig],
    route_mix: Optional[RouteMix],
) -> Dict:
    """Module-level picklable worker: one replicated corridor run."""
    result = run_grid(
        spec,
        n_cars,
        flow_rate=flow_rate,
        route_mix=route_mix,
        config=config,
        seed=seed,
        traffic_seed=seed,
    )
    return {
        "seed": seed,
        "summary": result.summary(),
        "per_node": {
            name: node.summary() for name, node in result.per_node.items()
        },
    }


def sweep_grid(
    spec: GridSpec,
    n_cars: int,
    seeds: Sequence[int],
    flow_rate: float = 0.10,
    route_mix: Optional[RouteMix] = None,
    config: Optional[WorldConfig] = None,
    jobs: Union[int, str, None] = None,
) -> List[Dict]:
    """Replicate one corridor across ``seeds``; results in seed order.

    Each entry is ``{"seed", "summary", "per_node"}`` — flat
    deterministic dicts, so serial and parallel executions of the same
    seed list compare equal element-wise.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    tasks = [
        RunTask(
            fn=_grid_cell,
            args=(spec, int(n_cars), float(flow_rate), int(seed), config,
                  route_mix),
            label=f"grid[{len(spec)} nodes] seed={seed}",
        )
        for seed in seeds
    ]
    return run_tasks(tasks, jobs)
