"""Corridor-network description: nodes, links and their validation.

A :class:`GridSpec` is a *routed directed graph of intersections*: each
:class:`NodeSpec` is one four-way intersection (running any registered
IM policy — mixed policies are allowed), and each :class:`LinkSpec` is
a one-way road segment connecting the exit arm of one node to an entry
arm of another.  The spec is pure data — frozen, picklable, JSON
round-trippable — so a corridor sweep can ship it into
:class:`~repro.sim.parallel.ParallelRunner` worker processes unchanged.

Conventions
-----------
* ``LinkSpec.src_exit`` names the compass *arm* of ``src`` the link
  leaves through (the value :func:`repro.geometry.exit_approach`
  returns for the vehicle's movement).
* The entry approach at ``dst`` defaults to the opposite compass arm
  (``src_exit.opposite`` — a vehicle leaving through the EAST arm
  travels east and arrives at the next node *from the west*), matching
  a compass-aligned grid.  ``dst_entry`` may be given explicitly for
  non-aligned topologies (ring roads, folded corridors).
* ``length`` is the road distance from the source node's box exit to
  the destination node's transmission line, metres.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.layout import Approach

__all__ = ["GridSpec", "LinkSpec", "NodeSpec", "corridor_spec"]


@dataclass(frozen=True)
class NodeSpec:
    """One intersection of the network.

    Attributes
    ----------
    name:
        Unique node identifier (used in link references, IM addresses
        and per-node metrics keys).
    policy:
        Registered IM policy name/alias run at this node.  Nodes of one
        grid may run *different* policies.
    x, y:
        Node-centre position in the global corridor frame, metres
        (used by :class:`~repro.grid.geometry` composition and trace
        rendering; the per-node physics stays in the node-local frame).
    """

    name: str
    policy: str = "crossroads"
    x: float = 0.0
    y: float = 0.0

    def __post_init__(self):
        if not self.name or not str(self.name).strip():
            raise ValueError("node name must be non-empty")


@dataclass(frozen=True)
class LinkSpec:
    """One directed road segment between two nodes.

    Attributes
    ----------
    src, dst:
        Names of the source and destination nodes.
    src_exit:
        Compass arm of ``src`` the link leaves through (``"N"``,
        ``"E"``, ``"S"``, ``"W"``).
    length:
        Box-exit to transmission-line distance, metres (> 0).
    speed_limit:
        Cruise speed cap on the link, m/s (> 0).
    dst_entry:
        Entry approach at ``dst``; ``None`` derives the compass-aligned
        default ``src_exit.opposite``.
    """

    src: str
    src_exit: str
    dst: str
    length: float = 6.0
    speed_limit: float = 3.0
    dst_entry: Optional[str] = None

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError(
                f"link {self.src}->{self.dst}: length must be positive "
                f"(got {self.length})"
            )
        if self.speed_limit <= 0:
            raise ValueError(
                f"link {self.src}->{self.dst}: speed_limit must be positive "
                f"(got {self.speed_limit})"
            )
        Approach(self.src_exit)  # raises ValueError on a bad arm name
        if self.dst_entry is not None:
            Approach(self.dst_entry)
        if self.src == self.dst:
            raise ValueError(f"link {self.src}->{self.dst}: self-loops "
                             "are not supported")

    @property
    def exit_arm(self) -> Approach:
        """The source arm as an :class:`~repro.geometry.Approach`."""
        return Approach(self.src_exit)

    @property
    def entry_approach(self) -> Approach:
        """Entry approach at the destination node."""
        if self.dst_entry is not None:
            return Approach(self.dst_entry)
        return Approach(self.src_exit).opposite

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"A/E->B"``."""
        return f"{self.src}/{self.src_exit}->{self.dst}"


@dataclass(frozen=True)
class GridSpec:
    """The full network: nodes + links, validated on construction.

    Invariants enforced here (each with a clear ``ValueError``):

    * node names are unique and non-empty;
    * every link references known nodes, has positive length and speed
      limit, and names a valid compass arm;
    * at most one outgoing link per ``(node, exit arm)`` and at most
      one incoming link per ``(node, entry approach)`` — one lane per
      arm, exactly like the single-intersection geometry.
    """

    nodes: Tuple[NodeSpec, ...]
    links: Tuple[LinkSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "links", tuple(self.links))
        if not self.nodes:
            raise ValueError("a grid needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {sorted(names)}")
        known = set(names)
        out_seen: set = set()
        in_seen: set = set()
        for link in self.links:
            if link.src not in known:
                raise ValueError(f"link {link.key}: unknown src node {link.src!r}")
            if link.dst not in known:
                raise ValueError(f"link {link.key}: unknown dst node {link.dst!r}")
            out_key = (link.src, link.exit_arm)
            if out_key in out_seen:
                raise ValueError(
                    f"link {link.key}: second outgoing link on arm "
                    f"{link.src_exit!r} of node {link.src!r}"
                )
            out_seen.add(out_key)
            in_key = (link.dst, link.entry_approach)
            if in_key in in_seen:
                raise ValueError(
                    f"link {link.key}: second incoming link on approach "
                    f"{link.entry_approach.value!r} of node {link.dst!r}"
                )
            in_seen.add(in_key)

    # -- queries -----------------------------------------------------------
    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"unknown node {name!r}")

    def out_link(self, node: str, arm: Approach) -> Optional[LinkSpec]:
        """The link leaving ``node`` through ``arm`` (None if the arm
        is a network boundary — vehicles exiting there leave the grid)."""
        for link in self.links:
            if link.src == node and link.exit_arm is arm:
                return link
        return None

    def in_link(self, node: str, approach: Approach) -> Optional[LinkSpec]:
        """The link feeding ``node``'s ``approach`` lane (None when the
        lane is fed by boundary traffic instead of a hand-off)."""
        for link in self.links:
            if link.dst == node and link.entry_approach is approach:
                return link
        return None

    def boundary_entries(self, node: str) -> Tuple[Approach, ...]:
        """Approaches of ``node`` not fed by any link — the arms where
        fresh (boundary) traffic may spawn."""
        self.node(node)  # raise on unknown
        return tuple(
            approach for approach in Approach
            if self.in_link(node, approach) is None
        )

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "nodes": [
                {"name": n.name, "policy": n.policy, "x": n.x, "y": n.y}
                for n in self.nodes
            ],
            "links": [
                {
                    "src": l.src, "src_exit": l.src_exit, "dst": l.dst,
                    "length": l.length, "speed_limit": l.speed_limit,
                    **({"dst_entry": l.dst_entry} if l.dst_entry else {}),
                }
                for l in self.links
            ],
        }

    def to_json(self, path: Optional[str] = None) -> str:
        """JSON form; also written to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=2)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    @classmethod
    def from_dict(cls, data: Dict) -> "GridSpec":
        if "nodes" not in data:
            raise ValueError("grid spec needs a 'nodes' list")
        nodes = tuple(NodeSpec(**n) for n in data["nodes"])
        links = tuple(LinkSpec(**l) for l in data.get("links", []))
        return cls(nodes=nodes, links=links)

    @classmethod
    def from_json(cls, text: str) -> "GridSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "GridSpec":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def __len__(self) -> int:
        return len(self.nodes)


def corridor_spec(
    n_nodes: int,
    link_length: float = 6.0,
    speed_limit: float = 3.0,
    policy: str = "crossroads",
    policies: Optional[Sequence[str]] = None,
    node_spacing: Optional[float] = None,
    two_way: bool = True,
) -> GridSpec:
    """A west->east corridor of ``n_nodes`` intersections.

    Node ``N0`` is westernmost; consecutive nodes are connected east-
    bound (and, with ``two_way``, westbound too), so straight-through
    traffic entering ``N0`` from the west traverses every node.
    ``policies`` (one per node) overrides the uniform ``policy``.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if policies is not None and len(policies) != n_nodes:
        raise ValueError(f"policies must name {n_nodes} policies")
    spacing = node_spacing if node_spacing is not None else link_length + 10.0
    nodes: List[NodeSpec] = []
    for i in range(n_nodes):
        nodes.append(
            NodeSpec(
                name=f"N{i}",
                policy=policies[i] if policies is not None else policy,
                x=i * spacing,
                y=0.0,
            )
        )
    links: List[LinkSpec] = []
    for i in range(n_nodes - 1):
        links.append(
            LinkSpec(src=f"N{i}", src_exit="E", dst=f"N{i + 1}",
                     length=link_length, speed_limit=speed_limit)
        )
        if two_way:
            links.append(
                LinkSpec(src=f"N{i + 1}", src_exit="W", dst=f"N{i}",
                         length=link_length, speed_limit=speed_limit)
            )
    return GridSpec(nodes=tuple(nodes), links=tuple(links))
