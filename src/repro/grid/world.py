"""The corridor simulator: a routed graph of node runtimes on one DES.

:class:`GridWorld` lifts :class:`~repro.sim.world.World` from one
intersection to a :class:`~repro.grid.spec.GridSpec` network:

* **one** DES environment and **one** shared wireless medium (behind
  the :class:`~repro.network.transport.Transport` seam) carry every
  node's traffic — the per-IM share is read back from
  ``NetworkStats.by_endpoint``;
* each node is a full :class:`~repro.sim.engine.NodeRuntime` — its own
  IM (any registered policy, mixed policies allowed) at the address
  ``"{base}.{node}"`` (the bare base address for a 1-node grid, so
  addressing matches the single world exactly), its own ground-truth
  safety monitor (node-local frame, episode semantics identical to
  ``World``'s) and its own 1 Hz reservation watchdog — with the
  ``on_spawn``/``safety_checks`` scenario seams available per node;
* a **hand-off** process follows every multi-hop vehicle: when its
  hop-``k`` agent despawns past the box, the vehicle cruises the
  connecting link at ``min(link.speed_limit, v_max)``, waits (if
  needed) for car-following spacing on the destination lane, and is
  re-spawned as a fresh agent at the next node — reusing the *same*
  radio (stable address ``V<id>`` keeps the IM-side sequence guards
  and receiver dedup windows continuous) and the *same* drifting
  clock (offset/drift state carries across hops).

Single-node bit-identity
------------------------
A 1-node ``GridWorld`` replays :class:`~repro.sim.world.World`'s exact
construction order: master-RNG draws (channel seed, then per-spawn
offset/drift/clock-rng/plant-rng), DES process creation order (IM
machinery, spawner, safety monitor, watchdog) and lane bookkeeping —
all of it now literally the same engine code.  Single-hop routes start
**no** hand-off watcher, so the event-id tie-break sequence is
untouched.  The golden equivalence suite pins
``grid.per_node["N0"].summary() == world.summary()`` across policies
and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.des import Environment
from repro.core.registry import resolve_policy
from repro.faults import FaultInjector
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.grid.spec import GridSpec
from repro.grid.traffic import GridArrival
from repro.network.delay import testbed_delay_model
from repro.network.transport import default_transport
from repro.obs.events import EventLog
from repro.obs.spans import build_spans, span_stats
from repro.perf import PerfCounters
from repro.sim.engine import NodeRuntime
from repro.sim.metrics import SimResult
from repro.sim.world import WorldConfig
from repro.vehicle.agent import BaseVehicle
from repro.vehicle.record import VehicleRecord

__all__ = ["CorridorRecord", "GridResult", "GridWorld"]


# =========================================================================
# Results
# =========================================================================
@dataclass
class CorridorRecord:
    """One vehicle's end-to-end trip across the network.

    ``hops`` collects ``(node, per-hop VehicleRecord)`` pairs as the
    trip progresses; the same records also appear in the owning node's
    :class:`~repro.sim.metrics.SimResult`, so per-node and corridor
    views stay consistent by construction.
    """

    vehicle_id: int
    route_key: str
    n_hops_planned: int
    spawn_node: str
    spawn_time: float
    hops: List[Tuple[str, VehicleRecord]] = field(default_factory=list)
    #: Simulated seconds this vehicle's hand-offs waited for spacing.
    handoff_wait_s: float = 0.0

    @property
    def hops_completed(self) -> int:
        """Hops whose box was fully cleared."""
        return sum(1 for _, record in self.hops if record.finished)

    @property
    def finished(self) -> bool:
        """True once every planned hop's box was cleared."""
        return self.hops_completed == self.n_hops_planned

    @property
    def corridor_time(self) -> Optional[float]:
        """First spawn to final box exit, seconds (None unfinished)."""
        if not self.finished:
            return None
        return self.hops[-1][1].exit_time - self.spawn_time

    @property
    def total_delay(self) -> float:
        """Summed per-hop excess wait over free flow, seconds."""
        return float(
            sum(
                record.delay
                for _, record in self.hops
                if record.delay is not None
            )
        )

    def node_delay(self, node: str) -> float:
        """This vehicle's excess wait at ``node`` (0.0 if not visited)."""
        return float(
            sum(
                record.delay
                for name, record in self.hops
                if name == node and record.delay is not None
            )
        )


@dataclass
class GridResult:
    """Everything measured in one corridor run.

    ``per_node`` holds one full :class:`~repro.sim.metrics.SimResult`
    per intersection (records = the per-hop vehicle records served
    there; message/byte/duplicate counts are that IM's
    ``by_endpoint`` share of the shared medium; ``messages_by_type``
    and ``losses_by_reason`` stay *global* — a shared medium cannot
    attribute them per node).  ``corridor`` is the end-to-end view.
    """

    spec: GridSpec
    per_node: Dict[str, SimResult]
    corridor: List[CorridorRecord]
    sim_duration: float
    #: Completed link hand-offs (vehicle re-spawned at the next node).
    handoffs: int = 0
    #: Hand-offs that had to wait for car-following spacing on the
    #: destination lane (the "headway violation avoided" counter).
    handoffs_delayed: int = 0
    #: Total simulated seconds spent in those waits.
    handoff_wait_s: float = 0.0
    #: Run-level wall timers + kernel counters (not in :meth:`summary`).
    perf: Dict[str, float] = field(default_factory=dict)
    #: Exchange-span stats when traced (not in :meth:`summary`).
    obs: Dict[str, float] = field(default_factory=dict)
    #: Streaming-metrics snapshot when a registry was attached (per-node
    #: series carry ``node=<name>`` labels; not in :meth:`summary`).
    metrics: Dict = field(default_factory=dict)
    #: Per-node safety-oracle violations (only nodes with an attached
    #: :class:`~repro.scenarios.SafetyOracle`; empty tuples for clean
    #: nodes stay in, so attribution is explicit per monitored node).
    violations: Dict[str, tuple] = field(default_factory=dict)

    # -- aggregates --------------------------------------------------------
    @property
    def n_vehicles(self) -> int:
        return len(self.corridor)

    @property
    def n_completed(self) -> int:
        return sum(1 for record in self.corridor if record.finished)

    @property
    def corridor_times(self) -> np.ndarray:
        return np.array(
            [
                record.corridor_time
                for record in self.corridor
                if record.corridor_time is not None
            ],
            dtype=float,
        )

    @property
    def average_corridor_time(self) -> float:
        times = self.corridor_times
        return float(times.mean()) if len(times) else 0.0

    @property
    def average_delay(self) -> float:
        """Mean summed per-hop delay of completed trips, seconds."""
        delays = [r.total_delay for r in self.corridor if r.finished]
        return float(np.mean(delays)) if delays else 0.0

    @property
    def collisions(self) -> int:
        return sum(result.collisions for result in self.per_node.values())

    @property
    def messages_sent(self) -> int:
        """Shared-medium total (per-IM shares live in ``per_node``)."""
        results = list(self.per_node.values())
        if len(results) == 1:
            return results[0].messages_sent
        # Every message involves exactly one IM endpoint, so the medium
        # total is the sum of the per-IM shares.
        return sum(result.messages_sent for result in results)

    @property
    def safe(self) -> bool:
        return self.collisions == 0

    def node_wait(self, node: str) -> float:
        """Mean per-vehicle excess wait at ``node``, seconds."""
        return self.per_node[node].average_delay

    def summary(self) -> Dict[str, float]:
        """Flat corridor-level headline numbers (deterministic per
        seed: safe to compare across jobs=1 / jobs=N executions)."""
        completed = [r for r in self.corridor if r.finished]
        return {
            "nodes": float(len(self.per_node)),
            "vehicles": float(self.n_vehicles),
            "completed": float(self.n_completed),
            "avg_corridor_time_s": self.average_corridor_time,
            "avg_delay_s": self.average_delay,
            "avg_hops": (
                float(np.mean([r.hops_completed for r in completed]))
                if completed
                else 0.0
            ),
            "handoffs": float(self.handoffs),
            "handoffs_delayed": float(self.handoffs_delayed),
            "handoff_wait_s": self.handoff_wait_s,
            "collisions": float(self.collisions),
            "messages": float(self.messages_sent),
        }


# =========================================================================
# The grid world
# =========================================================================
class GridWorld:
    """One wired-up corridor run.

    Parameters
    ----------
    spec:
        The network description.
    arrivals:
        Routed boundary workload (time-sorted
        :class:`~repro.grid.traffic.GridArrival` s).
    geometry:
        Per-node intersection layout, shared by every node (testbed
        default when omitted; node placement is ``NodeSpec.x/y``).
    config:
        World knobs (``config.im.address`` is the base IM address;
        per-node addresses append ``.{node}`` on multi-node grids).
    seed:
        Master seed (channel, clocks, plants — same stream discipline
        as :class:`~repro.sim.world.World`).
    obs:
        Optional event log; hand-offs emit ``grid.handoff`` records
        and per-node IM addresses give spans per-node attribution.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` shared by the
        kernel, the transport and every node runtime — per-node series
        are distinguished by their ``node`` label, and completed link
        hand-offs feed a ``grid.handoffs`` counter.  Same bit-identity
        contract as ``obs``.
    """

    def __init__(
        self,
        spec: GridSpec,
        arrivals: Sequence[GridArrival],
        geometry: Optional[IntersectionGeometry] = None,
        conflicts: Optional[ConflictTable] = None,
        config: Optional[WorldConfig] = None,
        seed: Optional[int] = None,
        obs: Optional[EventLog] = None,
        metrics=None,
    ):
        self.spec = spec
        self.arrivals = sorted(arrivals, key=lambda a: a.time)
        self.config = config if config is not None else WorldConfig()
        self.geometry = geometry if geometry is not None else IntersectionGeometry()
        self.rng = np.random.default_rng(seed)
        self.obs = obs
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        cfg = self.config

        # A link must out-last the despawn outrun, or the hand-off
        # would have to re-spawn the vehicle *behind* its own exit.
        for link in spec.links:
            if link.length <= cfg.agent.outrun:
                raise ValueError(
                    f"link {link.key}: length {link.length} must exceed the "
                    f"agent outrun {cfg.agent.outrun}"
                )

        policies = {
            node.name: resolve_policy(node.policy) for node in spec.nodes
        }
        single = len(spec) == 1

        self.env = Environment()
        if obs is not None:
            self.env.obs = obs
        if self.metrics is not None:
            self.env.metrics = self.metrics.counter("des.events")
        delay = (
            cfg.delay_model if cfg.delay_model is not None else testbed_delay_model()
        )
        # Same master-draw discipline as World: one channel-seed draw,
        # fault stream forked from it (child key 1).
        channel_seed = int(self.rng.integers(2 ** 63))
        self.faults: Optional[FaultInjector] = None
        if cfg.faults is not None:
            self.faults = FaultInjector(
                cfg.faults,
                rng=np.random.default_rng([channel_seed, 1]),
                im_address=cfg.im.address,
            )
        self.channel = default_transport(
            self.env,
            delay_model=delay,
            loss_probability=cfg.message_loss,
            rng=np.random.default_rng(channel_seed),
            faults=self.faults,
            obs=obs,
            metrics=self.metrics,
        )
        if conflicts is None and any(
            p.needs_conflicts for p in policies.values()
        ):
            conflicts = ConflictTable(self.geometry)
        self.conflicts = conflicts

        #: One :class:`~repro.sim.engine.NodeRuntime` per intersection,
        #: in ``spec.nodes`` order (IM construction order matters for
        #: bit-identity).  The scenario layer reaches per-node seams —
        #: ``safety_checks``, ``oracle`` — through this mapping.
        self.nodes: Dict[str, NodeRuntime] = {}
        for node in spec.nodes:
            self.nodes[node.name] = NodeRuntime(
                self.env,
                policies[node.name],
                self.channel,
                self.geometry,
                conflicts,
                cfg,
                im_address=(
                    cfg.im.address if single else f"{cfg.im.address}.{node.name}"
                ),
                name=node.name,
                obs=obs,
                metrics=self.metrics,
            )
        #: Per-node IMs (kept as a flat view; tests and analysis poke
        #: reservation state through it).
        self.ims = {name: runtime.im for name, runtime in self.nodes.items()}

        #: Every agent ever spawned (one per vehicle *hop*); per-node
        #: lists live on each runtime.
        self.vehicles: List[BaseVehicle] = []
        self._on_spawn: Optional[Callable[[BaseVehicle], None]] = None
        self.corridor: List[CorridorRecord] = []
        self.handoffs = 0
        self.handoffs_delayed = 0
        self.handoff_wait_s = 0.0
        self._spawned = 0
        self._inflight = 0
        self.perf = PerfCounters()
        self._m_handoffs = (
            self.metrics.counter("grid.handoffs")
            if self.metrics is not None
            else None
        )

        # Process creation order mirrors World (spawner, monitor,
        # watchdog) — per-node fan-out collapses to World's exact
        # order on a 1-node grid.
        self.env.process(self._spawner())
        for node in spec.nodes:
            self.env.process(self.nodes[node.name].safety_monitor())
        for node in spec.nodes:
            self.env.process(self.nodes[node.name].im_watchdog())

    # -- scenario seam -------------------------------------------------------
    @property
    def on_spawn(self) -> Optional[Callable[[BaseVehicle], None]]:
        """Hook fired with each agent right after it spawns, network
        wide (every node runtime shares it; hand-off re-spawns fire it
        again, so a scripted behaviour follows its vehicle across
        hops).  ``repro.scenarios.install`` works on grids unchanged.
        """
        return self._on_spawn

    @on_spawn.setter
    def on_spawn(self, hook: Optional[Callable[[BaseVehicle], None]]) -> None:
        self._on_spawn = hook
        for runtime in self.nodes.values():
            runtime.on_spawn = hook

    # -- spawning -----------------------------------------------------------
    def _spawner(self):
        for index, garrival in enumerate(self.arrivals):
            wait = garrival.time - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            self._spawn(index, garrival)

    def _make_agent(
        self,
        node: str,
        info,
        radio,
        clock,
        spawn_speed: float,
    ) -> BaseVehicle:
        """Build one per-hop agent at ``node`` (engine spawn wiring)."""
        vehicle = self.nodes[node].add_vehicle(
            info, radio, clock, spawn_speed, self.rng
        )
        self.vehicles.append(vehicle)
        return vehicle

    def _spawn(self, index: int, garrival: GridArrival) -> BaseVehicle:
        route = garrival.route
        hop = route.hops[0]
        runtime = self.nodes[hop.node]
        info = runtime.vehicle_info(
            index, garrival.arrival.spec, hop.movement
        )
        radio = self.channel.attach(f"V{index}")
        clock = runtime.make_clock(self.rng)
        vehicle = self._make_agent(
            hop.node, info, radio, clock, garrival.arrival.speed
        )
        record = CorridorRecord(
            vehicle_id=index,
            route_key=route.key,
            n_hops_planned=route.n_hops,
            spawn_node=hop.node,
            spawn_time=self.env.now,
        )
        record.hops.append((hop.node, vehicle.record))
        self.corridor.append(record)
        self._spawned += 1
        if route.n_hops > 1:
            # Only multi-hop vehicles get a watcher, so 1-node grids
            # schedule exactly the events a plain World does.
            self._inflight += 1
            self.env.process(self._handoff_runner(vehicle, record, route))
        return vehicle

    # -- hand-off -----------------------------------------------------------
    def _handoff_runner(self, vehicle: BaseVehicle, record: CorridorRecord, route):
        """Carry one vehicle across every link of its route."""
        cfg = self.config
        poll = cfg.agent.dt
        try:
            for hop_index in range(1, route.n_hops):
                link = route.links[hop_index - 1]
                hop = route.hops[hop_index]
                # 1. Wait for the current hop's agent to clear its box
                #    and outrun (despawn).
                while not vehicle.done:
                    yield self.env.timeout(poll)
                spec = vehicle.info.spec
                # 2. Cruise the link.  The agent already drove ``outrun``
                #    metres of it before despawning.
                cruise = min(link.speed_limit, spec.v_max)
                remaining = link.length - cfg.agent.outrun
                yield self.env.timeout(remaining / cruise)
                # 3. Respect car-following spacing on the destination
                #    lane: never materialise on top of a queued tail.
                lane = self.nodes[hop.node].lane(hop.movement.entry.value)
                waited = 0.0
                while True:
                    leader = next(
                        (v for v in reversed(lane) if not v.done), None
                    )
                    if leader is None or leader.front >= (
                        leader.info.spec.length + cfg.agent.gap_min
                    ):
                        break
                    waited += poll
                    yield self.env.timeout(poll)
                # 4. Re-spawn at the next node: same radio (address,
                #    sequence-guard and dedup continuity), same drifting
                #    clock, fresh agent and per-hop record.
                info = self.nodes[hop.node].vehicle_info(
                    record.vehicle_id, spec, hop.movement
                )
                previous = vehicle
                vehicle = self._make_agent(
                    hop.node, info, previous.radio, previous.clock, cruise
                )
                record.hops.append((hop.node, vehicle.record))
                record.handoff_wait_s += waited
                self.handoffs += 1
                if self._m_handoffs is not None:
                    self._m_handoffs.inc(1.0, self.env.now)
                if waited > 0.0:
                    self.handoffs_delayed += 1
                    self.handoff_wait_s += waited
                if self.obs is not None and self.obs.enabled:
                    self.obs.emit(
                        "grid.handoff",
                        self.env.now,
                        previous.radio.address,
                        vehicle_id=record.vehicle_id,
                        src=link.src,
                        dst=hop.node,
                        link=link.key,
                        hop=hop_index,
                        wait=waited,
                    )
        finally:
            self._inflight -= 1

    # -- execution ----------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return (
            bool(self.vehicles)
            and self._spawned == len(self.arrivals)
            and self._inflight == 0
            and all(v.done for v in self.vehicles)
        )

    def run(self) -> GridResult:
        """Run to completion (every trip finished) and collect results."""
        step = 1.0
        with self.perf.timer("sim_run"):
            while not self.all_done and self.env.now < self.config.max_sim_time:
                self.env.run(until=self.env.now + step)
        return self.result()

    # -- metrics ------------------------------------------------------------
    def node_result(self, node: str) -> SimResult:
        """Full single-intersection result view of one node."""
        return self.nodes[node].result(
            stats=self.channel.stats,
            per_endpoint=True,
            fault_injections=self.faults.snapshot() if self.faults else {},
            perf=self.nodes[node].perf_snapshot(),
        )

    def result(self) -> GridResult:
        """Snapshot the metrics of the current state."""
        perf = PerfCounters(times=self.perf.times)
        perf.incr("des_events", self.env.events_processed)
        perf.incr("grid.handoffs", self.handoffs)
        perf.incr("grid.handoffs_delayed", self.handoffs_delayed)
        if self.metrics is not None:
            # Final sample per node (same reason as World.result).
            for runtime in self.nodes.values():
                runtime.sample_metrics(self.env.now)
        return GridResult(
            spec=self.spec,
            per_node={
                node.name: self.node_result(node.name)
                for node in self.spec.nodes
            },
            corridor=list(self.corridor),
            sim_duration=self.env.now,
            handoffs=self.handoffs,
            handoffs_delayed=self.handoffs_delayed,
            handoff_wait_s=self.handoff_wait_s,
            perf=perf.snapshot(),
            obs=(
                span_stats(build_spans(self.obs))
                if self.obs is not None
                else {}
            ),
            metrics=(
                self.metrics.snapshot() if self.metrics is not None else {}
            ),
            violations={
                name: tuple(runtime.oracle.violations)
                for name, runtime in self.nodes.items()
                if runtime.oracle is not None
            },
        )
