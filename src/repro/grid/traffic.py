"""Boundary traffic for the corridor network.

:class:`GridPoissonTraffic` is the grid analogue of
:class:`~repro.traffic.PoissonTraffic`: independent Poisson arrival
processes on every **boundary** approach lane of every node (interior
approaches are fed by hand-offs, not spawns), each arrival assigned a
turn, an entry speed, and then a multi-hop :class:`~repro.grid.routing.
RoutePlan` drawn through the same seeded RNG.

Draw-order contract
-------------------
For a single isolated node every approach is a boundary approach and
route extension consumes zero draws, so the generator's RNG sequence —
per-lane exponential gap, turn, speed, repeated, then merged and
truncated — is **exactly** :meth:`PoissonTraffic.generate`'s.  The
equivalence test pins ``GridPoissonTraffic`` on a 1-node spec against
``PoissonTraffic`` arrival-by-arrival; the 1-node
:class:`~repro.grid.world.GridWorld` golden test builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.layout import Approach, Movement
from repro.grid.routing import RouteMix, RoutePlan, Router
from repro.grid.spec import GridSpec
from repro.traffic.generator import Arrival
from repro.vehicle.spec import VehicleSpec

__all__ = ["GridArrival", "GridPoissonTraffic"]


@dataclass(frozen=True)
class GridArrival:
    """One vehicle's appearance at a boundary transmission line.

    Wraps a plain :class:`~repro.traffic.Arrival` (time, first-hop
    movement, entry speed, spec) with the node it spawns at and the
    route it will follow.
    """

    node: str
    arrival: Arrival
    route: RoutePlan

    def __post_init__(self):
        if self.route.entry_node != self.node:
            raise ValueError(
                f"route enters at {self.route.entry_node!r}, "
                f"arrival spawns at {self.node!r}"
            )
        if self.route.entry_movement != self.arrival.movement:
            raise ValueError(
                f"route's first movement {self.route.entry_movement.key!r} "
                f"differs from the arrival's {self.arrival.movement.key!r}"
            )

    @property
    def time(self) -> float:
        return self.arrival.time


class GridPoissonTraffic:
    """Poisson boundary arrivals + routed trips over a grid.

    Parameters mirror :class:`~repro.traffic.PoissonTraffic` with the
    grid spec and a :class:`~repro.grid.routing.RouteMix` added.
    """

    def __init__(
        self,
        spec: GridSpec,
        flow_rate: float,
        route_mix: Optional[RouteMix] = None,
        speed_range: Sequence[float] = (2.0, 3.0),
        min_headway: float = 0.5,
        vehicle_spec: Optional[VehicleSpec] = None,
        seed: Optional[int] = None,
    ):
        if flow_rate <= 0:
            raise ValueError("flow_rate must be positive")
        if len(speed_range) != 2 or not 0 < speed_range[0] <= speed_range[1]:
            raise ValueError("speed_range must be (low, high) with 0 < low <= high")
        if min_headway < 0:
            raise ValueError("min_headway must be non-negative")
        self.spec = spec
        self.router = Router(spec)
        self.flow_rate = flow_rate
        self.route_mix = route_mix if route_mix is not None else RouteMix()
        self.speed_range = tuple(speed_range)
        self.min_headway = min_headway
        self.vehicle_spec = (
            vehicle_spec if vehicle_spec is not None else VehicleSpec()
        )
        self.rng = np.random.default_rng(seed)

    def generate(self, n_cars: int) -> List[GridArrival]:
        """``n_cars`` routed arrivals across all boundary lanes.

        Pass 1 replays :meth:`PoissonTraffic.generate` per boundary
        lane (nodes in spec order, approaches in compass order): gaps
        exponential at the per-lane rate floored at ``min_headway``,
        then a turn and a speed per candidate; the merged stream is
        time-sorted (stable, so simultaneous arrivals keep generation
        order) and truncated to ``n_cars``.  Pass 2 extends each kept
        arrival into a route, in arrival order.
        """
        if n_cars < 1:
            raise ValueError("n_cars must be >= 1")
        mix = self.route_mix
        candidates: List[tuple] = []
        for node in self.spec.nodes:
            boundary = set(self.spec.boundary_entries(node.name))
            for approach in Approach:
                if approach not in boundary:
                    continue  # interior lane: fed by hand-offs
                t = 0.0
                for _ in range(n_cars):
                    gap = self.rng.exponential(1.0 / self.flow_rate)
                    t += max(float(gap), self.min_headway)
                    turn = mix.turns.draw(self.rng)
                    low, high = self.speed_range
                    v_cap = min(high, self.vehicle_spec.v_max)
                    speed = (
                        float(self.rng.uniform(low, v_cap))
                        if v_cap > low
                        else low
                    )
                    candidates.append(
                        (t, node.name, Movement(approach, turn), speed)
                    )
        candidates.sort(key=lambda c: c[0])
        kept = candidates[:n_cars]
        out: List[GridArrival] = []
        for t, node_name, movement, speed in kept:
            route = self.router.random_route(node_name, movement, mix, self.rng)
            out.append(
                GridArrival(
                    node=node_name,
                    arrival=Arrival(
                        time=t,
                        movement=movement,
                        speed=speed,
                        spec=self.vehicle_spec,
                    ),
                    route=route,
                )
            )
        return out
