"""Routes over the corridor network.

A :class:`RoutePlan` is the multi-hop generalisation of a single
:class:`~repro.geometry.Movement`: an ordered list of :class:`Hop` s
(node + movement through that node's box) glued together by the
:class:`~repro.grid.spec.LinkSpec` s the vehicle travels between them.
The :class:`Router` builds plans three ways:

* :meth:`Router.route` — deterministic: walk an explicit turn sequence
  through the graph (the grid analogue of handing an
  :class:`~repro.traffic.Arrival` its movement);
* :meth:`Router.random_route` — stochastic: extend a first movement
  hop by hop, drawing each subsequent turn from a seeded
  :class:`RouteMix` (mirroring how :class:`~repro.traffic.TurnMix`
  assigns single-intersection turns) until the vehicle exits through a
  boundary arm, declines to continue, or hits ``max_hops``;
* :meth:`Router.shortest_path` — static: Dijkstra over
  ``(node, entry approach)`` states weighted by link length, so U-turn
  prohibitions (no movement of the four-way geometry performs one) are
  respected structurally rather than patched afterwards.

Every hop-to-hop transition uses the promoted geometry kernel:
``exit arm = exit_approach(entry, turn)``, next entry approach =
``LinkSpec.entry_approach`` (compass ``opposite`` by default), and
``turn_for`` inverts an arm sequence back into turns.

Determinism: :meth:`Router.random_route` draws **zero** RNG values for
a route that ends at its first hop (a boundary exit, or a single-node
grid), which is what keeps a 1-node :class:`~repro.grid.world.GridWorld`
workload bit-identical to the plain :class:`~repro.sim.world.World`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.layout import Approach, Movement, Turn, exit_approach, turn_for
from repro.grid.spec import GridSpec, LinkSpec
from repro.traffic.generator import TurnMix

__all__ = ["Hop", "RouteMix", "RoutePlan", "Router"]


@dataclass(frozen=True)
class Hop:
    """One intersection traversal of a route."""

    node: str
    movement: Movement

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"N0/S-straight"``."""
        return f"{self.node}/{self.movement.key}"

    @property
    def exit_arm(self) -> Approach:
        """Compass arm this hop's movement exits through."""
        return exit_approach(self.movement.entry, self.movement.turn)


@dataclass(frozen=True)
class RoutePlan:
    """A validated multi-hop route: hops + the links between them.

    ``links[i]`` is the road segment travelled between ``hops[i]`` and
    ``hops[i + 1]``; construction checks the chain is geometrically
    consistent (each link leaves its hop's exit arm and feeds the next
    hop's entry approach).
    """

    hops: Tuple[Hop, ...]
    links: Tuple[LinkSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "hops", tuple(self.hops))
        object.__setattr__(self, "links", tuple(self.links))
        if not self.hops:
            raise ValueError("a route needs at least one hop")
        if len(self.links) != len(self.hops) - 1:
            raise ValueError(
                f"route with {len(self.hops)} hops needs "
                f"{len(self.hops) - 1} links (got {len(self.links)})"
            )
        for i, link in enumerate(self.links):
            hop, nxt = self.hops[i], self.hops[i + 1]
            if link.src != hop.node:
                raise ValueError(f"link {link.key} does not leave hop {hop.key}")
            if link.exit_arm is not hop.exit_arm:
                raise ValueError(
                    f"hop {hop.key} exits arm {hop.exit_arm.value!r} but link "
                    f"{link.key} leaves arm {link.src_exit!r}"
                )
            if link.dst != nxt.node:
                raise ValueError(f"link {link.key} does not reach hop {nxt.key}")
            if link.entry_approach is not nxt.movement.entry:
                raise ValueError(
                    f"link {link.key} feeds approach "
                    f"{link.entry_approach.value!r} but hop {nxt.key} enters "
                    f"from {nxt.movement.entry.value!r}"
                )

    # -- queries -----------------------------------------------------------
    @property
    def n_hops(self) -> int:
        return len(self.hops)

    @property
    def entry_node(self) -> str:
        return self.hops[0].node

    @property
    def entry_movement(self) -> Movement:
        return self.hops[0].movement

    @property
    def exit_node(self) -> str:
        return self.hops[-1].node

    @property
    def length(self) -> float:
        """Total link distance between hops, metres (box transits and
        approach runs are owned by the per-node geometry)."""
        return float(sum(link.length for link in self.links))

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"N0/W-straight>N1/W-left"``."""
        return ">".join(hop.key for hop in self.hops)

    def __len__(self) -> int:
        return len(self.hops)


@dataclass(frozen=True)
class RouteMix:
    """Stochastic route-extension policy (the grid's ``TurnMix``).

    Attributes
    ----------
    turns:
        Turn distribution drawn at every hop *after* the first (the
        first hop's turn comes from the arrival workload, exactly as in
        the single-intersection world).
    continue_probability:
        Probability of continuing onto an available outgoing link
        instead of despawning at the current node; ``1.0`` (the
        default) means "drive until a boundary arm" and — importantly —
        consumes **no** RNG draw for the decision, preserving
        single-node bit-identity.
    max_hops:
        Hard cap on route length (guards cyclic topologies).
    """

    turns: TurnMix = field(default_factory=TurnMix)
    continue_probability: float = 1.0
    max_hops: int = 8

    def __post_init__(self):
        if not 0.0 <= self.continue_probability <= 1.0:
            raise ValueError("continue_probability must be in [0, 1]")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")


class Router:
    """Route construction over one :class:`~repro.grid.spec.GridSpec`."""

    def __init__(self, spec: GridSpec):
        self.spec = spec

    # -- deterministic -----------------------------------------------------
    def route(
        self, entry_node: str, entry: Approach, turns: Sequence[Turn]
    ) -> RoutePlan:
        """Walk an explicit turn sequence from ``(entry_node, entry)``.

        Raises ``ValueError`` when a non-final turn exits through a
        boundary arm (there is no road to carry the vehicle onwards).
        """
        if not turns:
            raise ValueError("a route needs at least one turn")
        self.spec.node(entry_node)  # raise on unknown
        hops: List[Hop] = []
        links: List[LinkSpec] = []
        node, approach = entry_node, entry
        for i, turn in enumerate(turns):
            hop = Hop(node, Movement(approach, turn))
            hops.append(hop)
            if i == len(turns) - 1:
                break
            link = self.spec.out_link(node, hop.exit_arm)
            if link is None:
                raise ValueError(
                    f"turn {i} of route exits boundary arm "
                    f"{hop.exit_arm.value!r} of node {node!r} with "
                    f"{len(turns) - 1 - i} turns left"
                )
            links.append(link)
            node, approach = link.dst, link.entry_approach
        return RoutePlan(tuple(hops), tuple(links))

    # -- stochastic --------------------------------------------------------
    def random_route(
        self,
        entry_node: str,
        first_movement: Movement,
        mix: RouteMix,
        rng: np.random.Generator,
    ) -> RoutePlan:
        """Extend ``first_movement`` hop by hop under ``mix``.

        The walk stops at a boundary arm, a declined continuation, or
        ``mix.max_hops``.  A route that ends at its first hop consumes
        zero draws from ``rng``.
        """
        hops = [Hop(entry_node, first_movement)]
        links: List[LinkSpec] = []
        while len(hops) < mix.max_hops:
            link = self.spec.out_link(hops[-1].node, hops[-1].exit_arm)
            if link is None:
                break  # boundary arm: the vehicle leaves the network
            if mix.continue_probability < 1.0 and (
                rng.random() >= mix.continue_probability
            ):
                break  # this trip ends at the current node
            turn = mix.turns.draw(rng)
            hops.append(Hop(link.dst, Movement(link.entry_approach, turn)))
            links.append(link)
        return RoutePlan(tuple(hops), tuple(links))

    # -- static shortest path ----------------------------------------------
    def shortest_path(
        self,
        src: str,
        entry: Approach,
        dst: str,
        final_turn: Turn = Turn.STRAIGHT,
    ) -> Optional[RoutePlan]:
        """Minimum-link-length route from ``(src, entry)`` to ``dst``.

        Dijkstra over ``(node, entry approach)`` states — the entry arm
        matters because the three turns reach different exit arms and a
        U-turn is not a movement of the geometry.  ``final_turn`` is
        the movement performed at ``dst`` itself (the route's purpose
        is to *reach* ``dst``; what the vehicle does there is the
        caller's business).  Returns ``None`` when ``dst`` is
        unreachable.
        """
        self.spec.node(src)
        self.spec.node(dst)
        if src == dst:
            return self.route(src, entry, [final_turn])
        start = (src, entry)
        dist: Dict[Tuple[str, Approach], float] = {start: 0.0}
        prev: Dict[Tuple[str, Approach], Tuple[Tuple[str, Approach], Turn]] = {}
        counter = itertools.count()
        heap: List = [(0.0, next(counter), start)]
        best: Optional[Tuple[str, Approach]] = None
        while heap:
            d, _, state = heapq.heappop(heap)
            if d > dist.get(state, float("inf")):
                continue
            node, approach = state
            if node == dst:
                best = state
                break
            for turn in Turn:
                arm = exit_approach(approach, turn)
                link = self.spec.out_link(node, arm)
                if link is None:
                    continue
                nxt = (link.dst, link.entry_approach)
                nd = d + link.length
                if nd < dist.get(nxt, float("inf")) - 1e-12:
                    dist[nxt] = nd
                    prev[nxt] = (state, turn)
                    heapq.heappush(heap, (nd, next(counter), nxt))
        if best is None:
            return None
        turns: List[Turn] = [final_turn]
        state = best
        while state != start:
            state, turn = prev[state]
            turns.insert(0, turn)
        return self.route(src, entry, turns)

    # -- helpers -----------------------------------------------------------
    def turns_for_arms(
        self, entry: Approach, arms: Sequence[Approach]
    ) -> List[Turn]:
        """Convert an exit-arm sequence into turns via :func:`turn_for`.

        Raises ``ValueError`` on a U-turn (``turn_for`` returns None).
        """
        turns: List[Turn] = []
        approach = entry
        for arm in arms:
            turn = turn_for(approach, arm)
            if turn is None:
                raise ValueError(
                    f"arm sequence requires a U-turn at approach "
                    f"{approach.value!r}"
                )
            turns.append(turn)
            approach = arm.opposite
        return turns
