"""Multi-intersection corridor networks (the grid layer).

One :class:`~repro.sim.world.World` is a single four-way intersection;
this package lifts it to a *routed directed graph* of intersections
sharing one DES environment and one wireless medium:

* :mod:`repro.grid.spec` — the pure-data network description
  (:class:`GridSpec` / :class:`NodeSpec` / :class:`LinkSpec`, JSON
  round-trippable, plus the :func:`corridor_spec` factory);
* :mod:`repro.grid.routing` — :class:`RoutePlan` construction: explicit
  turn walks, seeded :class:`RouteMix` extension and static shortest
  paths over ``(node, entry approach)`` states;
* :mod:`repro.grid.traffic` — Poisson boundary workloads
  (:class:`GridPoissonTraffic` -> :class:`GridArrival`), draw-order
  compatible with :class:`~repro.traffic.PoissonTraffic` on one node;
* :mod:`repro.grid.world` — :class:`GridWorld`: one IM per node (mixed
  policies allowed), per-node safety monitors and watchdogs, and the
  link hand-off that re-spawns an exiting vehicle at the next node with
  its radio address, drifting clock and record lineage intact;
* :mod:`repro.grid.runner` — :func:`run_grid` one-liners and
  :func:`sweep_grid` parallel replication.

A 1-node grid is bit-identical to the plain single-intersection world
(the golden equivalence suite pins it), so corridor results extend —
never fork — the paper-reproduction metrics.
"""

from repro.grid.routing import Hop, RouteMix, RoutePlan, Router
from repro.grid.runner import run_grid, sweep_grid
from repro.grid.spec import GridSpec, LinkSpec, NodeSpec, corridor_spec
from repro.grid.traffic import GridArrival, GridPoissonTraffic
from repro.grid.world import CorridorRecord, GridResult, GridWorld

__all__ = [
    "CorridorRecord",
    "GridArrival",
    "GridPoissonTraffic",
    "GridResult",
    "GridSpec",
    "GridWorld",
    "Hop",
    "LinkSpec",
    "NodeSpec",
    "RouteMix",
    "RoutePlan",
    "Router",
    "corridor_spec",
    "run_grid",
    "sweep_grid",
]
