"""Structured observability: event bus, exchange spans, exporters.

Layer level 0 — imports nothing from the rest of the package.  See
README "Observability" for the event vocabulary and the wiring map.
"""

from repro.obs.events import NULL_LOG, EventLog, NullLog, ObsEvent
from repro.obs.export import to_chrome_trace, to_jsonl
from repro.obs.spans import ExchangeSpan, build_spans, percentile, span_stats

__all__ = [
    "EventLog",
    "ExchangeSpan",
    "NULL_LOG",
    "NullLog",
    "ObsEvent",
    "build_spans",
    "percentile",
    "span_stats",
    "to_chrome_trace",
    "to_jsonl",
]
