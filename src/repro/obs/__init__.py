"""Structured observability: event bus, exchange spans, streaming
metrics and exporters.

Layer level 0 — imports nothing from the rest of the package.  See
README "Observability" for the event vocabulary and the wiring map.
"""

from repro.obs.events import NULL_LOG, EventLog, NullLog, ObsEvent
from repro.obs.export import to_chrome_trace, to_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    RTD_BUCKETS,
    merge_metrics_snapshots,
)
from repro.obs.prom import (
    metrics_to_csv,
    metrics_to_jsonl,
    parse_prometheus,
    to_prometheus,
)
from repro.obs.spans import ExchangeSpan, build_spans, percentile, span_stats

__all__ = [
    "Counter",
    "EventLog",
    "ExchangeSpan",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_METRICS",
    "NullLog",
    "NullMetrics",
    "ObsEvent",
    "RTD_BUCKETS",
    "build_spans",
    "merge_metrics_snapshots",
    "metrics_to_csv",
    "metrics_to_jsonl",
    "parse_prometheus",
    "percentile",
    "span_stats",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
]
