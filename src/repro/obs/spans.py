"""Exchange-span reconstruction from the event bus.

One *span* is the full lifetime of a single request/response
transaction, keyed by its correlation id (the request message's
``seq``, minted in :class:`~repro.protocol.loop.RequestLoop` and
propagated through message headers by the channel and the IM):

.. code-block:: text

    span.request ──> net.send ──> net.deliver ──> im.recv
        (TT)                                        │
                                            im.compute.begin
                                            im.compute.end (service)
                                                    │
    span.reply  <── net.deliver <── net.send <── im.reply
      (RTD)
        │
    vehicle.execute (TE)

A dropped reply leaves the span *incomplete* (it ends in
``span.timeout`` instead — the vehicle retransmits under a fresh
correlation id, so retries never double-count latency); a duplicated
reply is suppressed by the receiver-side dedup before it can reach the
:class:`~repro.protocol.loop.RequestLoop`, so every span folds at most
one ``span.reply``.  The fault property suite pins both.

:func:`build_spans` is a single pass over an event list;
:func:`span_stats` folds the spans into the flat p50/p95/max RTD and
compute-delay histogram dict that rides on
:attr:`repro.sim.metrics.SimResult.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.events import ObsEvent

__all__ = ["ExchangeSpan", "build_spans", "percentile", "span_stats"]


@dataclass
class ExchangeSpan:
    """Reconstructed timeline of one request/response transaction."""

    corr: int
    actor: str
    kind: str = ""
    #: Sim time the request left the vehicle's protocol loop.
    t_request: Optional[float] = None
    #: Local-clock transmission timestamp (``TT``), when the request
    #: carried one (crossing requests do; sync requests use ``t0``).
    tt: Optional[float] = None
    #: Sim time the IM's receive loop admitted the request.
    t_im_recv: Optional[float] = None
    #: Sim time the IM's compute worker picked the request up.
    t_compute_begin: Optional[float] = None
    #: Sim time the (simulated) computation finished.
    t_compute_end: Optional[float] = None
    #: Sim time the IM handed the reply to the channel.
    t_reply_sent: Optional[float] = None
    #: Sim time the matching reply reached the vehicle's loop.
    t_reply: Optional[float] = None
    #: Measured round trip (``span.reply`` payload), seconds.
    rtd: Optional[float] = None
    #: Commanded execution time ``TE`` (Crossroads) when known.
    te: Optional[float] = None
    #: Sim time the vehicle committed the granted plan.
    t_execute: Optional[float] = None
    #: The exchange ended in a vehicle-side timeout (reply lost or too
    #: late); the retransmission opens a *new* span.
    timed_out: bool = False
    #: ``span.reply`` events folded in (receiver dedup bounds this at 1).
    replies: int = 0
    #: Channel drop reasons seen for messages of this exchange.
    drops: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Request observed and exactly one matching reply arrived."""
        return self.t_request is not None and self.t_reply is not None

    @property
    def incomplete(self) -> bool:
        return not self.complete

    @property
    def retried(self) -> bool:
        """The vehicle gave up on this exchange and retransmitted."""
        return self.timed_out

    @property
    def compute_delay(self) -> Optional[float]:
        """IM computation (service) time of this exchange, seconds."""
        if self.t_compute_begin is None or self.t_compute_end is None:
            return None
        return self.t_compute_end - self.t_compute_begin

    @property
    def end_time(self) -> Optional[float]:
        """Last known sim time of the span (reply, execute or IM end)."""
        candidates = [
            t
            for t in (self.t_reply, self.t_execute, self.t_reply_sent,
                      self.t_compute_end, self.t_request)
            if t is not None
        ]
        return max(candidates) if candidates else None


def build_spans(events: Iterable[ObsEvent]) -> List[ExchangeSpan]:
    """Fold an event stream into per-correlation-id exchange spans.

    Events with ``corr == 0`` (uncorrelated lifecycle/kernel records)
    are ignored.  Order-insensitive except that the opening
    ``span.request`` names the owning actor; spans whose request was
    evicted from the ring buffer still materialise from later events
    (flagged incomplete, never crashing the reconstruction).
    """
    spans: Dict[int, ExchangeSpan] = {}

    def span_for(event: ObsEvent) -> ExchangeSpan:
        span = spans.get(event.corr)
        if span is None:
            span = ExchangeSpan(corr=event.corr, actor="?")
            spans[event.corr] = span
        return span

    for event in events:
        if event.corr == 0:
            continue
        kind = event.kind
        if kind == "span.request":
            span = span_for(event)
            span.actor = event.actor
            span.kind = event.data.get("msg", span.kind)
            span.t_request = event.t
            if "tt" in event.data:
                span.tt = event.data["tt"]
        elif kind == "span.reply":
            span = span_for(event)
            span.t_reply = event.t
            span.replies += 1
            if "rtd" in event.data:
                span.rtd = event.data["rtd"]
        elif kind == "span.timeout":
            span_for(event).timed_out = True
        elif kind == "im.recv":
            span_for(event).t_im_recv = event.t
        elif kind == "im.compute.begin":
            span_for(event).t_compute_begin = event.t
        elif kind == "im.compute.end":
            span_for(event).t_compute_end = event.t
        elif kind == "im.reply":
            span = span_for(event)
            span.t_reply_sent = event.t
            if "te" in event.data:
                span.te = event.data["te"]
        elif kind == "vehicle.execute":
            span = span_for(event)
            span.t_execute = event.t
            if "te" in event.data:
                span.te = event.data["te"]
        elif kind == "net.drop":
            span_for(event).drops.append(event.data.get("reason", "?"))
    return sorted(
        spans.values(),
        key=lambda s: (s.t_request if s.t_request is not None else -1.0, s.corr),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default), pure python.

    Returns 0.0 for an empty sequence — histogram entries must stay
    defined (and deterministic) even when nothing was measured.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def span_stats(spans: Sequence[ExchangeSpan]) -> Dict[str, float]:
    """Flat histogram summary of a span list.

    The dict is what :class:`~repro.sim.world.World` folds into
    :attr:`~repro.sim.metrics.SimResult.obs`: span counts plus
    p50/p95/max of the measured RTD (complete spans) and of the IM
    compute delay (spans that reached the compute worker).  All values
    derive from sim-time stamps, so they are deterministic per seed.
    """
    rtds = [s.rtd for s in spans if s.complete and s.rtd is not None]
    computes = [s.compute_delay for s in spans if s.compute_delay is not None]
    return {
        "spans_total": float(len(spans)),
        "spans_complete": float(sum(1 for s in spans if s.complete)),
        "spans_incomplete": float(sum(1 for s in spans if s.incomplete)),
        "spans_retried": float(sum(1 for s in spans if s.retried)),
        "spans_executed": float(
            sum(1 for s in spans if s.t_execute is not None)
        ),
        "rtd_p50_s": percentile(rtds, 50.0),
        "rtd_p95_s": percentile(rtds, 95.0),
        "rtd_max_s": max(rtds) if rtds else 0.0,
        "compute_p50_s": percentile(computes, 50.0),
        "compute_p95_s": percentile(computes, 95.0),
        "compute_max_s": max(computes) if computes else 0.0,
    }
