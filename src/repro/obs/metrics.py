"""Streaming metrics: sim-time-bucketed counters, gauges, histograms.

Where :mod:`repro.obs.events` records *what happened* (a bounded ring
of discrete events, reconstructed into spans after the run), this
module records *how much / how many over time* — the live health
signals the ROADMAP's IM-as-a-service mode needs online: kernel event
rate, per-approach queue depth, IM request backlog, reservation-table
and tile-bitmap occupancy, degraded-vehicle population, transport
in-flight and drop rates, and an online round-trip-delay distribution.

Design rules (all load-bearing):

* **Sim-time buckets.**  Every sample carries the simulated timestamp
  of the emitting site; series aggregate per fixed-width bucket
  (``bucket_dt`` simulated seconds).  Nothing here ever reads a wall
  clock, so two runs of one seed produce byte-equal snapshots.
* **Online quantiles.**  :class:`Histogram` keeps only fixed-bound
  bucket counts (Prometheus ``le`` semantics) and computes p50/p95/p99
  by linear interpolation inside the target bucket — no samples are
  retained, so memory stays O(bounds) for arbitrarily long runs.
* **Picklable, mergeable snapshots.**  :meth:`MetricsRegistry.snapshot`
  is plain dicts/lists/floats, rebuilt by
  :meth:`MetricsRegistry.from_snapshot` and folded by
  :func:`merge_metrics_snapshots` — exactly the
  :class:`repro.perf.PerfCounters` contract, so snapshots ride back
  from :mod:`repro.sim.parallel` workers and merge deterministically
  (counters and histograms add; gauges take the elementwise maximum,
  i.e. peak-across-runs, which is order-insensitive).
* **Zero-cost off.**  :data:`NULL_METRICS` is a no-op registry with
  ``enabled = False``; instrumented sites additionally keep a plain
  ``None`` check on their hot paths.  Attaching a real registry never
  touches an RNG and never schedules a DES event, so a metered run's
  ``SimResult.summary()`` is bit-identical to an unmetered one — the
  equivalence test pins this like the traced ≡ untraced one.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "RTD_BUCKETS",
    "merge_metrics_snapshots",
]

#: Default histogram bounds for protocol round-trip delays, seconds.
#: Centred on the testbed's 7.5 ms WC-RTD with headroom for fault
#: regimes (delay spikes push round trips past 100 ms).
RTD_BUCKETS: Tuple[float, ...] = (
    0.002, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03,
    0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1.0,
)

#: Default bounds for generic value histograms.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity + per-time-bucket series bookkeeping."""

    kind = "abstract"
    __slots__ = ("name", "label_items", "_bucket_dt", "series")

    def __init__(self, name: str, label_items: LabelItems, bucket_dt: float):
        self.name = name
        self.label_items = label_items
        self._bucket_dt = bucket_dt
        #: bucket index (``floor(t / bucket_dt)``) -> aggregated value.
        self.series: Dict[int, float] = {}

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self.label_items)

    def _bucket(self, t: float) -> int:
        return int(t // self._bucket_dt)

    def key(self) -> Tuple[str, LabelItems]:
        return (self.name, self.label_items)

    def __repr__(self) -> str:
        tags = ", ".join(f"{k}={v}" for k, v in self.label_items)
        suffix = f"{{{tags}}}" if tags else ""
        return f"{type(self).__name__}({self.name}{suffix})"


class Counter(_Instrument):
    """Monotonic total plus a per-bucket increment series."""

    kind = "counter"
    __slots__ = ("total",)

    def __init__(self, name: str, label_items: LabelItems, bucket_dt: float):
        super().__init__(name, label_items, bucket_dt)
        self.total = 0.0

    def inc(self, n: float = 1.0, t: Optional[float] = None) -> None:
        """Add ``n`` (must be non-negative — counters are monotonic)."""
        if n < 0:
            raise ValueError(f"counter increments must be non-negative, got {n!r}")
        self.total += n
        if t is not None:
            bucket = self._bucket(t)
            self.series[bucket] = self.series.get(bucket, 0.0) + n


class Gauge(_Instrument):
    """Last-written value plus peak and a last-per-bucket series."""

    kind = "gauge"
    __slots__ = ("value", "peak")

    def __init__(self, name: str, label_items: LabelItems, bucket_dt: float):
        super().__init__(name, label_items, bucket_dt)
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float, t: Optional[float] = None) -> None:
        value = float(value)
        self.value = value
        if value > self.peak:
            self.peak = value
        if t is not None:
            self.series[self._bucket(t)] = value


class Histogram(_Instrument):
    """Fixed-bound distribution with online quantiles.

    ``bounds`` are the finite upper bucket edges (Prometheus ``le``
    semantics: ``counts[i]`` holds observations ``<= bounds[i]`` and
    above the previous edge; the final slot is the +Inf overflow).
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        label_items: LabelItems,
        bucket_dt: float,
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, label_items, bucket_dt)
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("histogram bounds must be finite (the +Inf "
                             "overflow bucket is implicit)")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0.0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0.0

    def observe(self, value: float, t: Optional[float] = None) -> None:
        value = float(value)
        self.sum += value
        self.count += 1.0
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1.0
        if t is not None:
            bucket = self._bucket(t)
            self.series[bucket] = self.series.get(bucket, 0.0) + 1.0

    def quantile(self, q: float) -> float:
        """Online quantile by linear interpolation inside the target
        bucket (``histogram_quantile`` semantics; the overflow bucket
        is clamped to the highest finite bound).  0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count <= 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count <= 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                if upper <= lower:
                    return upper
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self.bounds[-1]


class MetricsRegistry:
    """Get-or-create home for every instrument of one run.

    One registry serves a whole world (or grid — per-node series are
    distinguished by a ``node`` label).  Instruments are identified by
    ``(name, sorted label items)``; asking twice returns the same
    object, so emitting sites may cache them or not, identically.
    """

    enabled = True

    def __init__(self, bucket_dt: float = 1.0):
        if bucket_dt <= 0:
            raise ValueError("bucket_dt must be positive")
        self.bucket_dt = float(bucket_dt)
        self._instruments: Dict[Tuple[str, LabelItems], _Instrument] = {}

    # -- get-or-create -----------------------------------------------------
    def _get(self, cls, name: str, labels, **kwargs) -> _Instrument:
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], self.bucket_dt, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])!r} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=buckets)

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, sorted by (name, labels)."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> Dict:
        """Plain-data picklable form (the ``SimResult.metrics`` payload)."""
        series = []
        for instrument in self.instruments():
            entry: Dict = {
                "name": instrument.name,
                "type": instrument.kind,
                "labels": instrument.labels,
                "series": {int(k): float(v)
                           for k, v in sorted(instrument.series.items())},
            }
            if isinstance(instrument, Counter):
                entry["total"] = instrument.total
            elif isinstance(instrument, Gauge):
                entry["value"] = instrument.value
                entry["peak"] = instrument.peak
            else:
                entry["bounds"] = list(instrument.bounds)
                entry["counts"] = list(instrument.counts)
                entry["sum"] = instrument.sum
                entry["count"] = instrument.count
            series.append(entry)
        return {"bucket_dt": self.bucket_dt, "series": series}

    @classmethod
    def from_snapshot(cls, snapshot: Dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict."""
        registry = cls(bucket_dt=snapshot.get("bucket_dt", 1.0))
        registry.merge(snapshot)
        return registry

    def merge(self, snapshot: Dict) -> "MetricsRegistry":
        """Fold a snapshot into this registry (returns self).

        Counters and histograms add; gauges keep the elementwise
        maximum (value, peak and per-bucket series) so the merge is
        associative, commutative and independent of worker scheduling
        — the jobs=1 ≡ jobs=2 identity test relies on that.
        """
        if snapshot.get("series") and snapshot.get("bucket_dt") != self.bucket_dt:
            raise ValueError(
                f"cannot merge snapshots with bucket_dt "
                f"{snapshot.get('bucket_dt')!r} into a registry at "
                f"{self.bucket_dt!r}"
            )
        for entry in snapshot.get("series", ()):
            name, labels, kind = entry["name"], entry["labels"], entry["type"]
            series = {int(k): float(v) for k, v in entry["series"].items()}
            if kind == "counter":
                counter = self.counter(name, labels)
                counter.total += entry["total"]
                for bucket, value in series.items():
                    counter.series[bucket] = counter.series.get(bucket, 0.0) + value
            elif kind == "gauge":
                gauge = self.gauge(name, labels)
                gauge.value = max(gauge.value, entry["value"])
                gauge.peak = max(gauge.peak, entry["peak"])
                for bucket, value in series.items():
                    gauge.series[bucket] = max(gauge.series.get(bucket, value), value)
            elif kind == "histogram":
                histogram = self.histogram(name, labels, buckets=entry["bounds"])
                if list(histogram.bounds) != [float(b) for b in entry["bounds"]]:
                    raise ValueError(
                        f"histogram {name!r}: cannot merge mismatched bounds "
                        f"{entry['bounds']!r} into {list(histogram.bounds)!r}"
                    )
                for i, count in enumerate(entry["counts"]):
                    histogram.counts[i] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
                for bucket, value in series.items():
                    histogram.series[bucket] = (
                        histogram.series.get(bucket, 0.0) + value
                    )
            else:
                raise ValueError(f"unknown metric type {kind!r}")
        return self

    # -- summaries ---------------------------------------------------------
    def flat(self) -> Dict[str, float]:
        """Flat headline dict (CLI tables, quick asserts): counters
        report their total, gauges last value + peak, histograms
        count/sum and online p50/p95/p99."""
        out: Dict[str, float] = {}
        for instrument in self.instruments():
            tags = ",".join(f"{k}={v}" for k, v in instrument.label_items)
            base = f"{instrument.name}{{{tags}}}" if tags else instrument.name
            if isinstance(instrument, Counter):
                out[base] = instrument.total
            elif isinstance(instrument, Gauge):
                out[base] = instrument.value
                out[f"{base}.peak"] = instrument.peak
            else:
                out[f"{base}.count"] = instrument.count
                out[f"{base}.sum"] = instrument.sum
                out[f"{base}.p50"] = instrument.quantile(0.50)
                out[f"{base}.p95"] = instrument.quantile(0.95)
                out[f"{base}.p99"] = instrument.quantile(0.99)
        return out


def merge_metrics_snapshots(snapshots: Iterable[Dict]) -> Dict:
    """Fold many worker snapshots into one (deterministic: the merge
    operators are order-insensitive, so jobs=1 and jobs=N replications
    of the same seeds agree exactly).  Empty input -> empty snapshot."""
    merged: Optional[MetricsRegistry] = None
    for snapshot in snapshots:
        if not snapshot or not snapshot.get("series"):
            continue
        if merged is None:
            merged = MetricsRegistry(bucket_dt=snapshot.get("bucket_dt", 1.0))
        merged.merge(snapshot)
    return merged.snapshot() if merged is not None else {}


class _NullInstrument:
    """Accepts every sample and records nothing."""

    __slots__ = ()

    def inc(self, n: float = 1.0, t: Optional[float] = None) -> None:
        pass

    def set(self, value: float, t: Optional[float] = None) -> None:
        pass

    def observe(self, value: float, t: Optional[float] = None) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The do-nothing registry (``enabled = False``).

    Instrumented sites treat ``metrics=None`` and a null registry
    identically: composers normalise a disabled registry to ``None``
    at construction, so the per-sample hot path is one ``is None``
    check — metrics-off runs stay bit-identical *and* pay nothing.
    """

    enabled = False
    bucket_dt = 1.0

    def counter(self, name: str, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, labels=None, buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> List:
        return []

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict:
        return {}

    def flat(self) -> Dict[str, float]:
        return {}


NULL_METRICS = NullMetrics()
