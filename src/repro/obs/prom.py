"""Metrics exporters: Prometheus text format, CSV and JSONL series.

All three consume the plain-data :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
dict, so they work identically on a live registry, a pickled worker
snapshot, or a merged replication — and the upcoming service facade
can serve :func:`to_prometheus` straight from a scrape endpoint.

:func:`parse_prometheus` is the matching (deliberately strict) reader
used by the CI round-trip check: every exported sample must parse back
to its exact value.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

__all__ = [
    "metrics_to_csv",
    "metrics_to_jsonl",
    "parse_prometheus",
    "to_prometheus",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_name(name: str, namespace: str) -> str:
    return f"{namespace}_{_NAME_RE.sub('_', name)}"


def _label_str(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", r"\\").replace('"', r"\""))
        for k, v in items
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: Dict, namespace: str = "repro") -> str:
    """Render a metrics snapshot in the Prometheus text exposition
    format (one scrape's worth: totals, last gauge values, cumulative
    histogram buckets — the per-time-bucket series are a CSV/JSONL
    concern, a scrape endpoint only ever shows current state)."""
    lines: List[str] = []
    typed: Dict[str, str] = {}
    for entry in snapshot.get("series", ()):
        kind = entry["type"]
        name = _prom_name(entry["name"], namespace)
        if kind == "counter":
            name += "_total"
        labels = entry["labels"]
        if name not in typed:
            typed[name] = kind
            lines.append(f"# HELP {name} repro series {entry['name']}")
            lines.append(f"# TYPE {name} {kind}")
        elif typed[name] != kind:
            raise ValueError(f"metric {name!r} exported as both "
                             f"{typed[name]} and {kind}")
        if kind == "counter":
            lines.append(f"{name}{_label_str(labels)} {_fmt(entry['total'])}")
        elif kind == "gauge":
            lines.append(f"{name}{_label_str(labels)} {_fmt(entry['value'])}")
        elif kind == "histogram":
            cumulative = 0.0
            for bound, count in zip(entry["bounds"], entry["counts"]):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_label_str(labels, ('le', _fmt(bound)))} "
                    f"{_fmt(cumulative)}"
                )
            cumulative += entry["counts"][-1]
            lines.append(
                f"{name}_bucket{_label_str(labels, ('le', '+Inf'))} "
                f"{_fmt(cumulative)}"
            )
            lines.append(f"{name}_sum{_label_str(labels)} {_fmt(entry['sum'])}")
            lines.append(f"{name}_count{_label_str(labels)} {_fmt(entry['count'])}")
        else:
            raise ValueError(f"unknown metric type {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse Prometheus text format into ``(name, labels, value)``
    samples.  Strict by design — the CI check uses it to prove
    :func:`to_prometheus` output is well-formed — so any line that is
    neither a comment nor a valid sample raises :class:`ValueError`."""
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {raw!r}")
        labels: Dict[str, str] = {}
        body = match.group("labels")
        if body:
            consumed = 0
            for pair in _LABEL_RE.finditer(body):
                labels[pair.group(1)] = (
                    pair.group(2).replace(r"\"", '"').replace(r"\\", "\\")
                )
                consumed += len(pair.group(0))
            if consumed < len(body.replace(",", "")):
                raise ValueError(f"line {lineno}: malformed labels: {raw!r}")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {value_text!r}")
        samples.append((match.group("name"), labels, value))
    return samples


def metrics_to_csv(snapshot: Dict, path: Optional[str] = None) -> str:
    """Flatten the per-sim-time-bucket series to CSV rows
    ``metric,type,labels,t_start_s,value`` (counters: increments in
    the bucket; gauges: last value seen in the bucket; histograms:
    observations landing in the bucket)."""
    bucket_dt = snapshot.get("bucket_dt", 1.0)
    lines = ["metric,type,labels,t_start_s,value"]
    for entry in snapshot.get("series", ()):
        tags = ";".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
        for bucket, value in sorted(entry["series"].items()):
            lines.append(
                f"{entry['name']},{entry['type']},{tags},"
                f"{float(bucket) * bucket_dt:g},{_fmt(value)}"
            )
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def metrics_to_jsonl(snapshot: Dict, path: Optional[str] = None) -> str:
    """One JSON object per series, time buckets converted to absolute
    ``t_start_s`` keys — the machine-readable long-term form."""
    bucket_dt = snapshot.get("bucket_dt", 1.0)
    lines = []
    for entry in snapshot.get("series", ()):
        record = dict(entry)
        record["bucket_dt"] = bucket_dt
        record["series"] = {
            f"{float(bucket) * bucket_dt:g}": value
            for bucket, value in sorted(entry["series"].items())
        }
        lines.append(json.dumps(record, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
