"""Exporters: JSONL event dumps and Chrome trace-event (Perfetto) files.

Two serialisations of the same :class:`~repro.obs.events.EventLog`:

* :func:`to_jsonl` — one JSON object per event, in emission order.  The
  flat shape (``{"t": ..., "kind": ..., "actor": ..., ...}``) greps and
  ``jq``-s well and round-trips losslessly.
* :func:`to_chrome_trace` — the Chrome trace-event JSON that Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing`` load directly.
  Exchange spans become ``ph: "X"`` *complete* slices on their owning
  vehicle's track, IM computation becomes slices on the IM track, and
  point events (drops, timeouts, executes-at-TE) become ``ph: "i"``
  instants.  Timestamps are sim-time seconds scaled to microseconds
  (the format's native unit), so one sim second reads as one second on
  the Perfetto timeline.

Both functions accept an optional ``path``; when given, the rendered
text is also written to disk (UTF-8).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.events import ObsEvent
from repro.obs.spans import ExchangeSpan, build_spans

__all__ = ["to_chrome_trace", "to_jsonl"]

#: Sim seconds -> trace-event microseconds.
_US = 1_000_000.0

#: Point events rendered as Perfetto instants, with the slice track
#: they attach to ("actor" uses the emitting actor's own track).
_INSTANT_KINDS = {
    "net.drop": "actor",
    "span.timeout": "actor",
    "vehicle.execute": "actor",
    "vehicle.degraded": "actor",
    "im.drop_stale": "actor",
    "im.silent": "actor",
    "sched.blocked": "actor",
}


def to_jsonl(events: Iterable[ObsEvent], path: Optional[str] = None) -> str:
    """Render events as JSON Lines (one flat object per event)."""
    lines = [json.dumps(e.to_dict(), sort_keys=True) for e in events]
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def _tid_map(actors: Iterable[str]) -> Dict[str, int]:
    """Stable actor -> thread-id assignment (IM and subsystems first)."""

    def rank(actor: str) -> tuple:
        # IM first, then scheduler/kernel, then vehicles by numeric id.
        if actor == "IM":
            return (0, 0, actor)
        if not actor.startswith("V"):
            return (1, 0, actor)
        try:
            return (2, int(actor[1:]), actor)
        except ValueError:
            return (3, 0, actor)

    ordered = sorted(set(actors), key=rank)
    return {actor: tid for tid, actor in enumerate(ordered, start=1)}


def _span_slice(span: ExchangeSpan, tid: int) -> Optional[Dict[str, Any]]:
    """One ``ph: "X"`` slice covering a request/response exchange."""
    if span.t_request is None:
        return None
    end = span.end_time
    if end is None:
        return None
    args: Dict[str, Any] = {"corr": span.corr, "complete": span.complete}
    if span.tt is not None:
        args["tt"] = span.tt
    if span.rtd is not None:
        args["rtd_s"] = span.rtd
    if span.te is not None:
        args["te"] = span.te
    if span.compute_delay is not None:
        args["compute_s"] = span.compute_delay
    if span.timed_out:
        args["timed_out"] = True
    if span.drops:
        args["drops"] = list(span.drops)
    name = span.kind or "exchange"
    return {
        "name": f"{name}#{span.corr}",
        "cat": "exchange",
        "ph": "X",
        "ts": span.t_request * _US,
        "dur": max(end - span.t_request, 0.0) * _US,
        "pid": 1,
        "tid": tid,
        "args": args,
    }


def _compute_slice(span: ExchangeSpan, tid: int) -> Optional[Dict[str, Any]]:
    """One ``ph: "X"`` slice for the IM's computation of an exchange."""
    if span.t_compute_begin is None or span.t_compute_end is None:
        return None
    return {
        "name": f"im.compute#{span.corr}",
        "cat": "im",
        "ph": "X",
        "ts": span.t_compute_begin * _US,
        "dur": max(span.t_compute_end - span.t_compute_begin, 0.0) * _US,
        "pid": 1,
        "tid": tid,
        "args": {"corr": span.corr, "actor": span.actor},
    }


def to_chrome_trace(
    events: Sequence[ObsEvent],
    path: Optional[str] = None,
    spans: Optional[Sequence[ExchangeSpan]] = None,
) -> Dict[str, Any]:
    """Render an event list as a Perfetto-loadable Chrome trace dict.

    Parameters
    ----------
    events:
        The event stream (an :class:`~repro.obs.events.EventLog`
        iterates in emission order).
    path:
        When given, the JSON is also written to this file.
    spans:
        Pre-built exchange spans; reconstructed from ``events`` via
        :func:`~repro.obs.spans.build_spans` when omitted.
    """
    events = list(events)
    if spans is None:
        spans = build_spans(events)

    actors = {e.actor for e in events} | {s.actor for s in spans}
    actors.add("IM")
    tids = _tid_map(actors)
    im_tid = tids["IM"]

    records: List[Dict[str, Any]] = []
    # Track naming metadata (one per actor).
    for actor, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": actor},
            }
        )

    # Exchange + compute slices.
    for span in spans:
        tid = tids.get(span.actor, im_tid)
        slice_ = _span_slice(span, tid)
        if slice_ is not None:
            records.append(slice_)
        compute = _compute_slice(span, im_tid)
        if compute is not None:
            records.append(compute)

    # Point events.
    for event in events:
        if event.kind not in _INSTANT_KINDS:
            continue
        args = dict(event.data)
        if event.corr:
            args["corr"] = event.corr
        records.append(
            {
                "name": event.kind,
                "cat": event.kind.split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": event.t * _US,
                "pid": 1,
                "tid": tids.get(event.actor, im_tid),
                "args": args,
            }
        )

    trace = {"traceEvents": records, "displayTimeUnit": "ms"}
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(trace, fh)
    return trace
