"""The event bus: sim-time-stamped typed records with a bounded sink.

Crossroads' argument is about *where time goes* — WC-RTD = network +
IM-computation delay is exactly the quantity the TE-stamped protocol
removes from the safety buffer — so the observability layer records
*per-exchange* timelines, not just aggregates.  An :class:`EventLog`
is a ring buffer of :class:`ObsEvent` records emitted by every runtime
layer (DES kernel, channel, protocol machines, vehicle chassis, IM and
its scheduler).  Three design rules keep it safe to thread everywhere:

* **zero-cost when off** — every instrumented object holds an ``obs``
  attribute defaulting to the module-level :data:`NULL_LOG`; emit
  sites guard with ``if self.obs.enabled:``, a single attribute test,
  and the null sink's :meth:`~NullLog.emit` is a no-op.  Tracing never
  touches an RNG and never schedules a DES event, so a traced run's
  :meth:`~repro.sim.metrics.SimResult.summary` is bit-identical to an
  untraced one (CI pins this);
* **bounded memory** — the log is a ring buffer (``capacity`` newest
  events are retained; :attr:`EventLog.dropped` counts evictions), so
  a 200-vehicle fault storm cannot OOM the run;
* **correlation** — request/response exchanges carry a correlation id
  (the request's message ``seq``, minted by
  :class:`~repro.protocol.loop.RequestLoop` and propagated through
  message headers), so :mod:`repro.obs.spans` can rebuild the full
  TT -> IM-compute -> reply -> TE timeline of every transaction.

This module sits at layer level 0 (with :mod:`repro.des` and
:mod:`repro.perf`) and imports nothing from the rest of the package.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["EventLog", "NULL_LOG", "NullLog", "ObsEvent"]


@dataclass(frozen=True)
class ObsEvent:
    """One sim-time-stamped record on the bus.

    Attributes
    ----------
    t:
        Simulation time of the event, seconds.
    kind:
        Dotted event type, e.g. ``"net.send"``, ``"span.request"``,
        ``"im.compute.end"`` (the full vocabulary is documented in
        README "Observability").
    actor:
        The emitting endpoint: a radio address (``"V3"``, ``"IM"``)
        or a subsystem name (``"kernel"``, ``"sched"``).
    corr:
        Correlation id tying the event to one request/response
        exchange (the request message's ``seq``); 0 when the event
        belongs to no exchange.
    data:
        Free-form payload (message type, drop reason, TE, ...).
    """

    t: float
    kind: str
    actor: str
    corr: int = 0
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (used by the JSONL exporter)."""
        out: Dict[str, Any] = {"t": self.t, "kind": self.kind, "actor": self.actor}
        if self.corr:
            out["corr"] = self.corr
        if self.data:
            out.update(self.data)
        return out


class NullLog:
    """The zero-cost sink: swallows everything, reports disabled.

    Instrumented classes default their ``obs`` attribute to the shared
    :data:`NULL_LOG` instance so emit sites can always write
    ``if self.obs.enabled: self.obs.emit(...)`` without a None check.
    """

    #: Emit sites short-circuit on this.
    enabled = False
    #: High-volume DES-kernel events are additionally gated on this.
    kernel = False
    #: Ring-buffer eviction counter (always 0 here).
    dropped = 0

    def emit(self, kind: str, t: float, actor: str, corr: int = 0, **data) -> None:
        """Discard the event."""

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(())

    def __repr__(self) -> str:
        return "NullLog()"


#: Shared null sink (stateless, safe to share between worlds).
NULL_LOG = NullLog()


class EventLog:
    """Bounded, sim-time-ordered event sink.

    Parameters
    ----------
    capacity:
        Maximum retained events (ring buffer: the *newest* events are
        kept and :attr:`dropped` counts evictions).  ``None`` retains
        everything — fine for tests, risky for 200-vehicle storms.
    kernel:
        Also record the high-volume per-DES-event ``des.step`` records
        (off by default: one per processed kernel event).
    """

    enabled = True

    def __init__(self, capacity: Optional[int] = 500_000, kernel: bool = False):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        self.kernel = kernel
        self._events: "deque[ObsEvent]" = deque(maxlen=capacity)
        #: Total events ever emitted (including evicted ones).
        self.emitted = 0

    # -- emission -----------------------------------------------------------
    def emit(self, kind: str, t: float, actor: str, corr: int = 0, **data) -> ObsEvent:
        """Append one typed record (returns it, mainly for tests)."""
        event = ObsEvent(t=float(t), kind=kind, actor=actor, corr=corr, data=data)
        self._events.append(event)
        self.emitted += 1
        return event

    # -- queries ------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self.emitted - len(self._events)

    @property
    def events(self) -> List[ObsEvent]:
        """Retained events, oldest first (a copy)."""
        return list(self._events)

    def by_kind(self, *kinds: str) -> List[ObsEvent]:
        """Retained events whose ``kind`` is one of ``kinds``."""
        return [e for e in self._events if e.kind in kinds]

    def by_corr(self, corr: int) -> List[ObsEvent]:
        """Retained events correlated to one exchange."""
        return [e for e in self._events if e.corr == corr]

    def counts(self) -> Counter:
        """``Counter`` of retained event kinds."""
        return Counter(e.kind for e in self._events)

    def clear(self) -> None:
        """Drop every retained event (``emitted`` keeps counting)."""
        self._events.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return (
            f"EventLog({len(self._events)} events, dropped={self.dropped}, "
            f"capacity={self.capacity})"
        )
