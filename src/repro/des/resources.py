"""Shared resources for the DES kernel: stores and counted resources.

Only the pieces this project actually needs are implemented:

* :class:`Store` — an unbounded-or-bounded FIFO buffer of items; radios
  use one per endpoint as a receive queue.
* :class:`PriorityStore` — a store that releases the smallest item first;
  the intersection manager uses one keyed by request timestamp so that
  simultaneous arrivals are served deterministically.
* :class:`Resource` — a counted semaphore with FIFO queuing; used to
  model the single IM compute core (requests serialise, which is exactly
  what creates the worst-case computation delay of Ch 4).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional

from repro.des.core import Environment, Event, SimulationError

__all__ = ["PriorityStore", "Resource", "Store", "StoreFullError"]


class StoreFullError(SimulationError):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class Store:
    """FIFO item buffer with blocking ``get`` and optional capacity.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of buffered items (``inf`` by default).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        """Snapshot of currently buffered items (oldest first)."""
        return list(self._items)

    # -- internal ---------------------------------------------------------
    def _pop_item(self) -> Any:
        return self._items.popleft()

    def _push_item(self, item: Any) -> None:
        self._items.append(item)

    def _dispatch(self) -> None:
        """Match waiting getters/putters with available items/slots."""
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered:  # cancelled
                continue
            getter.succeed(self._pop_item())
        while self._putters and len(self._items) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                continue
            self._push_item(putter._pending_item)
            putter.succeed()
            # A put may unblock a getter queued after the last check.
            while self._getters and self._items:
                getter = self._getters.popleft()
                if getter.triggered:
                    continue
                getter.succeed(self._pop_item())

    # -- public API -------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Event that succeeds once ``item`` has been stored."""
        event = self.env.event()
        event._pending_item = item
        self._putters.append(event)
        self._dispatch()
        return event

    def put_nowait(self, item: Any) -> None:
        """Store ``item`` immediately or raise :class:`StoreFullError`."""
        if len(self._items) >= self.capacity:
            raise StoreFullError(f"store at capacity {self.capacity}")
        self._push_item(item)
        self._dispatch()

    def get(self) -> Event:
        """Event that succeeds with the next item (FIFO order)."""
        event = self.env.event()
        self._getters.append(event)
        self._dispatch()
        return event

    def get_nowait(self) -> Any:
        """Pop the next item immediately or raise if empty."""
        if not self._items:
            raise SimulationError("get_nowait() on an empty store")
        item = self._pop_item()
        self._dispatch()
        return item

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending ``get`` so it cannot consume an item.

        Needed by receive-with-timeout patterns: an abandoned getter
        would otherwise silently swallow the next item.  Cancelling an
        already-satisfied get is a no-op.
        """
        if event.triggered:
            return
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class PriorityStore(Store):
    """A :class:`Store` whose ``get`` returns the *smallest* item.

    Items must be mutually orderable; ``(priority, seq, payload)`` tuples
    are the usual shape.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list:
        return sorted(self._heap)

    def _pop_item(self) -> Any:
        return heapq.heappop(self._heap)

    def _push_item(self, item: Any) -> None:
        heapq.heappush(self._heap, item)

    def _dispatch(self) -> None:
        while self._getters and self._heap:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self._pop_item())
        while self._putters and len(self._heap) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                continue
            self._push_item(putter._pending_item)
            putter.succeed()
            while self._getters and self._heap:
                getter = self._getters.popleft()
                if getter.triggered:
                    continue
                getter.succeed(self._pop_item())


class Resource:
    """Counted resource with FIFO request queue.

    Usage::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: List[Event] = []
        self._waiting: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiting)

    def request(self) -> Event:
        """Event that succeeds when the resource is granted."""
        event = self.env.event()
        if len(self._users) < self.capacity:
            self._users.append(event)
            event.succeed()
        else:
            self._waiting.append(event)
        return event

    def release(self, request: Event) -> None:
        """Release a previously granted ``request``."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("release() of a request that is not held")
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            if nxt.triggered:
                continue
            self._users.append(nxt)
            nxt.succeed()

    def cancel(self, request: Event) -> None:
        """Withdraw a queued (not yet granted) request."""
        if request in self._users:
            raise SimulationError("cancel() of a granted request; release it")
        try:
            self._waiting.remove(request)
        except ValueError:
            raise SimulationError("cancel() of an unknown request")
