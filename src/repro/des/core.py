"""Core event loop: :class:`Environment`, events, processes.

The design follows the classic event-queue architecture used by simpy:

* An :class:`Event` is a one-shot future.  It starts *pending*, becomes
  *triggered* when a value (or an exception) is assigned and it is placed
  on the environment's queue, and becomes *processed* once its callbacks
  have run.
* A :class:`Process` wraps a generator.  Each value the generator yields
  must be an :class:`Event`; the process suspends until that event is
  processed, then resumes with the event's value (or the event's
  exception is thrown into the generator).
* The :class:`Environment` holds the clock and a priority queue of
  triggered events ordered by ``(time, priority, sequence)``.

The kernel is intentionally strict: waiting on an already-failed event
re-raises, yielding a non-event raises ``SimulationError``, and time can
never run backwards.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Priority for "urgent" events (process resumption) — lower runs first.
URGENT = 0
#: Default priority for ordinary events.
NORMAL = 1


class SimulationError(Exception):
    """Raised for kernel misuse (bad yields, double triggers, ...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    Attributes
    ----------
    cause:
        The object passed to :meth:`Process.interrupt`, conventionally a
        short description of why the process was interrupted.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot future that processes can wait on.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event.PENDING
        self._ok: bool = True
        #: Whether a raised failure was consumed by a waiter.
        self._defused: bool = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or an exception has been assigned."""
        return self._value is not Event.PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully done)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event is not yet triggered."""
        if self._value is Event.PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing ever waits on a failed event, the environment
        re-raises it at the end of the step ("errors should never pass
        silently").
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used as a callback)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {hex(id(self))}>"


class Initialize(Event):
    """Internal: immediately-scheduled event that starts a process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running process.  Also an event that triggers when it ends.

    The wrapped generator may ``return`` a value; that value becomes the
    process-event's value, so processes can be composed::

        result = yield env.process(sub_task(env))
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise SimulationError("a process cannot interrupt itself this way")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event, URGENT, 0.0)

    def _resume(self, event: Event) -> None:
        """Resume the generator with ``event``'s outcome."""
        self.env._active_process = self
        # Detach from the event we were actually waiting for (it may not
        # be `event` if we were interrupted).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process yielded a non-event: {next_event!r}"
            )
            self._generator.close()
            self.fail(error)
            return
        if next_event.env is not self.env:
            self._generator.close()
            self.fail(SimulationError("yielded an event from a foreign environment"))
            return

        if next_event.callbacks is not None:
            # Pending or triggered-but-unprocessed: wait for it.
            next_event.callbacks.append(self._resume)
            self._target = next_event
        else:
            # Already processed: resume immediately (still via the queue
            # so that event ordering stays consistent).
            resume = Event(self.env)
            resume._ok = next_event._ok
            resume._value = next_event._value
            if not next_event._ok:
                next_event._defused = True
                resume._defused = True
            resume.callbacks = [self._resume]
            self.env._schedule(resume, URGENT, 0.0)
            self._target = resume

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) at {hex(id(self))}>"


class Condition(Event):
    """Waits for a combination of events (base for AllOf / AnyOf)."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = tuple(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count, len(self._events)):
            # Collect only *processed* events: a Timeout carries its
            # value from construction, so `triggered` alone would leak
            # events that have not actually fired yet.
            self.succeed(
                {e: e._value for e in self._events if e.processed and e._ok}
            )


class AllOf(Condition):
    """Triggers when *all* of the given events have succeeded."""

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggers when *any* of the given events has succeeded."""

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1


class Environment:
    """Simulation environment: virtual clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds by convention).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Events processed by :meth:`step` (perf counter).
        self.events_processed = 0
        #: Optional observability sink (duck-typed — ``des`` sits at the
        #: same layer level as ``repro.obs`` and never imports it).  When
        #: set to an event log whose ``kernel`` flag is true, :meth:`step`
        #: emits one high-volume ``des.step`` record per processed event.
        self.obs = None
        #: Optional kernel-rate metrics instrument (duck-typed for the
        #: same layering reason — anything with ``inc(n, t)``; the
        #: composer installs a streaming-metrics counter here).  Fed
        #: once per processed event, so the series is the live DES
        #: event rate per sim-time bucket.
        self.metrics = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event.  Raises if the queue is empty."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        time, _priority, _eid, event = heapq.heappop(self._queue)
        if time < self._now - 1e-12:
            raise SimulationError("time cannot run backwards")
        self._now = max(self._now, time)
        self.events_processed += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.inc(1.0, self._now)
        obs = self.obs
        if obs is not None and obs.kernel:
            obs.emit("des.step", self._now, "kernel", type=type(event).__name__)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not event._defused:
            # Nothing consumed this failure: surface it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that time), or an :class:`Event` (run until it is
        processed, returning its value).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        f"schedule drained before {stop!r} triggered"
                    )
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
