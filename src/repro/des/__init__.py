"""Discrete-event simulation kernel.

A small, dependency-free, ``simpy``-like engine.  Agents are Python
generators ("processes") that yield :class:`Event` objects; the
:class:`Environment` advances a virtual clock and resumes processes when
the events they wait on are triggered.

Every protocol element in this reproduction — vehicles, radios, the
intersection manager, clock synchronisation — runs on this kernel, so
simulated time is exact and deterministic.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> def pinger(env, log):
...     for _ in range(3):
...         yield env.timeout(1.0)
...         log.append(env.now)
>>> log = []
>>> _ = env.process(pinger(env, log))
>>> env.run()
>>> log
[1.0, 2.0, 3.0]
"""

from repro.des.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.des.resources import PriorityStore, Resource, Store, StoreFullError

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "StoreFullError",
    "Timeout",
]
