"""Intersection geometry: layout, movement paths, conflicts, tiles.

The evaluation intersection is the paper's four-way, one-lane-per-road
crossing: a 1.2 x 1.2 m box, 0.296 m-wide vehicles, a transmission line
3 m upstream of the stop line.  :class:`IntersectionGeometry` produces
world-frame paths (straight lines and quarter-circle arcs) for all
twelve movements (4 approaches x {left, straight, right}).

Two independent conflict representations are derived from the geometry:

* :class:`ConflictTable` — pairwise path-overlap intervals, the compact
  representation the VT-IM/Crossroads FCFS scheduler uses.
* :class:`TileGrid` — the AIM-style space-time tile discretisation of
  the box, used by the query-based IM's trajectory simulation (this is
  what makes AIM computationally expensive).
"""

from repro.geometry.collision import OrientedRect, rects_overlap
from repro.geometry.conflicts import ConflictInterval, ConflictTable
from repro.geometry.layout import (
    Approach,
    IntersectionGeometry,
    Movement,
    Path,
    Turn,
    exit_approach,
    turn_for,
)
from repro.geometry.tiles import (
    DictTileReservations,
    TileFootprint,
    TileGrid,
    TileReservations,
)

__all__ = [
    "Approach",
    "ConflictInterval",
    "ConflictTable",
    "DictTileReservations",
    "IntersectionGeometry",
    "Movement",
    "OrientedRect",
    "Path",
    "TileFootprint",
    "TileGrid",
    "TileReservations",
    "Turn",
    "exit_approach",
    "rects_overlap",
    "turn_for",
]
