"""Oriented-rectangle overlap tests for the safety monitor.

The micro-simulator's safety monitor checks, every control period, that
no two vehicles' *sensing-buffered* footprints overlap inside the box —
the ground-truth safety criterion all three policies are judged by.

Rectangles are given as (centre, heading, length, width); the test is
the separating-axis theorem specialised to two boxes (4 candidate
axes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["OrientedRect", "rects_overlap"]


@dataclass(frozen=True)
class OrientedRect:
    """Axis-angle rectangle: centre, heading, full length/width."""

    cx: float
    cy: float
    heading: float
    length: float
    width: float

    def __post_init__(self):
        if self.length <= 0 or self.width <= 0:
            raise ValueError("length and width must be positive")

    def corners(self) -> np.ndarray:
        """The 4 corner points, CCW, shape (4, 2)."""
        c, s = math.cos(self.heading), math.sin(self.heading)
        fwd = np.array([c, s])
        left = np.array([-s, c])
        hl, hw = self.length / 2.0, self.width / 2.0
        centre = np.array([self.cx, self.cy])
        return np.array(
            [
                centre + hl * fwd + hw * left,
                centre - hl * fwd + hw * left,
                centre - hl * fwd - hw * left,
                centre + hl * fwd - hw * left,
            ]
        )

    def inflated(self, margin: float) -> "OrientedRect":
        """Grow both dimensions by ``2*margin`` (a buffer ring)."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return OrientedRect(
            self.cx, self.cy, self.heading, self.length + 2 * margin, self.width + 2 * margin
        )

    def inflated_longitudinal(self, margin: float) -> "OrientedRect":
        """Grow only the length by ``2*margin``.

        This is the paper's buffer model: ``Elong`` pads the front and
        rear, while lateral error is assumed absorbed by lane keeping
        (Ch 3.2 "Elat ... can be disregarded").
        """
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return OrientedRect(
            self.cx, self.cy, self.heading, self.length + 2 * margin, self.width
        )

    def axes(self) -> Tuple[np.ndarray, np.ndarray]:
        """The two edge-normal unit axes."""
        c, s = math.cos(self.heading), math.sin(self.heading)
        return (np.array([c, s]), np.array([-s, c]))


def _projection_separates(axis: np.ndarray, ca: np.ndarray, cb: np.ndarray) -> bool:
    pa = ca @ axis
    pb = cb @ axis
    return pa.max() < pb.min() or pb.max() < pa.min()


def rects_overlap(a: OrientedRect, b: OrientedRect) -> bool:
    """True when the rectangles intersect (SAT over 4 axes)."""
    ca, cb = a.corners(), b.corners()
    for axis in (*a.axes(), *b.axes()):
        if _projection_separates(axis, ca, cb):
            return False
    return True
