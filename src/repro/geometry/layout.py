"""Intersection layout and movement paths.

Conventions
-----------
* World frame: the intersection box is an axis-aligned square centred at
  the origin; +x is east, +y is north.
* An :class:`Approach` names the compass direction a vehicle *comes
  from* (a vehicle from ``Approach.SOUTH`` drives northwards).
* Right-hand traffic: the inbound lane centre is offset half a lane
  width to the right of the road centreline.
* A :class:`Movement` is an (approach, turn) pair; its :class:`Path` is
  the lane-centre curve through the box — a straight segment or a
  quarter-circle arc — parameterised by arc length from the entry stop
  line (s = 0) to the exit line (s = path.length).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Approach",
    "IntersectionGeometry",
    "Movement",
    "Path",
    "Turn",
    "exit_approach",
    "turn_for",
]


class Approach(enum.Enum):
    """Compass direction a vehicle arrives *from*."""

    NORTH = "N"
    EAST = "E"
    SOUTH = "S"
    WEST = "W"

    @property
    def heading(self) -> float:
        """Inbound travel heading in radians (0 = east, CCW positive)."""
        return {
            Approach.SOUTH: math.pi / 2,  # driving north
            Approach.WEST: 0.0,  # driving east
            Approach.NORTH: -math.pi / 2,  # driving south
            Approach.EAST: math.pi,  # driving west
        }[self]

    @property
    def inbound_unit(self) -> Tuple[float, float]:
        """Unit vector of inbound travel."""
        h = self.heading
        return (math.cos(h), math.sin(h))

    @property
    def opposite(self) -> "Approach":
        """The arm across the box (N <-> S, E <-> W).

        This is the *hop-transition kernel* of the corridor layer: a
        vehicle exiting one intersection through arm ``X`` travels in
        the direction of ``X`` and therefore arrives at the next
        (compass-aligned) intersection *coming from* ``X.opposite``.
        """
        idx = _ORDER.index(self)
        return _ORDER[(idx + 2) % 4]


class Turn(enum.Enum):
    """Movement type through the intersection."""

    LEFT = "left"
    STRAIGHT = "straight"
    RIGHT = "right"


_ORDER = [Approach.NORTH, Approach.EAST, Approach.SOUTH, Approach.WEST]


def exit_approach(entry: Approach, turn: Turn) -> Approach:
    """Compass arm of the intersection the vehicle exits through.

    A vehicle from the south drives north: straight exits the north
    arm, a right turn exits the east arm, a left turn the west arm.
    """
    idx = _ORDER.index(entry)
    if turn is Turn.STRAIGHT:
        return _ORDER[(idx + 2) % 4]  # opposite arm
    if turn is Turn.RIGHT:
        return _ORDER[(idx - 1) % 4]
    return _ORDER[(idx + 1) % 4]


def turn_for(entry: Approach, exit_arm: Approach) -> Optional[Turn]:
    """Inverse of :func:`exit_approach`: the turn taking ``entry`` to
    ``exit_arm``.

    Returns ``None`` when ``exit_arm == entry`` — a U-turn, which no
    movement of this intersection performs.  Together with
    :func:`exit_approach` and :attr:`Approach.opposite` this is the
    complete hop-transition kernel used by the corridor router
    (:mod:`repro.grid.routing`) to translate a shortest path over links
    into per-intersection turns.
    """
    if exit_arm is entry:
        return None
    for turn in Turn:
        if exit_approach(entry, turn) is exit_arm:
            return turn
    raise AssertionError("unreachable: three turns cover three exit arms")


class Path:
    """Arc-length-parameterised polyline in the world frame."""

    def __init__(self, points: np.ndarray):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2 or len(points) < 2:
            raise ValueError("points must be an (N>=2, 2) array")
        self.points = points
        deltas = np.diff(points, axis=0)
        self._seg_lengths = np.hypot(deltas[:, 0], deltas[:, 1])
        self.cumlen = np.concatenate([[0.0], np.cumsum(self._seg_lengths)])

    @property
    def length(self) -> float:
        """Total arc length."""
        return float(self.cumlen[-1])

    def point_at(self, s: float) -> np.ndarray:
        """World point at arc length ``s`` (clamped to the ends)."""
        s = float(np.clip(s, 0.0, self.length))
        i = int(np.searchsorted(self.cumlen, s, side="right")) - 1
        i = min(max(i, 0), len(self.points) - 2)
        seg = self._seg_lengths[i]
        frac = 0.0 if seg <= 0 else (s - self.cumlen[i]) / seg
        return self.points[i] + frac * (self.points[i + 1] - self.points[i])

    def heading_at(self, s: float) -> float:
        """Tangent heading at arc length ``s``."""
        s = float(np.clip(s, 0.0, self.length))
        i = int(np.searchsorted(self.cumlen, s, side="right")) - 1
        i = min(max(i, 0), len(self.points) - 2)
        d = self.points[i + 1] - self.points[i]
        return math.atan2(d[1], d[0])

    def sample(self, step: float) -> np.ndarray:
        """Points every ``step`` metres of arc length (ends included)."""
        if step <= 0:
            raise ValueError("step must be positive")
        n = max(int(math.ceil(self.length / step)) + 1, 2)
        ss = np.linspace(0.0, self.length, n)
        return np.array([self.point_at(s) for s in ss]), ss


@dataclass(frozen=True)
class Movement:
    """One (entry approach, turn) pair."""

    entry: Approach
    turn: Turn

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"S-straight"``."""
        return f"{self.entry.value}-{self.turn.value}"

    def __str__(self) -> str:
        return self.key


class IntersectionGeometry:
    """Four-way, single-lane-per-direction intersection.

    Parameters (defaults are the paper's 1/10-scale testbed)
    ----------
    box:
        Side length of the square conflict area, metres (1.2).
    lane_width:
        Lane width, metres.  The testbed roads are one lane per
        direction; 0.45 m lanes fit two 0.296 m-wide vehicles side by
        side across the road with margin.
    approach_length:
        Stop line to transmission line distance, metres (3.0).
    """

    def __init__(
        self,
        box: float = 1.2,
        lane_width: float = 0.45,
        approach_length: float = 3.0,
        path_step: float = 0.02,
    ):
        if box <= 0 or lane_width <= 0 or approach_length <= 0:
            raise ValueError("box, lane_width and approach_length must be positive")
        if lane_width > box / 2:
            raise ValueError("lane_width must not exceed half the box")
        self.box = box
        self.lane_width = lane_width
        self.approach_length = approach_length
        self.path_step = path_step
        self._paths: Dict[Movement, Path] = {}
        for approach in Approach:
            for turn in Turn:
                movement = Movement(approach, turn)
                self._paths[movement] = self._build_path(movement)

    # -- frame helpers ------------------------------------------------------
    def _entry_frame(self, approach: Approach) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Entry point on the box edge plus (forward, left) unit vectors."""
        half = self.box / 2.0
        off = self.lane_width / 2.0
        fwd = np.array(approach.inbound_unit)
        left = np.array([-fwd[1], fwd[0]])
        # Right-hand traffic: inbound lane centre is offset to the right.
        entry = -half * fwd - off * left
        return entry, fwd, left

    def entry_point(self, approach: Approach) -> np.ndarray:
        """World point where the inbound lane centre meets the box."""
        return self._entry_frame(approach)[0].copy()

    def transmission_point(self, approach: Approach) -> np.ndarray:
        """World point of the transmission line on the inbound lane."""
        entry, fwd, _left = self._entry_frame(approach)
        return entry - self.approach_length * fwd

    # -- path construction ----------------------------------------------------
    def _build_path(self, movement: Movement) -> Path:
        entry, fwd, left = self._entry_frame(movement.entry)
        half = self.box / 2.0
        off = self.lane_width / 2.0
        step = self.path_step

        if movement.turn is Turn.STRAIGHT:
            exit_pt = entry + self.box * fwd
            n = max(int(math.ceil(self.box / step)) + 1, 2)
            ts = np.linspace(0.0, 1.0, n)
            pts = entry[None, :] + ts[:, None] * (exit_pt - entry)[None, :]
            return Path(pts)

        if movement.turn is Turn.RIGHT:
            # Quarter circle, centre on the entry-side right corner.
            radius = half - off
            centre = entry - left * radius
            start_angle = math.atan2(entry[1] - centre[1], entry[0] - centre[0])
            sweep = -math.pi / 2.0  # clockwise for a right turn
        else:  # LEFT
            radius = half + off
            centre = entry + left * radius
            start_angle = math.atan2(entry[1] - centre[1], entry[0] - centre[0])
            sweep = math.pi / 2.0  # counter-clockwise

        arc_len = abs(sweep) * radius
        n = max(int(math.ceil(arc_len / step)) + 1, 2)
        angles = start_angle + np.linspace(0.0, sweep, n)
        pts = centre[None, :] + radius * np.stack(
            [np.cos(angles), np.sin(angles)], axis=1
        )
        return Path(pts)

    # -- queries ---------------------------------------------------------------
    @property
    def movements(self) -> List[Movement]:
        """All twelve movements."""
        return list(self._paths.keys())

    def path(self, movement: Movement) -> Path:
        """The through-box path of ``movement``."""
        return self._paths[movement]

    def crossing_distance(self, movement: Movement) -> float:
        """Arc length of the movement's path through the box."""
        return self._paths[movement].length

    def contains(self, x: float, y: float, margin: float = 0.0) -> bool:
        """True if ``(x, y)`` lies within the box grown by ``margin``."""
        half = self.box / 2.0 + margin
        return abs(x) <= half and abs(y) <= half

    def __repr__(self) -> str:
        return (
            f"IntersectionGeometry(box={self.box}, lane_width={self.lane_width}, "
            f"approach_length={self.approach_length})"
        )
