"""Space-time tile reservations (the AIM intersection representation).

AIM (Dresner & Stone) discretises the intersection box into an ``n x n``
grid of tiles and time into fixed slots.  A reservation request is
granted iff the simulated trajectory's swept footprint claims no
(tile, slot) pair already held by another vehicle.

:class:`TileGrid` handles the geometry (pose -> tile set, conservative
rasterisation); :class:`TileReservations` is the bookkeeping.  The cost
of sweeping a footprint over the grid for every (re-)request is exactly
the computational overhead the paper measures against Crossroads
(Ch 7.2: up to 16-20X).

Hot-path notes
--------------
``tiles_for_pose`` is called once per simulated pose per request —
thousands of times per AIM run.  The seed implementation rasterised
against the **full** ``n x n`` meshgrid for every pose (O(n^2) per
call).  It now

* analytically computes the pose's tile-index **bounding window** (the
  axis-aligned bounds of the grown, rotated rectangle) and tests only
  that sub-array — O(footprint) work per pose;
* memoises results in a small LRU **footprint cache** keyed on the
  quantised ``(x, y, heading, length, width, buffer)`` tuple.  Re-
  requests replay the same discrete poses, so rejected-and-retried
  trajectories hit the cache instead of re-rasterising.

Inputs are quantised (default: round to 1e-9) *before* both the cache
lookup and the geometry, so a cached entry is exactly the value a fresh
computation would produce for the same key.  The windowed sweep is
bit-identical to the full-meshgrid reference (kept as
:meth:`TileGrid._tiles_for_pose_meshgrid` for differential tests): the
window is a strict superset of every tile centre that can satisfy the
mask, padded by one tile against float rounding at the boundary.

``TileReservations.purge_before`` used to scan every live claim on
every call (it runs after every exit notification); it now maintains a
per-slot secondary index plus a monotone "floor" slot, so purging costs
O(dead cells + slots newly swept) — independent of the live claim
count.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = ["TileGrid", "TileReservations"]

TileIndex = Tuple[int, int]

#: Decimal places the pose key is rounded to (1e-9 m / rad — far below
#: any physical tolerance, just enough to canonicalise float noise).
_QUANTUM_DECIMALS = 9


class TileGrid:
    """Uniform grid over the square intersection box.

    Parameters
    ----------
    box:
        Side length of the box, metres (centred at the origin).
    n:
        Tiles per side.
    cache_size:
        Capacity of the LRU footprint cache (0 disables caching).
    """

    def __init__(self, box: float, n: int = 24, cache_size: int = 4096):
        if box <= 0:
            raise ValueError("box must be positive")
        if n < 1:
            raise ValueError("n must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.box = box
        self.n = n
        self.tile_size = box / n
        half = box / 2.0
        #: 1-D tile-centre coordinates (shared by both axes).
        self._centres = -half + (np.arange(n) + 0.5) * self.tile_size
        #: Same centres as plain Python floats (the scalar hot loop is
        #: faster on builtin floats than on numpy scalars; ``float()``
        #: of a float64 is exact, so both paths see identical values).
        self._centres_f: List[float] = [float(c) for c in self._centres]
        self._mesh = None  # lazy full meshgrid (reference path only)
        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, FrozenSet[TileIndex]]" = OrderedDict()
        # -- perf counters (consumed by repro.perf / SimResult.perf) ------
        #: Tile centres actually tested (windowed sub-array sizes).
        self.cells_tested = 0
        #: Footprint-cache hits / misses.
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def num_tiles(self) -> int:
        """Total tile count."""
        return self.n * self.n

    def tile_of(self, x: float, y: float) -> Optional[TileIndex]:
        """Tile containing ``(x, y)``, or ``None`` outside the box."""
        half = self.box / 2.0
        if not (-half <= x < half and -half <= y < half):
            return None
        i = int((x + half) / self.tile_size)
        j = int((y + half) / self.tile_size)
        return (min(i, self.n - 1), min(j, self.n - 1))

    # -- footprint rasterisation ------------------------------------------
    @staticmethod
    def _validate_pose(length: float, width: float, buffer: float) -> None:
        if length <= 0 or width <= 0:
            raise ValueError("length and width must be positive")
        if buffer < 0:
            raise ValueError("buffer must be non-negative")

    def _index_window(self, centre: float, half_extent: float) -> Tuple[int, int]:
        """Inclusive tile-index range whose centres may fall inside
        ``[centre - half_extent, centre + half_extent]``, padded by one
        tile against float rounding.  May be empty (``lo > hi``)."""
        half = self.box / 2.0
        ts = self.tile_size
        lo = math.ceil((centre - half_extent + half) / ts - 0.5) - 1
        hi = math.floor((centre + half_extent + half) / ts - 0.5) + 1
        return max(lo, 0), min(hi, self.n - 1)

    def tiles_for_pose(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float = 0.0,
    ) -> FrozenSet[TileIndex]:
        """Tiles overlapped by a vehicle rectangle (conservatively).

        The rectangle is centred at ``(x, y)``, aligned with
        ``heading``, of size ``(length + 2*buffer) x width`` — the
        buffer pads the front and rear only, because the paper's safety
        buffer is the *longitudinal* ``Elong`` (lateral error is
        absorbed by lane keeping, Ch 3.2).  A tile is claimed when its
        centre lies within the rectangle grown by half the tile
        diagonal — a strict over-approximation, as safety requires.

        Only the tile-index bounding window of the grown rectangle is
        tested (not the full grid), and results are memoised per
        quantised pose; see the module docstring.
        """
        self._validate_pose(length, width, buffer)
        key = (
            round(x, _QUANTUM_DECIMALS),
            round(y, _QUANTUM_DECIMALS),
            round(heading, _QUANTUM_DECIMALS),
            round(length, _QUANTUM_DECIMALS),
            round(width, _QUANTUM_DECIMALS),
            round(buffer, _QUANTUM_DECIMALS),
        )
        if self.cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._cache.move_to_end(key)
                return cached
            self.cache_misses += 1
        result = self._tiles_for_pose_windowed(*key)
        if self.cache_size:
            self._cache[key] = result
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return result

    #: Window sizes above this use the vectorised numpy path; below it
    #: a scalar Python loop wins (small-array numpy calls pay ~µs of
    #: fixed dispatch overhead per op; the crossover sits near a couple
    #: hundred cells).
    _VECTOR_THRESHOLD = 192

    def _tiles_for_pose_windowed(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float,
    ) -> FrozenSet[TileIndex]:
        """Windowed sweep: test only the pose's bounding sub-array.

        Scalar and vectorised paths perform the identical IEEE float64
        operations in the identical order (multiply-then-add, no FMA),
        so all three implementations — scalar window, numpy window,
        full meshgrid — return the same frozensets bit for bit.
        """
        half_l = length / 2.0 + buffer
        half_w = width / 2.0
        grow = self.tile_size * math.sqrt(2.0) / 2.0
        lon_reach = half_l + grow
        lat_reach = half_w + grow
        cos_h, sin_h = math.cos(heading), math.sin(heading)
        # AABB half-extents of the grown rectangle rotated by heading.
        wx = abs(cos_h) * lon_reach + abs(sin_h) * lat_reach
        wy = abs(sin_h) * lon_reach + abs(cos_h) * lat_reach
        i0, i1 = self._index_window(x, wx)
        j0, j1 = self._index_window(y, wy)
        if i0 > i1 or j0 > j1:
            return frozenset()
        window = (i1 - i0 + 1) * (j1 - j0 + 1)
        self.cells_tested += window
        if window > self._VECTOR_THRESHOLD:
            # Tile centres of the window, in the vehicle frame.
            dx = self._centres[i0 : i1 + 1][:, None] - x
            dy = self._centres[j0 : j1 + 1][None, :] - y
            lon = dx * cos_h + dy * sin_h
            lat = -dx * sin_h + dy * cos_h
            mask = (np.abs(lon) <= lon_reach) & (np.abs(lat) <= lat_reach)
            ii, jj = np.nonzero(mask)
            return frozenset(zip((ii + i0).tolist(), (jj + j0).tolist()))
        centres = self._centres_f
        dys = [centres[j] - y for j in range(j0, j1 + 1)]
        out: List[TileIndex] = []
        for i in range(i0, i1 + 1):
            dx_i = centres[i] - x
            lon_i = dx_i * cos_h
            lat_i = -dx_i * sin_h
            for j, dy_j in enumerate(dys, start=j0):
                lon = lon_i + dy_j * sin_h
                if lon > lon_reach or lon < -lon_reach:
                    continue
                lat = lat_i + dy_j * cos_h
                if -lat_reach <= lat <= lat_reach:
                    out.append((i, j))
        return frozenset(out)

    def _tiles_for_pose_meshgrid(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float = 0.0,
    ) -> FrozenSet[TileIndex]:
        """Seed O(n^2) reference implementation (kept for differential
        tests): rasterise against the full tile-centre meshgrid."""
        self._validate_pose(length, width, buffer)
        if self._mesh is None:
            self._mesh = np.meshgrid(self._centres, self._centres, indexing="ij")
        cx, cy = self._mesh
        half_l = length / 2.0 + buffer
        half_w = width / 2.0
        grow = self.tile_size * math.sqrt(2.0) / 2.0
        cos_h, sin_h = math.cos(heading), math.sin(heading)
        dx = cx - x
        dy = cy - y
        lon = dx * cos_h + dy * sin_h
        lat = -dx * sin_h + dy * cos_h
        mask = (np.abs(lon) <= half_l + grow) & (np.abs(lat) <= half_w + grow)
        ii, jj = np.nonzero(mask)
        return frozenset(zip(ii.tolist(), jj.tolist()))

    def cache_clear(self) -> None:
        """Empty the footprint cache (counters are left running)."""
        self._cache.clear()

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of ``tiles_for_pose`` calls served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"TileGrid(box={self.box}, n={self.n})"


class TileReservations:
    """Bookkeeping of (tile, time-slot) claims.

    Keeps three synchronised indexes: the flat claim map (for conflict
    checks), a per-vehicle index (for release) and a per-slot index
    plus a monotone purge floor (so garbage collection touches only
    dead cells, never the live population).

    Parameters
    ----------
    grid:
        The spatial discretisation.
    slot:
        Time-slot length in seconds.
    """

    def __init__(self, grid: TileGrid, slot: float = 0.05):
        if slot <= 0:
            raise ValueError("slot must be positive")
        self.grid = grid
        self.slot = slot
        self._claims: Dict[Tuple[TileIndex, int], int] = {}
        self._by_vehicle: Dict[int, Set[Tuple[TileIndex, int]]] = {}
        #: Secondary index: slot -> cells claimed in that slot.
        self._by_slot: Dict[int, Set[Tuple[TileIndex, int]]] = {}
        #: All slots >= this are not yet purged (monotone floor).
        self._purge_floor: Optional[int] = None
        # -- perf counters -------------------------------------------------
        #: Cells examined by purge_before across the lifetime (regression
        #: guard: grows with *dead* cells only, never with live ones).
        self.purge_visited = 0
        #: Cells actually purged across the lifetime.
        self.purged_total = 0

    def slot_of(self, t: float) -> int:
        """Time-slot index containing time ``t``."""
        return int(math.floor(t / self.slot))

    @property
    def claim_count(self) -> int:
        """Number of live (tile, slot) claims."""
        return len(self._claims)

    def conflicts(
        self, cells: Iterable[Tuple[TileIndex, int]], vehicle_id: int
    ) -> bool:
        """True if any cell is already claimed by a *different* vehicle."""
        for cell in cells:
            owner = self._claims.get(cell)
            if owner is not None and owner != vehicle_id:
                return True
        return False

    def commit(
        self, cells: Iterable[Tuple[TileIndex, int]], vehicle_id: int
    ) -> None:
        """Claim ``cells`` for ``vehicle_id`` (must be conflict-free)."""
        cells = list(cells)
        if self.conflicts(cells, vehicle_id):
            raise ValueError("commit() of conflicting cells")
        owned = self._by_vehicle.setdefault(vehicle_id, set())
        for cell in cells:
            self._claims[cell] = vehicle_id
            owned.add(cell)
            slot = cell[1]
            self._by_slot.setdefault(slot, set()).add(cell)
            if self._purge_floor is None or slot < self._purge_floor:
                self._purge_floor = slot

    def release(self, vehicle_id: int) -> int:
        """Drop all claims of ``vehicle_id``; returns how many."""
        owned = self._by_vehicle.pop(vehicle_id, set())
        for cell in owned:
            if self._claims.get(cell) == vehicle_id:
                del self._claims[cell]
                in_slot = self._by_slot.get(cell[1])
                if in_slot is not None:
                    in_slot.discard(cell)
                    if not in_slot:
                        del self._by_slot[cell[1]]
        return len(owned)

    def release_stale(self, cutoff_slot: int) -> int:
        """Release every vehicle whose *latest* claim predates
        ``cutoff_slot``.

        Such a vehicle's entire reservation lies in the past: it should
        long have crossed and exited, yet its claims are still on the
        book — the exit notification was lost or the vehicle went
        radio-dark.  Returns the number of vehicles released (the
        quiet-vehicle invalidation count).  Vehicles holding *any*
        future claim are left alone: silence while cruising toward a
        booked ToA is normal.
        """
        stale = [
            vid
            for vid, cells in self._by_vehicle.items()
            if cells and max(slot for _, slot in cells) < cutoff_slot
        ]
        for vid in stale:
            self.release(vid)
        return len(stale)

    def purge_before(self, t: float) -> int:
        """Drop claims in slots strictly before ``t`` (garbage collection).

        Walks the per-slot index from the purge floor to the cutoff:
        each slot index is visited at most once over the reservation
        table's lifetime, and only *dead* cells are touched — cost is
        independent of how many live claims exist.
        """
        cutoff = self.slot_of(t)
        floor = self._purge_floor
        if floor is None or floor >= cutoff:
            return 0
        dead = 0
        for slot in range(floor, cutoff):
            cells = self._by_slot.pop(slot, None)
            if not cells:
                continue
            for cell in cells:
                self.purge_visited += 1
                owner = self._claims.pop(cell, None)
                if owner is None:
                    continue
                dead += 1
                owned = self._by_vehicle.get(owner)
                if owned is not None:
                    owned.discard(cell)
        self._purge_floor = cutoff
        self.purged_total += dead
        return dead
