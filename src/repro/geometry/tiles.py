"""Space-time tile reservations (the AIM intersection representation).

AIM (Dresner & Stone) discretises the intersection box into an ``n x n``
grid of tiles and time into fixed slots.  A reservation request is
granted iff the simulated trajectory's swept footprint claims no
(tile, slot) pair already held by another vehicle.

:class:`TileGrid` handles the geometry (pose -> tile set, conservative
rasterisation); :class:`TileReservations` is the bookkeeping.  The cost
of sweeping a footprint over the grid for every (re-)request is exactly
the computational overhead the paper measures against Crossroads
(Ch 7.2: up to 16-20X).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = ["TileGrid", "TileReservations"]

TileIndex = Tuple[int, int]


class TileGrid:
    """Uniform grid over the square intersection box.

    Parameters
    ----------
    box:
        Side length of the box, metres (centred at the origin).
    n:
        Tiles per side.
    """

    def __init__(self, box: float, n: int = 24):
        if box <= 0:
            raise ValueError("box must be positive")
        if n < 1:
            raise ValueError("n must be >= 1")
        self.box = box
        self.n = n
        self.tile_size = box / n
        half = box / 2.0
        centres = -half + (np.arange(n) + 0.5) * self.tile_size
        self._cx, self._cy = np.meshgrid(centres, centres, indexing="ij")

    @property
    def num_tiles(self) -> int:
        """Total tile count."""
        return self.n * self.n

    def tile_of(self, x: float, y: float) -> Optional[TileIndex]:
        """Tile containing ``(x, y)``, or ``None`` outside the box."""
        half = self.box / 2.0
        if not (-half <= x < half and -half <= y < half):
            return None
        i = int((x + half) / self.tile_size)
        j = int((y + half) / self.tile_size)
        return (min(i, self.n - 1), min(j, self.n - 1))

    def tiles_for_pose(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float = 0.0,
    ) -> FrozenSet[TileIndex]:
        """Tiles overlapped by a vehicle rectangle (conservatively).

        The rectangle is centred at ``(x, y)``, aligned with
        ``heading``, of size ``(length + 2*buffer) x width`` — the
        buffer pads the front and rear only, because the paper's safety
        buffer is the *longitudinal* ``Elong`` (lateral error is
        absorbed by lane keeping, Ch 3.2).  A tile is claimed when its
        centre lies within the rectangle grown by half the tile
        diagonal — a strict over-approximation, as safety requires.
        """
        if length <= 0 or width <= 0:
            raise ValueError("length and width must be positive")
        if buffer < 0:
            raise ValueError("buffer must be non-negative")
        half_l = length / 2.0 + buffer
        half_w = width / 2.0
        grow = self.tile_size * math.sqrt(2.0) / 2.0
        cos_h, sin_h = math.cos(heading), math.sin(heading)
        # Tile centres in the vehicle frame.
        dx = self._cx - x
        dy = self._cy - y
        lon = dx * cos_h + dy * sin_h
        lat = -dx * sin_h + dy * cos_h
        mask = (np.abs(lon) <= half_l + grow) & (np.abs(lat) <= half_w + grow)
        ii, jj = np.nonzero(mask)
        return frozenset(zip(ii.tolist(), jj.tolist()))

    def __repr__(self) -> str:
        return f"TileGrid(box={self.box}, n={self.n})"


class TileReservations:
    """Bookkeeping of (tile, time-slot) claims.

    Parameters
    ----------
    grid:
        The spatial discretisation.
    slot:
        Time-slot length in seconds.
    """

    def __init__(self, grid: TileGrid, slot: float = 0.05):
        if slot <= 0:
            raise ValueError("slot must be positive")
        self.grid = grid
        self.slot = slot
        self._claims: Dict[Tuple[TileIndex, int], int] = {}
        self._by_vehicle: Dict[int, Set[Tuple[TileIndex, int]]] = {}

    def slot_of(self, t: float) -> int:
        """Time-slot index containing time ``t``."""
        return int(math.floor(t / self.slot))

    @property
    def claim_count(self) -> int:
        """Number of live (tile, slot) claims."""
        return len(self._claims)

    def conflicts(
        self, cells: Iterable[Tuple[TileIndex, int]], vehicle_id: int
    ) -> bool:
        """True if any cell is already claimed by a *different* vehicle."""
        for cell in cells:
            owner = self._claims.get(cell)
            if owner is not None and owner != vehicle_id:
                return True
        return False

    def commit(
        self, cells: Iterable[Tuple[TileIndex, int]], vehicle_id: int
    ) -> None:
        """Claim ``cells`` for ``vehicle_id`` (must be conflict-free)."""
        cells = list(cells)
        if self.conflicts(cells, vehicle_id):
            raise ValueError("commit() of conflicting cells")
        owned = self._by_vehicle.setdefault(vehicle_id, set())
        for cell in cells:
            self._claims[cell] = vehicle_id
            owned.add(cell)

    def release(self, vehicle_id: int) -> int:
        """Drop all claims of ``vehicle_id``; returns how many."""
        owned = self._by_vehicle.pop(vehicle_id, set())
        for cell in owned:
            if self._claims.get(cell) == vehicle_id:
                del self._claims[cell]
        return len(owned)

    def purge_before(self, t: float) -> int:
        """Drop claims in slots strictly before ``t`` (garbage collection)."""
        cutoff = self.slot_of(t)
        dead = [cell for cell in self._claims if cell[1] < cutoff]
        for cell in dead:
            owner = self._claims.pop(cell)
            owned = self._by_vehicle.get(owner)
            if owned is not None:
                owned.discard(cell)
        return len(dead)
