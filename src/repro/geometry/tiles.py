"""Space-time tile reservations (the AIM intersection representation).

AIM (Dresner & Stone) discretises the intersection box into an ``n x n``
grid of tiles and time into fixed slots.  A reservation request is
granted iff the simulated trajectory's swept footprint claims no
(tile, slot) pair already held by another vehicle.

:class:`TileGrid` handles the geometry (pose -> tile set, conservative
rasterisation); :class:`TileReservations` is the bookkeeping.  The cost
of sweeping a footprint over the grid for every (re-)request is exactly
the computational overhead the paper measures against Crossroads
(Ch 7.2: up to 16-20X).

Hot-path notes
--------------
``tiles_for_pose`` is called once per simulated pose per request —
thousands of times per AIM run.  The seed implementation rasterised
against the **full** ``n x n`` meshgrid for every pose (O(n^2) per
call).  The current implementation

* analytically computes the pose's tile-index **bounding window** (the
  axis-aligned bounds of the grown, rotated rectangle) and tests only
  that sub-array — O(footprint) work per pose;
* memoises results in a small LRU **footprint cache** keyed on the
  quantised ``(x, y, heading, length, width, buffer, pad)`` tuple.
  Each cache entry stores both the tile frozenset and the tiles packed
  as a ``uint64`` **bitmap** (bit ``i*n + j`` set iff tile ``(i, j)``
  is claimed), so the reservation book can consume footprints without
  ever materialising per-cell tuples;
* rasterises whole pose *batches* in one vectorised pass
  (:meth:`TileGrid.footprints_for_poses`): all cache-missing poses of a
  trajectory sweep are flattened into a single candidate array and
  tested with one round of numpy array ops.

Inputs are quantised (default: round to 1e-9) *before* both the cache
lookup and the geometry, so a cached entry is exactly the value a fresh
computation would produce for the same key.  The windowed sweep is
bit-identical to the full-meshgrid reference (kept as
:meth:`TileGrid._tiles_for_pose_meshgrid` for differential tests): the
window is a strict superset of every tile centre that can satisfy the
mask, padded by one tile against float rounding at the boundary.

Reservation book
----------------
:class:`TileReservations` stores per-slot occupancy as packed
``uint64`` bitmaps in one contiguous ``(slots, words)`` array, so
``conflicts``/``commit``/``release``/``purge_before`` are a handful of
bitwise array ops instead of per-cell dict traffic.  The seed dict
implementation is kept verbatim as :class:`DictTileReservations` — the
reference the bitmap book is differential-tested against
(``tests/test_tiles_fast.py``).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = [
    "DictTileReservations",
    "TileFootprint",
    "TileGrid",
    "TileReservations",
]

TileIndex = Tuple[int, int]

#: Decimal places the pose key is rounded to (1e-9 m / rad — far below
#: any physical tolerance, just enough to canonicalise float noise).
_QUANTUM_DECIMALS = 9

_WORD_BITS = 64

if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(words: np.ndarray) -> int:
        """Total number of set bits in a uint64 array."""
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - exercised only on old numpy

    def _popcount(words: np.ndarray) -> int:
        return int(
            np.unpackbits(np.ascontiguousarray(words).view(np.uint8)).sum()
        )


def _words_for(n_tiles: int) -> int:
    return (n_tiles + _WORD_BITS - 1) // _WORD_BITS


def _pack_bits(bits: np.ndarray, words: int) -> np.ndarray:
    """Pack flat bit indices into a ``uint64`` word array."""
    out = np.zeros(words, dtype=np.uint64)
    if len(bits):
        np.bitwise_or.at(
            out,
            bits >> 6,
            np.left_shift(np.uint64(1), (bits & 63).astype(np.uint64)),
        )
    return out


def _unpack_bits(words: np.ndarray) -> np.ndarray:
    """Flat bit indices set in a ``uint64`` word array (sorted)."""
    out: List[int] = []
    for w, word in enumerate(words.tolist()):
        base = w << 6
        while word:
            low = word & -word
            out.append(base + low.bit_length() - 1)
            word ^= low
    return np.asarray(out, dtype=np.int64)


class TileFootprint:
    """A trajectory sweep as per-slot packed tile bitmaps.

    ``masks[k]`` is the ``uint64`` bitmap of tiles claimed in slot
    ``s0 + k`` (bit ``i*n + j`` <-> tile ``(i, j)``).  This is the
    array-native interchange format between :meth:`AimIM.simulate_cells
    <repro.core.aim.AimIM.simulate_cells>` and
    :class:`TileReservations`; iteration yields classic
    ``((i, j), slot)`` pairs for tests and debugging.
    """

    __slots__ = ("n", "s0", "masks", "_count")

    def __init__(self, n: int, s0: int, masks: np.ndarray):
        if masks.ndim != 2 or masks.dtype != np.uint64:
            raise ValueError("masks must be a 2-D uint64 array")
        self.n = n
        self.s0 = int(s0)
        self.masks = masks
        self._count: Optional[int] = None

    @classmethod
    def from_cells(
        cls, cells: Iterable[Tuple[TileIndex, int]], n: int
    ) -> "TileFootprint":
        """Build from classic ``((i, j), slot)`` pairs."""
        cells = list(cells)
        words = _words_for(n * n)
        if not cells:
            return cls(n, 0, np.zeros((0, words), dtype=np.uint64))
        slots = [slot for _, slot in cells]
        s0, s1 = min(slots), max(slots)
        masks = np.zeros((s1 - s0 + 1, words), dtype=np.uint64)
        for (i, j), slot in cells:
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"tile {(i, j)} outside a {n}x{n} grid")
            bit = i * n + j
            masks[slot - s0, bit >> 6] |= np.uint64(1) << np.uint64(bit & 63)
        return cls(n, s0, masks)

    @property
    def cell_count(self) -> int:
        """Number of distinct (tile, slot) cells."""
        if self._count is None:
            self._count = _popcount(self.masks)
        return self._count

    def __len__(self) -> int:
        return self.cell_count

    def __bool__(self) -> bool:
        return self.cell_count > 0

    def __iter__(self):
        n = self.n
        for k in range(len(self.masks)):
            for bit in _unpack_bits(self.masks[k]).tolist():
                yield ((bit // n, bit % n), self.s0 + k)

    def cells(self) -> Set[Tuple[TileIndex, int]]:
        """The classic cell-set representation."""
        return set(self)

    def __repr__(self) -> str:
        return (
            f"TileFootprint(n={self.n}, slots=[{self.s0}, "
            f"{self.s0 + len(self.masks)}), cells={self.cell_count})"
        )


class TileGrid:
    """Uniform grid over the square intersection box.

    Parameters
    ----------
    box:
        Side length of the box, metres (centred at the origin).
    n:
        Tiles per side.
    cache_size:
        Capacity of the LRU footprint cache (0 disables caching).
    """

    def __init__(self, box: float, n: int = 24, cache_size: int = 4096):
        if box <= 0:
            raise ValueError("box must be positive")
        if n < 1:
            raise ValueError("n must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.box = box
        self.n = n
        self.tile_size = box / n
        half = box / 2.0
        #: 1-D tile-centre coordinates (shared by both axes).
        self._centres = -half + (np.arange(n) + 0.5) * self.tile_size
        #: Same centres as plain Python floats (the scalar hot loop is
        #: faster on builtin floats than on numpy scalars; ``float()``
        #: of a float64 is exact, so both paths see identical values).
        self._centres_f: List[float] = [float(c) for c in self._centres]
        self._mesh = None  # lazy full meshgrid (reference path only)
        #: uint64 words per packed footprint bitmap.
        self.words = _words_for(n * n)
        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, Tuple[FrozenSet[TileIndex], np.ndarray]]" = (
            OrderedDict()
        )
        # -- perf counters (consumed by repro.perf / SimResult.perf) ------
        #: Tile centres actually tested (windowed sub-array sizes).
        self.cells_tested = 0
        #: Footprint-cache hits / misses.
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def num_tiles(self) -> int:
        """Total tile count."""
        return self.n * self.n

    def tile_of(self, x: float, y: float) -> Optional[TileIndex]:
        """Tile containing ``(x, y)``, or ``None`` outside the box."""
        half = self.box / 2.0
        if not (-half <= x < half and -half <= y < half):
            return None
        i = int((x + half) / self.tile_size)
        j = int((y + half) / self.tile_size)
        return (min(i, self.n - 1), min(j, self.n - 1))

    # -- footprint rasterisation ------------------------------------------
    @staticmethod
    def _validate_pose(
        length: float, width: float, buffer: float, pad: float = 0.0
    ) -> None:
        if length <= 0 or width <= 0:
            raise ValueError("length and width must be positive")
        if buffer < 0:
            raise ValueError("buffer must be non-negative")
        if pad < 0:
            raise ValueError("pad must be non-negative")

    def _index_window(self, centre: float, half_extent: float) -> Tuple[int, int]:
        """Inclusive tile-index range whose centres may fall inside
        ``[centre - half_extent, centre + half_extent]``, padded by one
        tile against float rounding.  May be empty (``lo > hi``)."""
        half = self.box / 2.0
        ts = self.tile_size
        lo = math.ceil((centre - half_extent + half) / ts - 0.5) - 1
        hi = math.floor((centre + half_extent + half) / ts - 0.5) + 1
        return max(lo, 0), min(hi, self.n - 1)

    def _key_for(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float,
        pad: float,
    ) -> tuple:
        return (
            round(x, _QUANTUM_DECIMALS),
            round(y, _QUANTUM_DECIMALS),
            round(heading, _QUANTUM_DECIMALS),
            round(length, _QUANTUM_DECIMALS),
            round(width, _QUANTUM_DECIMALS),
            round(buffer, _QUANTUM_DECIMALS),
            round(pad, _QUANTUM_DECIMALS),
        )

    def _cache_store(
        self, key: tuple, entry: Tuple[FrozenSet[TileIndex], np.ndarray]
    ) -> None:
        self._cache[key] = entry
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def tiles_for_pose(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float = 0.0,
        pad: float = 0.0,
    ) -> FrozenSet[TileIndex]:
        """Tiles overlapped by a vehicle rectangle (conservatively).

        The rectangle is centred at ``(x, y)``, aligned with
        ``heading``, of size ``(length + 2*buffer) x width`` — the
        buffer pads the front and rear only, because the paper's safety
        buffer is the *longitudinal* ``Elong`` (lateral error is
        absorbed by lane keeping, Ch 3.2).  A tile is claimed when its
        centre lies within the rectangle grown by half the tile
        diagonal — a strict over-approximation, as safety requires.
        ``pad`` additionally grows the rectangle on *all* sides: the
        coarse-pose sweep uses it to make a snapped pose's footprint a
        provable superset of the true pose's (see
        :meth:`repro.core.aim.AimIM.simulate_cells`).

        Only the tile-index bounding window of the grown rectangle is
        tested (not the full grid), and results are memoised per
        quantised pose; see the module docstring.
        """
        return self.footprint_for_pose(x, y, heading, length, width, buffer, pad)[0]

    def footprint_for_pose(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float = 0.0,
        pad: float = 0.0,
    ) -> Tuple[FrozenSet[TileIndex], np.ndarray]:
        """Like :meth:`tiles_for_pose` but returns ``(tiles, bitmap)``."""
        self._validate_pose(length, width, buffer, pad)
        key = self._key_for(x, y, heading, length, width, buffer, pad)
        if self.cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._cache.move_to_end(key)
                return cached
            self.cache_misses += 1
        entry = self._rasterise_pose(*key)
        if self.cache_size:
            self._cache_store(key, entry)
        return entry

    def footprints_for_poses(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        headings: np.ndarray,
        length: float,
        width: float,
        buffer: float = 0.0,
        pad: float = 0.0,
    ) -> List[Tuple[FrozenSet[TileIndex], np.ndarray]]:
        """Batched :meth:`footprint_for_pose` over pose arrays.

        Cache hits are served per pose; every *missing* pose of the
        batch is rasterised in a single vectorised pass (all candidate
        tile centres of all windows flattened into one array).  Counter
        semantics match a sequential scalar sweep: a pose repeated
        within the batch counts one miss and then hits.
        """
        self._validate_pose(length, width, buffer, pad)
        count = len(xs)
        entries: List[Optional[Tuple[FrozenSet[TileIndex], np.ndarray]]] = (
            [None] * count
        )
        keys = [
            self._key_for(
                float(xs[k]), float(ys[k]), float(headings[k]),
                length, width, buffer, pad,
            )
            for k in range(count)
        ]
        pending: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for k, key in enumerate(keys):
            if self.cache_size:
                cached = self._cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    self._cache.move_to_end(key)
                    entries[k] = cached
                    continue
                waiting = pending.get(key)
                if waiting is not None:
                    # Sequentially this pose would hit the entry the
                    # first occurrence just stored.
                    self.cache_hits += 1
                    waiting.append(k)
                    continue
                self.cache_misses += 1
                pending[key] = [k]
            else:
                pending.setdefault(key, []).append(k)
        if pending:
            miss_keys = list(pending)
            computed = self._rasterise_poses(miss_keys)
            for key, entry in zip(miss_keys, computed):
                for k in pending[key]:
                    entries[k] = entry
                if self.cache_size:
                    self._cache_store(key, entry)
        return entries  # type: ignore[return-value]

    #: Window sizes above this use the vectorised numpy path; below it
    #: a scalar Python loop wins (small-array numpy calls pay ~µs of
    #: fixed dispatch overhead per op; the crossover sits near a couple
    #: hundred cells).
    _VECTOR_THRESHOLD = 192

    @staticmethod
    def _reaches(
        length: float, width: float, buffer: float, pad: float, tile_size: float
    ) -> Tuple[float, float]:
        half_l = length / 2.0 + buffer
        half_w = width / 2.0
        grow = tile_size * math.sqrt(2.0) / 2.0
        return half_l + grow + pad, half_w + grow + pad

    def _rasterise_pose(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float,
        pad: float,
    ) -> Tuple[FrozenSet[TileIndex], np.ndarray]:
        """Windowed sweep: test only the pose's bounding sub-array.

        Scalar and vectorised paths perform the identical IEEE float64
        operations in the identical order (multiply-then-add, no FMA),
        so all implementations — scalar window, numpy window, batched
        flat pass, full meshgrid — return the same frozensets bit for
        bit.
        """
        lon_reach, lat_reach = self._reaches(
            length, width, buffer, pad, self.tile_size
        )
        cos_h, sin_h = math.cos(heading), math.sin(heading)
        # AABB half-extents of the grown rectangle rotated by heading.
        wx = abs(cos_h) * lon_reach + abs(sin_h) * lat_reach
        wy = abs(sin_h) * lon_reach + abs(cos_h) * lat_reach
        i0, i1 = self._index_window(x, wx)
        j0, j1 = self._index_window(y, wy)
        if i0 > i1 or j0 > j1:
            return frozenset(), np.zeros(self.words, dtype=np.uint64)
        window = (i1 - i0 + 1) * (j1 - j0 + 1)
        self.cells_tested += window
        if window > self._VECTOR_THRESHOLD:
            # Tile centres of the window, in the vehicle frame.
            dx = self._centres[i0 : i1 + 1][:, None] - x
            dy = self._centres[j0 : j1 + 1][None, :] - y
            lon = dx * cos_h + dy * sin_h
            lat = -dx * sin_h + dy * cos_h
            mask = (np.abs(lon) <= lon_reach) & (np.abs(lat) <= lat_reach)
            ii, jj = np.nonzero(mask)
            ii = ii + i0
            jj = jj + j0
            tiles = frozenset(zip(ii.tolist(), jj.tolist()))
            return tiles, _pack_bits(ii * self.n + jj, self.words)
        centres = self._centres_f
        dys = [centres[j] - y for j in range(j0, j1 + 1)]
        out: List[TileIndex] = []
        for i in range(i0, i1 + 1):
            dx_i = centres[i] - x
            lon_i = dx_i * cos_h
            lat_i = -dx_i * sin_h
            for j, dy_j in enumerate(dys, start=j0):
                lon = lon_i + dy_j * sin_h
                if lon > lon_reach or lon < -lon_reach:
                    continue
                lat = lat_i + dy_j * cos_h
                if -lat_reach <= lat <= lat_reach:
                    out.append((i, j))
        bits = np.asarray([i * self.n + j for i, j in out], dtype=np.int64)
        return frozenset(out), _pack_bits(bits, self.words)

    def _rasterise_poses(
        self, keys: List[tuple]
    ) -> List[Tuple[FrozenSet[TileIndex], np.ndarray]]:
        """One vectorised rasterisation pass over many quantised poses.

        All windows are flattened into a single candidate array
        ``(pose, i, j)`` and tested with one round of array ops; the
        per-candidate float expressions are identical to the scalar
        path, so the resulting tile sets are bit-identical to
        pose-at-a-time sweeps.
        """
        count = len(keys)
        # Dimensions are shared across a batch (same vehicle+buffer).
        _, _, _, length, width, buffer, pad = keys[0]
        lon_reach, lat_reach = self._reaches(
            length, width, buffer, pad, self.tile_size
        )
        xs = np.array([k[0] for k in keys], dtype=float)
        ys = np.array([k[1] for k in keys], dtype=float)
        # math.cos/math.sin per pose: numpy's SIMD transcendentals may
        # differ from libm by an ulp, which would break bit-identity
        # with the scalar path.  Trig is a tiny fraction of the sweep.
        cos = np.array([math.cos(k[2]) for k in keys], dtype=float)
        sin = np.array([math.sin(k[2]) for k in keys], dtype=float)
        wx = np.abs(cos) * lon_reach + np.abs(sin) * lat_reach
        wy = np.abs(sin) * lon_reach + np.abs(cos) * lat_reach
        half = self.box / 2.0
        ts = self.tile_size
        i0 = np.maximum(np.ceil((xs - wx + half) / ts - 0.5) - 1, 0).astype(np.int64)
        i1 = np.minimum(
            np.floor((xs + wx + half) / ts - 0.5) + 1, self.n - 1
        ).astype(np.int64)
        j0 = np.maximum(np.ceil((ys - wy + half) / ts - 0.5) - 1, 0).astype(np.int64)
        j1 = np.minimum(
            np.floor((ys + wy + half) / ts - 0.5) + 1, self.n - 1
        ).astype(np.int64)
        wi = np.maximum(i1 - i0 + 1, 0)
        wj = np.maximum(j1 - j0 + 1, 0)
        counts = wi * wj
        total = int(counts.sum())
        self.cells_tested += total
        empty = (frozenset(), np.zeros(self.words, dtype=np.uint64))
        if total == 0:
            return [empty] * count
        offsets = np.concatenate([[0], np.cumsum(counts)])
        rep = np.repeat(np.arange(count), counts)
        local = np.arange(total) - offsets[rep]
        ii = i0[rep] + local // wj[rep]
        jj = j0[rep] + local % wj[rep]
        dx = self._centres[ii] - xs[rep]
        dy = self._centres[jj] - ys[rep]
        cr, sr = cos[rep], sin[rep]
        lon = dx * cr + dy * sr
        lat = -dx * sr + dy * cr
        keep = (np.abs(lon) <= lon_reach) & (np.abs(lat) <= lat_reach)
        rep_k, ii_k, jj_k = rep[keep], ii[keep], jj[keep]
        bits = ii_k * self.n + jj_k
        bounds = np.searchsorted(rep_k, np.arange(count + 1))
        out: List[Tuple[FrozenSet[TileIndex], np.ndarray]] = []
        for p in range(count):
            a, b = bounds[p], bounds[p + 1]
            if a == b:
                out.append(empty)
                continue
            tiles = frozenset(zip(ii_k[a:b].tolist(), jj_k[a:b].tolist()))
            out.append((tiles, _pack_bits(bits[a:b], self.words)))
        return out

    def _tiles_for_pose_meshgrid(
        self,
        x: float,
        y: float,
        heading: float,
        length: float,
        width: float,
        buffer: float = 0.0,
    ) -> FrozenSet[TileIndex]:
        """Seed O(n^2) reference implementation (kept for differential
        tests): rasterise against the full tile-centre meshgrid."""
        self._validate_pose(length, width, buffer)
        if self._mesh is None:
            self._mesh = np.meshgrid(self._centres, self._centres, indexing="ij")
        cx, cy = self._mesh
        half_l = length / 2.0 + buffer
        half_w = width / 2.0
        grow = self.tile_size * math.sqrt(2.0) / 2.0
        cos_h, sin_h = math.cos(heading), math.sin(heading)
        dx = cx - x
        dy = cy - y
        lon = dx * cos_h + dy * sin_h
        lat = -dx * sin_h + dy * cos_h
        mask = (np.abs(lon) <= half_l + grow) & (np.abs(lat) <= half_w + grow)
        ii, jj = np.nonzero(mask)
        return frozenset(zip(ii.tolist(), jj.tolist()))

    def cache_clear(self) -> None:
        """Empty the footprint cache (counters are left running)."""
        self._cache.clear()

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of ``tiles_for_pose`` calls served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"TileGrid(box={self.box}, n={self.n})"


class TileReservations:
    """Bookkeeping of (tile, time-slot) claims, bitmap backed.

    Per-slot occupancy lives in one contiguous ``(slots, words)``
    ``uint64`` array (``self._occ``); a vehicle's claims are stored as
    aligned mask blocks.  ``conflicts`` is then *(occupancy & footprint
    & ~own)* over the footprint's slot range — a couple of array ops —
    and ``commit``/``release``/``purge_before`` are bitwise OR /
    AND-NOT plus popcounts.  Ownership stays exclusive by construction
    (``commit`` raises on conflict), so occupancy popcounts equal claim
    counts.

    Garbage collection keeps the seed's cost model: ``purge_before``
    touches only rows between the monotone purge floor and the cutoff,
    and ``release_stale`` reads an incrementally maintained per-vehicle
    max-slot map — O(vehicles), never O(claims).

    The seed per-cell dict implementation is kept as
    :class:`DictTileReservations`, the reference this class is
    differential-tested against.

    Parameters
    ----------
    grid:
        The spatial discretisation.
    slot:
        Time-slot length in seconds.
    """

    def __init__(self, grid: TileGrid, slot: float = 0.05):
        if slot <= 0:
            raise ValueError("slot must be positive")
        self.grid = grid
        self.slot = slot
        self._words = grid.words
        #: Slot index of row 0 of ``_occ`` (None until first commit).
        self._base: Optional[int] = None
        self._occ = np.zeros((0, self._words), dtype=np.uint64)
        #: vehicle -> list of (s0, masks) blocks (usually exactly one).
        self._blocks: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        #: vehicle -> highest slot it holds (incrementally maintained so
        #: ``release_stale`` is O(vehicles), not O(claims)).
        self._max_slot: Dict[int, int] = {}
        #: slot -> vehicles holding claims there (purge-trim index).
        self._slot_vids: Dict[int, Set[int]] = {}
        #: All slots >= this are not yet purged (monotone floor).
        self._purge_floor: Optional[int] = None
        self._claim_count = 0
        # -- perf counters -------------------------------------------------
        #: Cells examined by purge_before across the lifetime (regression
        #: guard: grows with *dead* cells only, never with live ones).
        self.purge_visited = 0
        #: Cells actually purged across the lifetime.
        self.purged_total = 0

    def slot_of(self, t: float) -> int:
        """Time-slot index containing time ``t``."""
        return int(math.floor(t / self.slot))

    @property
    def claim_count(self) -> int:
        """Number of live (tile, slot) claims."""
        return self._claim_count

    # -- representation helpers -------------------------------------------
    def _as_footprint(self, cells) -> TileFootprint:
        if isinstance(cells, TileFootprint):
            if cells.n != self.grid.n:
                raise ValueError(
                    f"footprint for a {cells.n}x{cells.n} grid used with a "
                    f"{self.grid.n}x{self.grid.n} reservation book"
                )
            return cells
        return TileFootprint.from_cells(cells, self.grid.n)

    def _ensure_rows(self, s0: int, s1: int) -> None:
        """Grow ``_occ`` so slots ``[s0, s1)`` are addressable."""
        if self._base is None:
            rows = max(s1 - s0, 64)
            self._base = s0
            self._occ = np.zeros((rows, self._words), dtype=np.uint64)
            return
        base, rows = self._base, len(self._occ)
        if s0 >= base and s1 <= base + rows:
            return
        new_base = min(base, s0)
        new_end = max(base + rows, s1)
        # Geometric headroom keeps amortised growth O(1) per slot.
        alloc = max(new_end - new_base, 2 * rows)
        occ = np.zeros((alloc, self._words), dtype=np.uint64)
        occ[base - new_base : base - new_base + rows] = self._occ
        self._base = new_base
        self._occ = occ

    def _occ_view(self, s0: int, count: int) -> np.ndarray:
        """Writable occupancy rows for slots ``[s0, s0 + count)``
        (caller must have ensured capacity)."""
        assert self._base is not None
        lo = s0 - self._base
        return self._occ[lo : lo + count]

    def _occ_copy(self, s0: int, count: int) -> np.ndarray:
        """Occupancy rows for ``[s0, s0 + count)``, zeros outside the
        allocated range (read-only use)."""
        out = np.zeros((count, self._words), dtype=np.uint64)
        if self._base is None:
            return out
        base, rows = self._base, len(self._occ)
        lo = max(s0, base)
        hi = min(s0 + count, base + rows)
        if lo < hi:
            out[lo - s0 : hi - s0] = self._occ[lo - base : hi - base]
        return out

    def _own_mask(self, vehicle_id: int, s0: int, count: int) -> Optional[np.ndarray]:
        """The vehicle's claims over ``[s0, s0 + count)``, or None."""
        blocks = self._blocks.get(vehicle_id)
        if not blocks:
            return None
        out = None
        for b0, masks in blocks:
            lo = max(s0, b0)
            hi = min(s0 + count, b0 + len(masks))
            if lo >= hi:
                continue
            if out is None:
                out = np.zeros((count, self._words), dtype=np.uint64)
            out[lo - s0 : hi - s0] |= masks[lo - b0 : hi - b0]
        return out

    # -- public API --------------------------------------------------------
    def holds(self, vehicle_id: int) -> bool:
        """True while ``vehicle_id`` has live (tile, slot) claims.

        IM-side ground truth for the safety oracle: an AIM vehicle
        entering the box without claims is an ungranted entry.
        """
        return bool(self._blocks.get(vehicle_id))

    def conflicts(self, cells, vehicle_id: int) -> bool:
        """True if any cell is already claimed by a *different* vehicle.

        ``cells`` may be a :class:`TileFootprint` (array fast path) or
        any iterable of ``((i, j), slot)`` pairs.
        """
        fp = self._as_footprint(cells)
        count = len(fp.masks)
        if count == 0:
            return False
        taken = self._occ_copy(fp.s0, count)
        taken &= fp.masks
        if not taken.any():
            return False
        own = self._own_mask(vehicle_id, fp.s0, count)
        if own is not None:
            taken &= ~own
        return bool(taken.any())

    def commit(self, cells, vehicle_id: int) -> None:
        """Claim ``cells`` for ``vehicle_id`` (must be conflict-free)."""
        fp = self._as_footprint(cells)
        if self.conflicts(fp, vehicle_id):
            raise ValueError("commit() of conflicting cells")
        rows_any = fp.masks.any(axis=1)
        if not rows_any.any():
            return
        present = np.nonzero(rows_any)[0]
        lo = fp.s0 + int(present[0])
        hi = fp.s0 + int(present[-1]) + 1
        self._ensure_rows(lo, hi)
        occ = self._occ_view(lo, hi - lo)
        masks = fp.masks[lo - fp.s0 : hi - fp.s0]
        new_bits = masks & ~occ
        self._claim_count += _popcount(new_bits)
        occ |= masks
        self._blocks.setdefault(vehicle_id, []).append((lo, masks.copy()))
        top = fp.s0 + int(present[-1])
        if self._max_slot.get(vehicle_id, top - 1) < top:
            self._max_slot[vehicle_id] = top
        for k in present.tolist():
            self._slot_vids.setdefault(fp.s0 + k, set()).add(vehicle_id)
        if self._purge_floor is None or lo < self._purge_floor:
            self._purge_floor = lo

    def release(self, vehicle_id: int) -> int:
        """Drop all claims of ``vehicle_id``; returns how many."""
        blocks = self._blocks.pop(vehicle_id, None)
        self._max_slot.pop(vehicle_id, None)
        if not blocks:
            return 0
        lo = min(b0 for b0, _ in blocks)
        hi = max(b0 + len(masks) for b0, masks in blocks)
        merged = np.zeros((hi - lo, self._words), dtype=np.uint64)
        for b0, masks in blocks:
            merged[b0 - lo : b0 - lo + len(masks)] |= masks
        self._ensure_rows(lo, hi)
        occ = self._occ_view(lo, hi - lo)
        # Ownership is exclusive and purged rows were trimmed from the
        # blocks, so occupancy ∩ merged is exactly this vehicle's live
        # claim set.
        live = occ & merged
        released = _popcount(live)
        occ &= ~merged
        self._claim_count -= released
        return released

    def release_stale(self, cutoff_slot: int) -> int:
        """Release every vehicle whose *latest* claim predates
        ``cutoff_slot``.

        Such a vehicle's entire reservation lies in the past: it should
        long have crossed and exited, yet its claims are still on the
        book — the exit notification was lost or the vehicle went
        radio-dark.  Returns the number of vehicles released (the
        quiet-vehicle invalidation count).  Vehicles holding *any*
        future claim are left alone: silence while cruising toward a
        booked ToA is normal.

        The per-vehicle max slot is maintained incrementally by
        ``commit``/``purge_before``, so the 1 Hz watchdog scan is
        O(vehicles) — it never touches a cell set.
        """
        stale = [
            vid for vid, top in self._max_slot.items() if top < cutoff_slot
        ]
        for vid in stale:
            self.release(vid)
        return len(stale)

    def purge_before(self, t: float) -> int:
        """Drop claims in slots strictly before ``t`` (garbage collection).

        Walks the occupancy rows from the purge floor to the cutoff:
        each slot row is visited at most once over the reservation
        table's lifetime, and only *dead* cells are counted — cost is
        independent of how many live claims exist.
        """
        cutoff = self.slot_of(t)
        floor = self._purge_floor
        if floor is None or floor >= cutoff:
            return 0
        dead = 0
        if self._base is not None:
            lo = max(floor, self._base)
            hi = min(cutoff, self._base + len(self._occ))
            if lo < hi:
                rows = self._occ_view(lo, hi - lo)
                dead = _popcount(rows)
                rows[:] = 0
        self.purge_visited += dead
        self.purged_total += dead
        self._claim_count -= dead
        # Trim the affected vehicles' blocks so release/conflicts never
        # see purged cells (a purged cell may be legally re-claimed by
        # another vehicle later).
        affected: Set[int] = set()
        for s in range(floor, cutoff):
            vids = self._slot_vids.pop(s, None)
            if vids:
                affected |= vids
        for vid in affected:
            blocks = self._blocks.get(vid)
            if not blocks:
                continue
            kept: List[Tuple[int, np.ndarray]] = []
            for b0, masks in blocks:
                if b0 + len(masks) <= cutoff:
                    continue  # fully purged
                if b0 < cutoff:
                    masks = masks[cutoff - b0 :]
                    b0 = cutoff
                if masks.any():
                    kept.append((b0, masks))
            if kept:
                self._blocks[vid] = kept
            else:
                self._blocks.pop(vid, None)
                self._max_slot.pop(vid, None)
        self._purge_floor = cutoff
        return dead


class DictTileReservations:
    """Seed per-cell dict reservation book (reference implementation).

    Kept verbatim so :class:`TileReservations`'s bitmap backend can be
    differential-tested against it on random workloads — identical
    ``conflicts``/``commit``/``release``/``release_stale``/
    ``purge_before`` answers and counter values.

    Keeps three synchronised indexes: the flat claim map (for conflict
    checks), a per-vehicle index (for release) and a per-slot index
    plus a monotone purge floor (so garbage collection touches only
    dead cells, never the live population).
    """

    def __init__(self, grid: TileGrid, slot: float = 0.05):
        if slot <= 0:
            raise ValueError("slot must be positive")
        self.grid = grid
        self.slot = slot
        self._claims: Dict[Tuple[TileIndex, int], int] = {}
        self._by_vehicle: Dict[int, Set[Tuple[TileIndex, int]]] = {}
        #: Secondary index: slot -> cells claimed in that slot.
        self._by_slot: Dict[int, Set[Tuple[TileIndex, int]]] = {}
        #: All slots >= this are not yet purged (monotone floor).
        self._purge_floor: Optional[int] = None
        self.purge_visited = 0
        self.purged_total = 0

    def slot_of(self, t: float) -> int:
        """Time-slot index containing time ``t``."""
        return int(math.floor(t / self.slot))

    @property
    def claim_count(self) -> int:
        """Number of live (tile, slot) claims."""
        return len(self._claims)

    def holds(self, vehicle_id: int) -> bool:
        """True while ``vehicle_id`` has live (tile, slot) claims."""
        return bool(self._by_vehicle.get(vehicle_id))

    def conflicts(
        self, cells: Iterable[Tuple[TileIndex, int]], vehicle_id: int
    ) -> bool:
        """True if any cell is already claimed by a *different* vehicle."""
        for cell in cells:
            owner = self._claims.get(cell)
            if owner is not None and owner != vehicle_id:
                return True
        return False

    def commit(
        self, cells: Iterable[Tuple[TileIndex, int]], vehicle_id: int
    ) -> None:
        """Claim ``cells`` for ``vehicle_id`` (must be conflict-free)."""
        cells = list(cells)
        if self.conflicts(cells, vehicle_id):
            raise ValueError("commit() of conflicting cells")
        owned = self._by_vehicle.setdefault(vehicle_id, set())
        for cell in cells:
            self._claims[cell] = vehicle_id
            owned.add(cell)
            slot = cell[1]
            self._by_slot.setdefault(slot, set()).add(cell)
            if self._purge_floor is None or slot < self._purge_floor:
                self._purge_floor = slot

    def release(self, vehicle_id: int) -> int:
        """Drop all claims of ``vehicle_id``; returns how many."""
        owned = self._by_vehicle.pop(vehicle_id, set())
        for cell in owned:
            if self._claims.get(cell) == vehicle_id:
                del self._claims[cell]
                in_slot = self._by_slot.get(cell[1])
                if in_slot is not None:
                    in_slot.discard(cell)
                    if not in_slot:
                        del self._by_slot[cell[1]]
        return len(owned)

    def release_stale(self, cutoff_slot: int) -> int:
        """Release every vehicle whose *latest* claim predates
        ``cutoff_slot`` (seed O(claims) scan)."""
        stale = [
            vid
            for vid, cells in self._by_vehicle.items()
            if cells and max(slot for _, slot in cells) < cutoff_slot
        ]
        for vid in stale:
            self.release(vid)
        return len(stale)

    def purge_before(self, t: float) -> int:
        """Drop claims in slots strictly before ``t`` (garbage collection)."""
        cutoff = self.slot_of(t)
        floor = self._purge_floor
        if floor is None or floor >= cutoff:
            return 0
        dead = 0
        for slot in range(floor, cutoff):
            cells = self._by_slot.pop(slot, None)
            if not cells:
                continue
            for cell in cells:
                self.purge_visited += 1
                owner = self._claims.pop(cell, None)
                if owner is None:
                    continue
                dead += 1
                owned = self._by_vehicle.get(owner)
                if owned is not None:
                    owned.discard(cell)
        self._purge_floor = cutoff
        self.purged_total += dead
        return dead
