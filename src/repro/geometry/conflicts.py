"""Pairwise movement-conflict computation.

Two movements conflict where their lane-centre paths pass within the sum
of the half-widths of the vehicles using them.  For each ordered pair of
movements we compute the (possibly empty) list of
:class:`ConflictInterval` s — the arc-length windows ``[a_in, a_out]``
on path A and ``[b_in, b_out]`` on path B inside which the two paths are
closer than the clearance threshold.

The FCFS scheduler then serialises conflicting vehicles per interval: a
later vehicle may enter an interval only after the earlier vehicle's
tail (body + safety buffer) has cleared it.  Same-lane followers (equal
movement entry) always "conflict" over the full path, which also covers
rear-end separation inside the box.

The computation is purely geometric, done once per intersection and
cached; it is the moral equivalent of the conflict look-up tables of
Lee & Park (2012) cited in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.geometry.layout import IntersectionGeometry, Movement

__all__ = ["ConflictInterval", "ConflictTable"]


@dataclass(frozen=True)
class ConflictInterval:
    """Arc-length windows over which two paths are too close.

    ``a_in/a_out`` index the first movement's path, ``b_in/b_out`` the
    second's.  All are metres from the respective stop line.
    """

    a_in: float
    a_out: float
    b_in: float
    b_out: float

    def swapped(self) -> "ConflictInterval":
        """The same interval seen from the other vehicle's perspective."""
        return ConflictInterval(self.b_in, self.b_out, self.a_in, self.a_out)


class ConflictTable:
    """All pairwise conflict intervals of an intersection.

    Parameters
    ----------
    geometry:
        The intersection to analyse.
    clearance:
        Centre-to-centre distance below which two paths conflict; by
        default one vehicle width (two half-widths) — callers add
        longitudinal buffers at scheduling time instead of inflating
        the geometry.
    step:
        Sampling resolution along the paths, metres.
    """

    def __init__(
        self,
        geometry: IntersectionGeometry,
        clearance: float = 0.30,
        step: float = 0.02,
    ):
        if clearance <= 0:
            raise ValueError("clearance must be positive")
        if step <= 0:
            raise ValueError("step must be positive")
        self.geometry = geometry
        self.clearance = clearance
        self.step = step
        self._table: Dict[Tuple[str, str], List[ConflictInterval]] = {}
        self._samples: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for movement in geometry.movements:
            pts, ss = geometry.path(movement).sample(step)
            self._samples[movement.key] = (pts, ss)
        movements = geometry.movements
        for i, a in enumerate(movements):
            for b in movements[i:]:
                intervals = self._compute(a, b)
                self._table[(a.key, b.key)] = intervals
                if a.key != b.key:
                    self._table[(b.key, a.key)] = [iv.swapped() for iv in intervals]

    def _compute(self, a: Movement, b: Movement) -> List[ConflictInterval]:
        if a.key == b.key or a.entry == b.entry:
            # Same lane: full mutual exclusion (rear-end separation).
            la = self.geometry.crossing_distance(a)
            lb = self.geometry.crossing_distance(b)
            return [ConflictInterval(0.0, la, 0.0, lb)]
        pts_a, ss_a = self._samples[a.key]
        pts_b, ss_b = self._samples[b.key]
        # Pairwise distances between the two sampled paths.
        diff = pts_a[:, None, :] - pts_b[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        close = dist < self.clearance
        if not close.any():
            return []
        # The two paths cross (or merge) in at most a few blobs; for the
        # scheduler a single conservative hull per pair is sufficient
        # and is what the paper's single-conflict-region FCFS assumes.
        ai, bi = np.nonzero(close)
        return [
            ConflictInterval(
                a_in=float(ss_a[ai.min()]),
                a_out=float(ss_a[ai.max()]),
                b_in=float(ss_b[bi.min()]),
                b_out=float(ss_b[bi.max()]),
            )
        ]

    def intervals(self, a: Movement, b: Movement) -> List[ConflictInterval]:
        """Conflict intervals between movements ``a`` and ``b``."""
        return list(self._table[(a.key, b.key)])

    def conflicts(self, a: Movement, b: Movement) -> bool:
        """True if the two movements cannot overlap in the box."""
        return bool(self._table[(a.key, b.key)])

    def conflict_matrix(self) -> Dict[Tuple[str, str], bool]:
        """Boolean conflict map keyed by movement-key pairs."""
        return {pair: bool(ivs) for pair, ivs in self._table.items()}

    def compatible_pairs(self) -> List[Tuple[str, str]]:
        """Distinct movement pairs that can use the box simultaneously."""
        out = []
        for (ka, kb), ivs in self._table.items():
            if ka < kb and not ivs:
                out.append((ka, kb))
        return out
