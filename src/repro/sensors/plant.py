"""Noisy longitudinal plant: what the vehicle's speed loop actually does.

The IM's world model assumes commanded velocity changes happen at
exactly the specified acceleration.  The physical car differs: motor
response is first-order, the controller tracks with finite gain, and
the encoder it closes the loop on is quantised and slippy.  The gap
between the two is precisely the control/sensing error of Fig 3.1 that
the safety buffer has to absorb.

:class:`LongitudinalPlant` integrates::

    v' = clamp((v_cmd - v) / tau, -d_max, a_max) + process noise

with ``v_cmd`` supplied by the caller each ``dt`` step.  It also exposes
the encoder's noisy view of the state, which is what the vehicle
*reports to the IM* as ``VC``/``DT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sensors.models import EncoderModel

__all__ = ["LongitudinalPlant", "PlantConfig"]


@dataclass
class PlantConfig:
    """Physical parameters of the longitudinal plant.

    Defaults match a Traxxas Slash class RC car at testbed limits
    (3 m/s top speed).
    """

    a_max: float = 3.0
    d_max: float = 4.0
    v_max: float = 3.0
    #: Closed-loop velocity-response time constant, seconds.  A tuned
    #: 50 Hz speed loop with feedforward responds within ~25 ms; the
    #: residual lag times the worst ramp (0.1 -> 3.0 m/s) reproduces the
    #: testbed's ~75 mm worst-case Elong.
    tau: float = 0.025
    #: Acceleration process-noise standard deviation, m/s^2.
    accel_noise_std: float = 0.10
    encoder: EncoderModel = field(default_factory=EncoderModel)

    def __post_init__(self):
        if self.a_max <= 0 or self.d_max <= 0 or self.v_max <= 0:
            raise ValueError("a_max, d_max and v_max must be positive")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.accel_noise_std < 0:
            raise ValueError("accel_noise_std must be non-negative")


class LongitudinalPlant:
    """Stateful 1-D vehicle plant with noisy actuation and sensing.

    Parameters
    ----------
    config:
        Plant parameters.
    position, velocity:
        Initial true state.
    rng:
        Random generator driving actuation and encoder noise.
    ideal:
        When True, disables all noise and makes the response
        instantaneous-slew (``tau`` ignored, ramp at exactly the
        acceleration limits) — the IM's idealised world model.  Used to
        compute the *expected* trajectory of the Fig 3.1 experiment.
    """

    def __init__(
        self,
        config: PlantConfig,
        position: float = 0.0,
        velocity: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        ideal: bool = False,
    ):
        if velocity < 0:
            raise ValueError("velocity must be non-negative")
        self.config = config
        self.position = float(position)
        self.velocity = float(velocity)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.ideal = ideal
        self._measured_position = self.position
        self._odometry_error_bound = 0.0
        self.time = 0.0

    def step(self, v_cmd: float, dt: float) -> None:
        """Advance the plant ``dt`` seconds tracking ``v_cmd``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        cfg = self.config
        v_cmd = float(np.clip(v_cmd, 0.0, cfg.v_max))
        if self.ideal:
            accel = np.clip((v_cmd - self.velocity) / dt, -cfg.d_max, cfg.a_max)
        elif v_cmd < 0.01 and self.velocity < 0.05:
            # Brake hold: a commanded stop at near-rest pins the wheels.
            # Without this, clipping negative velocities at zero turns
            # the actuation noise into a one-directional random walk
            # that creeps a "stopped" vehicle over the line.
            accel = -self.velocity / dt
        else:
            accel = np.clip((v_cmd - self.velocity) / cfg.tau, -cfg.d_max, cfg.a_max)
            accel += self.rng.normal(0.0, cfg.accel_noise_std)
        new_v = float(np.clip(self.velocity + accel * dt, 0.0, cfg.v_max))
        # Trapezoidal position update.
        self.position += 0.5 * (self.velocity + new_v) * dt
        self.velocity = new_v
        self.time += dt
        # Odometry integrates the *measured* velocity.
        self._measured_position += self.measured_velocity() * dt
        if not self.ideal and new_v > 0.0:
            # Each moving sample can carry up to half an encoder count
            # of quantisation bias (a speed sitting on a count boundary
            # rounds the same way every window), so the odometry error
            # grows linearly with time spent in motion.  A stationary
            # wheel reads exactly zero, accruing nothing.
            self._odometry_error_bound += (
                0.5 * self.config.encoder.velocity_resolution * dt
            )

    def measured_velocity(self) -> float:
        """Encoder's view of the current velocity."""
        if self.ideal:
            return self.velocity
        return self.config.encoder.measure(self.velocity, self.rng)

    def measured_position(self) -> float:
        """Odometry position (integrated measured velocity)."""
        return self._measured_position

    @property
    def odometry_error_bound(self) -> float:
        """Worst-case |true - measured| position drift, metres.

        Quantisation-bias bound accrued over time in motion; safety
        clauses comparing odometry against a fixed line must brake this
        much earlier to guarantee the true bumper stays short of it.
        """
        return self._odometry_error_bound

    def reset(self, position: float = 0.0, velocity: float = 0.0) -> None:
        """Reset the true and measured state."""
        if velocity < 0:
            raise ValueError("velocity must be non-negative")
        self.position = float(position)
        self.velocity = float(velocity)
        self._measured_position = float(position)
        self._odometry_error_bound = 0.0
        self.time = 0.0
