"""Sensor noise models: quadrature encoder, GPS, IMU heading.

Ch 3.1: "An IM design must take into account the error propagated from
GPS, encoder, etc.  An encoder error would affect the vehicle
longitudinally, whereas GPS error would affect a vehicle both laterally
and longitudinally."

Numbers default to the testbed hardware class: a quadrature encoder on
the Traxxas motor (per-revolution quantisation plus slip noise), a
consumer GPS (metre-class, irrelevant indoors but modelled for the
general API), and the Bosch BNO055 IMU used for steering feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["EncoderModel", "GpsModel", "ImuModel"]


def _require_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


@dataclass
class EncoderModel:
    """Quadrature wheel encoder measuring longitudinal velocity.

    Parameters
    ----------
    counts_per_metre:
        Encoder resolution after gearing; velocity is quantised to one
        count per sample interval.
    sample_interval:
        Measurement window, seconds.
    slip_noise_std:
        Multiplicative wheel-slip noise (fraction of true speed).
    """

    counts_per_metre: float = 2500.0
    sample_interval: float = 0.02
    slip_noise_std: float = 0.01

    def __post_init__(self):
        if self.counts_per_metre <= 0:
            raise ValueError("counts_per_metre must be positive")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.slip_noise_std < 0:
            raise ValueError("slip_noise_std must be non-negative")

    @property
    def velocity_resolution(self) -> float:
        """Smallest nonzero speed distinguishable in one sample window."""
        return 1.0 / (self.counts_per_metre * self.sample_interval)

    def measure(self, true_velocity: float, rng: Optional[np.random.Generator] = None) -> float:
        """One noisy, quantised velocity measurement."""
        rng = _require_rng(rng)
        slipped = true_velocity * (1.0 + rng.normal(0.0, self.slip_noise_std))
        counts = round(abs(slipped) * self.counts_per_metre * self.sample_interval)
        speed = counts / (self.counts_per_metre * self.sample_interval)
        return float(np.copysign(speed, slipped) if slipped else 0.0)


@dataclass
class GpsModel:
    """Position fix with independent lateral/longitudinal gaussian error."""

    sigma_long: float = 0.02
    sigma_lat: float = 0.02

    def __post_init__(self):
        if self.sigma_long < 0 or self.sigma_lat < 0:
            raise ValueError("sigmas must be non-negative")

    def measure(
        self,
        true_long: float,
        true_lat: float,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, float]:
        """One (longitudinal, lateral) position fix."""
        rng = _require_rng(rng)
        return (
            float(true_long + rng.normal(0.0, self.sigma_long)),
            float(true_lat + rng.normal(0.0, self.sigma_lat)),
        )


@dataclass
class ImuModel:
    """Fused IMU heading (BNO055-class): bias plus gaussian noise."""

    bias: float = 0.0
    sigma: float = 0.01

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def measure(self, true_heading: float, rng: Optional[np.random.Generator] = None) -> float:
        """One heading measurement, radians."""
        rng = _require_rng(rng)
        return float(true_heading + self.bias + rng.normal(0.0, self.sigma))
