"""Sensing, actuation error and safety-buffer estimation (paper Ch 3).

The paper sizes the longitudinal safety buffer empirically: run the
hold / accelerate / hold velocity profile of Fig 3.1 on the real car 20
times, measure the worst final-position error ``Elong`` (+-75 mm), add
the time-synchronisation contribution (1 ms @ 3 m/s = 3 mm) for a total
of +-78 mm.  VT-IM must *additionally* cover the worst-case round-trip
delay (150 ms @ 3 m/s = 0.45 m); Crossroads does not.

This package provides the sensor noise models (encoder, GPS, IMU), a
noisy longitudinal plant (actuation lag + process noise + quantised
encoder), a constant-velocity Kalman fusion filter, the Fig 3.1
experiment as a reusable procedure, and the buffer calculator that
turns the measured errors into per-policy buffer sizes.
"""

from repro.sensors.buffer import BufferBreakdown, SafetyBufferCalculator
from repro.sensors.error_experiment import (
    ErrorExperimentConfig,
    ErrorExperimentResult,
    TrialResult,
    run_error_experiment,
    worst_case_elong,
)
from repro.sensors.fusion import KalmanEstimate, LongitudinalKalman
from repro.sensors.models import EncoderModel, GpsModel, ImuModel
from repro.sensors.plant import LongitudinalPlant, PlantConfig

__all__ = [
    "BufferBreakdown",
    "EncoderModel",
    "ErrorExperimentConfig",
    "ErrorExperimentResult",
    "GpsModel",
    "ImuModel",
    "KalmanEstimate",
    "LongitudinalKalman",
    "LongitudinalPlant",
    "PlantConfig",
    "SafetyBufferCalculator",
    "TrialResult",
    "run_error_experiment",
    "worst_case_elong",
]
