"""Constant-velocity Kalman filter for longitudinal state estimation.

Ch 3.1 notes that the safety buffer depends not only on raw sensor
errors but on "the data fusion and control algorithms" — so the library
includes the fusion stage.  The filter estimates ``[position,
velocity]`` from encoder velocity updates and (optionally) absolute
position fixes, and reports its 3-sigma position bound, which is an
analytic cross-check on the empirically estimated buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["KalmanEstimate", "LongitudinalKalman"]


@dataclass(frozen=True)
class KalmanEstimate:
    """Filter output: state estimate plus covariance diagonal."""

    position: float
    velocity: float
    var_position: float
    var_velocity: float

    @property
    def position_bound(self) -> float:
        """3-sigma position uncertainty, metres."""
        return 3.0 * math.sqrt(max(self.var_position, 0.0))


class LongitudinalKalman:
    """Discrete constant-velocity KF with velocity and position updates.

    Parameters
    ----------
    q_accel:
        Process-noise acceleration spectral density (m/s^2)^2.
    r_velocity:
        Encoder measurement variance (m/s)^2.
    r_position:
        Position-fix variance m^2.
    """

    def __init__(
        self,
        position: float = 0.0,
        velocity: float = 0.0,
        q_accel: float = 0.04,
        r_velocity: float = 4e-4,
        r_position: float = 4e-4,
        p0: float = 1e-4,
    ):
        if q_accel <= 0 or r_velocity <= 0 or r_position <= 0:
            raise ValueError("noise parameters must be positive")
        self.x = np.array([position, velocity], dtype=float)
        self.P = np.eye(2) * p0
        self.q_accel = q_accel
        self.r_velocity = r_velocity
        self.r_position = r_position

    def predict(self, dt: float) -> None:
        """Propagate the state ``dt`` seconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        F = np.array([[1.0, dt], [0.0, 1.0]])
        # Discrete white-noise-acceleration process covariance.
        Q = self.q_accel * np.array(
            [[dt ** 4 / 4.0, dt ** 3 / 2.0], [dt ** 3 / 2.0, dt ** 2]]
        )
        self.x = F @ self.x
        self.P = F @ self.P @ F.T + Q

    def _update(self, H: np.ndarray, z: float, r: float) -> None:
        y = z - float(H @ self.x)
        S = float(H @ self.P @ H.T) + r
        K = (self.P @ H.T) / S
        self.x = self.x + K * y
        self.P = (np.eye(2) - np.outer(K, H)) @ self.P

    def update_velocity(self, measured_velocity: float) -> None:
        """Fuse one encoder velocity measurement."""
        self._update(np.array([0.0, 1.0]), measured_velocity, self.r_velocity)

    def update_position(self, measured_position: float) -> None:
        """Fuse one absolute position fix."""
        self._update(np.array([1.0, 0.0]), measured_position, self.r_position)

    @property
    def estimate(self) -> KalmanEstimate:
        """Current state estimate."""
        return KalmanEstimate(
            position=float(self.x[0]),
            velocity=float(self.x[1]),
            var_position=float(self.P[0, 0]),
            var_velocity=float(self.P[1, 1]),
        )
