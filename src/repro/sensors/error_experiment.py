"""The Fig 3.1 safety-buffer estimation experiment.

Procedure (Ch 3.1): start at velocity ``v0``, hold until ``T1``,
accelerate (or decelerate) to ``v1`` by ``T2``, hold until ``T3``.
Compare the final position against the *ideal* trajectory the IM would
predict; the difference is the longitudinal error ``Elong``.  Repeat 20
times; the worst-case over the two extreme profiles (0.1 -> 3.0 m/s and
3.0 -> 0.1 m/s) bounds the buffer.  The paper measures +-75 mm.

:func:`run_error_experiment` executes the procedure on a
:class:`~repro.sensors.plant.LongitudinalPlant`; the defaults are tuned
so the simulated worst case lands in the testbed's measured range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.sensors.plant import LongitudinalPlant, PlantConfig

__all__ = [
    "ErrorExperimentConfig",
    "ErrorExperimentResult",
    "TrialResult",
    "run_error_experiment",
    "worst_case_elong",
]


@dataclass
class ErrorExperimentConfig:
    """Parameters of one hold/ramp/hold profile run."""

    v0: float = 0.1
    v1: float = 3.0
    #: Duration of the initial hold phase (T1 - T0), seconds.
    hold1: float = 1.0
    #: Duration of the final hold phase (T3 - T2), seconds.
    hold2: float = 1.0
    #: Ramp acceleration magnitude used for the ideal trajectory.
    ramp_accel: float = 3.0
    dt: float = 0.01
    trials: int = 20
    plant: PlantConfig = field(default_factory=PlantConfig)

    def __post_init__(self):
        if self.v0 < 0 or self.v1 < 0:
            raise ValueError("velocities must be non-negative")
        if self.hold1 <= 0 or self.hold2 <= 0:
            raise ValueError("hold phases must be positive")
        if self.ramp_accel <= 0:
            raise ValueError("ramp_accel must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")

    @property
    def ramp_duration(self) -> float:
        """Ideal ramp time (T2 - T1)."""
        return abs(self.v1 - self.v0) / self.ramp_accel

    @property
    def total_duration(self) -> float:
        """Ideal total time (T3 - T0)."""
        return self.hold1 + self.ramp_duration + self.hold2

    def ideal_final_position(self) -> float:
        """Position P3 the IM's model predicts at T3."""
        ramp_dist = 0.5 * (self.v0 + self.v1) * self.ramp_duration
        return self.v0 * self.hold1 + ramp_dist + self.v1 * self.hold2

    def command_at(self, t: float) -> float:
        """Commanded velocity at experiment time ``t``.

        The command ramps linearly during the acceleration phase — this
        is the trajectory the vehicle's speed loop is asked to track.
        """
        if t < self.hold1:
            return self.v0
        ramp_end = self.hold1 + self.ramp_duration
        if t < ramp_end:
            frac = (t - self.hold1) / self.ramp_duration
            return self.v0 + frac * (self.v1 - self.v0)
        return self.v1


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial."""

    elong: float
    final_velocity: float
    final_position: float
    ideal_position: float


@dataclass
class ErrorExperimentResult:
    """Aggregate over all trials of one profile."""

    config: ErrorExperimentConfig
    trials: List[TrialResult]

    @property
    def elongs(self) -> np.ndarray:
        """Per-trial longitudinal errors."""
        return np.array([t.elong for t in self.trials])

    @property
    def max_abs_elong(self) -> float:
        """Worst |Elong| over the trials (the buffer candidate)."""
        return float(np.max(np.abs(self.elongs)))

    @property
    def mean_elong(self) -> float:
        return float(np.mean(self.elongs))

    @property
    def std_elong(self) -> float:
        return float(np.std(self.elongs))


def run_error_experiment(
    config: ErrorExperimentConfig,
    rng: Optional[np.random.Generator] = None,
) -> ErrorExperimentResult:
    """Run the Fig 3.1 procedure ``config.trials`` times."""
    rng = rng if rng is not None else np.random.default_rng()
    ideal = config.ideal_final_position()
    results = []
    for _ in range(config.trials):
        plant = LongitudinalPlant(config.plant, velocity=config.v0, rng=rng)
        steps = int(round(config.total_duration / config.dt))
        for k in range(steps):
            t = k * config.dt
            plant.step(config.command_at(t), config.dt)
        results.append(
            TrialResult(
                elong=ideal - plant.position,
                final_velocity=plant.velocity,
                final_position=plant.position,
                ideal_position=ideal,
            )
        )
    return ErrorExperimentResult(config=config, trials=results)


def worst_case_elong(
    plant: Optional[PlantConfig] = None,
    trials: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, ErrorExperimentResult, ErrorExperimentResult]:
    """Worst |Elong| over the paper's two extreme profiles.

    Runs 0.1 -> 3.0 m/s (worst positive error) and 3.0 -> 0.1 m/s
    (worst negative error) and returns the outer bound plus both raw
    results.
    """
    rng = rng if rng is not None else np.random.default_rng()
    plant = plant if plant is not None else PlantConfig()
    up = run_error_experiment(
        ErrorExperimentConfig(v0=0.1, v1=3.0, trials=trials, plant=plant), rng
    )
    down = run_error_experiment(
        ErrorExperimentConfig(v0=3.0, v1=0.1, trials=trials, plant=plant), rng
    )
    bound = max(up.max_abs_elong, down.max_abs_elong)
    return bound, up, down
