"""Safety-buffer sizing (paper Ch 3 + the VT-IM RTD buffer of Ch 4).

The longitudinal buffer a policy must assume around each vehicle is::

    buffer = Elong_control_sensing          # Fig 3.1 experiment
           + sync_error * v_max             # Ch 3.2 (1 ms -> 3 mm)
           + [ wc_rtd * v_max ]             # VT-IM only (Ch 4)

The testbed numbers: 75 mm + 3 mm (+ 450 mm for plain VT-IM).
Lateral error is assumed absorbed by lane keeping (Ch 3.2), as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BufferBreakdown", "SafetyBufferCalculator"]


@dataclass(frozen=True)
class BufferBreakdown:
    """Per-source buffer contributions, metres."""

    sensing: float
    sync: float
    rtd: float

    @property
    def base(self) -> float:
        """Buffer every policy needs (sensing + sync)."""
        return self.sensing + self.sync

    @property
    def total(self) -> float:
        """Buffer a plain VT-IM needs (base + RTD)."""
        return self.base + self.rtd


class SafetyBufferCalculator:
    """Turns measured error bounds into per-policy buffer sizes.

    Parameters
    ----------
    elong:
        Worst-case control/sensing longitudinal error, metres
        (testbed: 0.075).
    sync_error:
        Residual clock-sync error, seconds (testbed: 1e-3).
    wc_rtd:
        Worst-case round-trip delay, seconds (testbed: 0.150).
    v_max:
        Maximum approach speed, m/s (testbed: 3.0).
    """

    def __init__(
        self,
        elong: float = 0.075,
        sync_error: float = 1e-3,
        wc_rtd: float = 0.150,
        v_max: float = 3.0,
    ):
        if elong < 0 or sync_error < 0 or wc_rtd < 0:
            raise ValueError("error terms must be non-negative")
        if v_max <= 0:
            raise ValueError("v_max must be positive")
        self.elong = elong
        self.sync_error = sync_error
        self.wc_rtd = wc_rtd
        self.v_max = v_max

    def breakdown(self) -> BufferBreakdown:
        """All contributions at once."""
        return BufferBreakdown(
            sensing=self.elong,
            sync=self.sync_error * self.v_max,
            rtd=self.wc_rtd * self.v_max,
        )

    def for_policy(self, policy: str) -> float:
        """Buffer a given policy must assume.

        ``"vt-im"`` pays sensing + sync + RTD; ``"crossroads"`` and
        ``"aim"`` pay only sensing + sync (Ch 7.2).
        """
        b = self.breakdown()
        key = policy.lower().replace("_", "-")
        if key in ("vt-im", "vtim"):
            return b.total
        if key in ("crossroads", "aim", "qb-im", "qbim"):
            return b.base
        raise ValueError(f"unknown policy {policy!r}")
