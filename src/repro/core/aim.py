"""AIM: the query-based reservation IM baseline (paper Ch 5.2).

Protocol (Dresner & Stone 2004/2008):  the vehicle proposes "I will
arrive at ``ToA`` at speed ``VC``"; the IM *simulates the trajectory*
over a space-time tile grid and answers accept/reject.  Rejected
vehicles slow down and re-request — the "trial and error scheme" whose
re-simulation cost and message storms the paper measures at up to
16-20X the Crossroads overhead.

No RTD buffer is needed (the vehicle, not the IM, fixes the arrival
time), but the yes/no interface cannot optimise and saturates early.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.base import BaseIM, IMConfig
from repro.core.compute import AimComputeModel, ComputeModel
from repro.core.vtim import _vehicle_id_from_address
from repro.des import Environment
from repro.geometry.layout import IntersectionGeometry, Movement, Path
from repro.geometry.tiles import TileFootprint, TileGrid, TileReservations
from repro.network.channel import Radio
from repro.network.messages import (
    AimAccept,
    AimReject,
    AimRequest,
    ExitNotification,
    Message,
)

__all__ = ["AimConfig", "AimIM"]


class AimConfig:
    """AIM-specific knobs.

    Parameters
    ----------
    tiles_per_side:
        Spatial resolution of the reservation grid.
    slot:
        Temporal resolution of the reservation grid, seconds.
    sim_step:
        Trajectory-simulation time step (should be <= slot / 2 so no
        slot is skipped).
    pose_quant:
        Pose-quantisation granularity for the vectorised trajectory
        sweep, in *tiles* of arc length (0 or ``None`` disables
        quantisation and restores the exact scalar sweep).  Poses are
        snapped to a per-path table of precomputed quantised poses and
        rasterised with a conservative pad that provably makes each
        snapped footprint a superset of the exact one — identical
        safety guarantees, and the footprint cache collapses the
        continuum of poses onto a few dozen table entries per path
        (hit rates >90% instead of ~50%).
    """

    def __init__(
        self,
        tiles_per_side: int = 16,
        slot: float = 0.08,
        sim_step: float = 0.04,
        max_horizon: float = 20.0,
        pose_quant: Optional[float] = 0.75,
    ):
        if tiles_per_side < 1:
            raise ValueError("tiles_per_side must be >= 1")
        if slot <= 0 or sim_step <= 0:
            raise ValueError("slot and sim_step must be positive")
        if sim_step > slot:
            raise ValueError("sim_step must not exceed slot")
        if max_horizon <= 0:
            raise ValueError("max_horizon must be positive")
        if pose_quant is not None and pose_quant < 0:
            raise ValueError("pose_quant must be non-negative")
        self.tiles_per_side = tiles_per_side
        self.slot = slot
        self.sim_step = sim_step
        #: Reject proposals further than this in the future outright
        #: (AIM implementations cap the reservation horizon).
        self.max_horizon = max_horizon
        self.pose_quant = pose_quant


def _angle_diff(a: float, b: float) -> float:
    """Absolute angular difference, wrapped to [0, pi]."""
    d = math.fmod(a - b, 2.0 * math.pi)
    if d > math.pi:
        d -= 2.0 * math.pi
    elif d < -math.pi:
        d += 2.0 * math.pi
    return abs(d)


class _PoseTable:
    """Precomputed quantised poses along one movement path.

    Entry ``k`` is the pose (point + heading) at the snapped arc
    position ``s_k = min(k * quant, path.length)``; any exact arc
    position snaps to the entry at most ``quant / 2`` away.

    ``dtheta_max`` bounds the heading change over any ``quant / 2``
    arc-length window of the path (paths are arc-length polylines with
    piecewise-constant heading, so the bound is the max heading
    difference over segment pairs whose gap is within the window).  It
    feeds the conservative rasterisation pad that makes a snapped
    footprint a provable superset of the exact one.
    """

    __slots__ = ("quant", "n_entries", "xs", "ys", "headings", "dtheta_max")

    def __init__(self, path: Path, quant: float):
        self.quant = quant
        n_last = int(math.ceil(path.length / quant))
        self.n_entries = n_last + 1
        xs = np.empty(self.n_entries)
        ys = np.empty(self.n_entries)
        headings = np.empty(self.n_entries)
        for k in range(self.n_entries):
            s_k = min(k * quant, path.length)
            point = path.point_at(s_k)
            xs[k] = float(point[0])
            ys[k] = float(point[1])
            headings[k] = path.heading_at(s_k)
        self.xs, self.ys, self.headings = xs, ys, headings
        window = quant / 2.0
        seg_headings = [
            math.atan2(d[1], d[0]) for d in np.diff(path.points, axis=0)
        ]
        cumlen = path.cumlen
        dtheta = 0.0
        for i in range(len(seg_headings)):
            for j in range(i + 1, len(seg_headings)):
                if cumlen[j] - cumlen[i + 1] > window:
                    break
                dtheta = max(dtheta, _angle_diff(seg_headings[j], seg_headings[i]))
        self.dtheta_max = dtheta

    def snap(self, arc_positions: np.ndarray) -> np.ndarray:
        """Table indices of the snapped positions (|error| <= quant/2)."""
        return np.clip(
            np.rint(arc_positions / self.quant).astype(np.int64),
            0,
            self.n_entries - 1,
        )


class AimIM(BaseIM):
    """First-come-first-served tile-reservation intersection manager."""

    def __init__(
        self,
        env: Environment,
        radio: Radio,
        geometry: IntersectionGeometry,
        config: Optional[IMConfig] = None,
        aim_config: Optional[AimConfig] = None,
        compute: Optional[ComputeModel] = None,
    ):
        super().__init__(
            env,
            radio,
            compute if compute is not None else AimComputeModel(),
            config,
        )
        self.geometry = geometry
        self.aim_config = aim_config if aim_config is not None else AimConfig()
        grid = TileGrid(geometry.box, self.aim_config.tiles_per_side)
        self.reservations = TileReservations(grid, slot=self.aim_config.slot)
        #: Cells simulated across all requests (compute-cost proxy).
        self.cells_simulated = 0
        #: Per-movement quantised-pose tables (coarse sweep only).
        self._pose_tables: Dict[Movement, _PoseTable] = {}

    # -- trajectory simulation ---------------------------------------------
    def simulate_cells(
        self,
        info,
        toa: float,
        vc: float,
        accelerate: bool,
        standoff: float = 0.0,
    ) -> Union[TileFootprint, Set[Tuple[Tuple[int, int], int]]]:
        """Sweep the buffered footprint over the grid, slot by slot.

        Constant-speed proposals put the front bumper at the stop line
        at ``toa`` moving at ``vc``.  Launch proposals (``accelerate``)
        start from rest ``standoff`` metres *before* the line at ``toa``
        and ramp at ``a_max`` toward the speed limit.

        With ``AimConfig.pose_quant`` set (the default), the whole
        sweep is rasterised in one vectorised pass over quantised poses
        and returns a packed :class:`TileFootprint` — a conservative
        superset of the exact sweep's cells (same timestep set, each
        pose snapped to the nearest table entry and padded by the
        worst-case snap displacement).  With ``pose_quant`` of 0/None
        it returns the exact scalar sweep's cell set; both forms are
        accepted by :class:`TileReservations`.
        """
        if self.aim_config.pose_quant:
            return self._simulate_cells_batch(info, toa, vc, accelerate, standoff)
        return self._simulate_cells_scalar(info, toa, vc, accelerate, standoff)

    def _simulate_cells_scalar(
        self,
        info,
        toa: float,
        vc: float,
        accelerate: bool,
        standoff: float = 0.0,
    ) -> Set[Tuple[Tuple[int, int], int]]:
        """Exact pose-at-a-time sweep (reference for the batch path)."""
        spec = info.spec
        path = self.geometry.path(info.movement)
        length = spec.length
        buffer = info.buffer
        v_max = min(spec.v_max, self.config.v_max)
        step = self.aim_config.sim_step
        cells: Set[Tuple[Tuple[int, int], int]] = set()
        t = toa
        # Simulate until the buffered rear clears the path exit.
        while True:
            dt_rel = t - toa
            if accelerate:
                t_ramp = max((v_max - vc) / spec.a_max, 0.0)
                if dt_rel <= t_ramp:
                    s_front = vc * dt_rel + 0.5 * spec.a_max * dt_rel ** 2
                else:
                    ramp_dist = vc * t_ramp + 0.5 * spec.a_max * t_ramp ** 2
                    s_front = ramp_dist + v_max * (dt_rel - t_ramp)
                s_front -= standoff
            else:
                s_front = vc * dt_rel
            if s_front - length - buffer > path.length:
                break
            centre_s = s_front - length / 2.0
            clamped = min(max(centre_s, 0.0), path.length)
            point = path.point_at(clamped)
            heading = path.heading_at(clamped)
            tiles = self.reservations.grid.tiles_for_pose(
                float(point[0]), float(point[1]), heading, length, spec.width, buffer
            )
            slot = self.reservations.slot_of(t)
            for tile in tiles:
                cells.add((tile, slot))
                cells.add((tile, slot + 1))  # guard the slot boundary
            t += step
            if t - toa > 60.0:  # runaway guard for degenerate inputs
                break
        return cells

    def _pose_table(self, movement: Movement) -> _PoseTable:
        table = self._pose_tables.get(movement)
        if table is None:
            quant = self.aim_config.pose_quant * self.reservations.grid.tile_size
            table = _PoseTable(self.geometry.path(movement), quant)
            self._pose_tables[movement] = table
        return table

    def _simulate_timesteps(
        self,
        toa: float,
        vc: float,
        accelerate: bool,
        standoff: float,
        spec,
        path_length: float,
        length: float,
        buffer: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The scalar sweep's processed timesteps, as arrays.

        Returns ``(ts, s_front)`` for exactly the iterations the scalar
        loop processes: the prefix before the first geometric break
        (buffered rear past the path exit) or runaway break
        (``t - toa > 60``), whichever comes first.  Timestamps are
        produced by sequential float adds (``np.add.accumulate``), the
        identical IEEE operations of the scalar ``t += step`` loop.
        """
        v_max = min(spec.v_max, self.config.v_max)
        step = self.aim_config.sim_step
        if accelerate:
            t_ramp = max((v_max - vc) / spec.a_max, 0.0)
            ramp_dist = vc * t_ramp + 0.5 * spec.a_max * t_ramp ** 2
        exit_s = path_length + length + buffer
        chunk = 128
        max_steps = int(math.ceil(60.0 / step)) + 4
        ts_parts: List[np.ndarray] = []
        sf_parts: List[np.ndarray] = []
        t_last = toa
        produced = 0
        while True:
            count = min(chunk, max_steps - produced)
            first = toa if produced == 0 else t_last + step
            ts = np.add.accumulate(
                np.concatenate(([first], np.full(count - 1, step)))
            )
            t_last = float(ts[-1])
            produced += count
            dt_rel = ts - toa
            if accelerate:
                s_front = np.where(
                    dt_rel <= t_ramp,
                    vc * dt_rel + 0.5 * spec.a_max * dt_rel ** 2,
                    ramp_dist + v_max * (dt_rel - t_ramp),
                )
                s_front = s_front - standoff
            else:
                s_front = vc * dt_rel
            stop = (s_front - length - buffer > path_length) | (dt_rel > 60.0)
            if stop.any():
                n = int(np.argmax(stop))
                ts_parts.append(ts[:n])
                sf_parts.append(s_front[:n])
                break
            ts_parts.append(ts)
            sf_parts.append(s_front)
            if produced >= max_steps:  # unreachable: runaway stop fires first
                break
        return np.concatenate(ts_parts), np.concatenate(sf_parts)

    def _simulate_cells_batch(
        self,
        info,
        toa: float,
        vc: float,
        accelerate: bool,
        standoff: float = 0.0,
    ) -> TileFootprint:
        """Vectorised sweep over quantised poses.

        Every exact pose is snapped to the nearest :class:`_PoseTable`
        entry (arc-position error <= quant/2) and rasterised with pad
        ``quant/2 + dtheta_max * R + 1e-9`` where ``R`` is the
        circumradius of the exact grown rectangle — by the triangle
        inequality a tile centre inside the exact rectangle is inside
        the padded snapped one, so the claimed cell set is a superset
        of the exact sweep's (``tests/test_aim_batch_sweep.py``).  All
        cache-missing poses rasterise in one numpy pass.
        """
        spec = info.spec
        path = self.geometry.path(info.movement)
        length = spec.length
        buffer = info.buffer
        grid = self.reservations.grid
        ts, s_front = self._simulate_timesteps(
            toa, vc, accelerate, standoff, spec, path.length, length, buffer
        )
        if len(ts) == 0:
            return TileFootprint(
                grid.n, 0, np.zeros((0, grid.words), dtype=np.uint64)
            )
        centre_s = s_front - length / 2.0
        clamped = np.minimum(np.maximum(centre_s, 0.0), path.length)
        table = self._pose_table(info.movement)
        idx = table.snap(clamped)
        grow = grid.tile_size * math.sqrt(2.0) / 2.0
        radius = math.hypot(length / 2.0 + buffer + grow, spec.width / 2.0 + grow)
        pad = table.quant / 2.0 + table.dtheta_max * radius + 1e-9
        entries = grid.footprints_for_poses(
            table.xs[idx], table.ys[idx], table.headings[idx],
            length, spec.width, buffer, pad,
        )
        slots = np.floor(ts / self.reservations.slot).astype(np.int64)
        s0 = int(slots.min())
        masks = np.zeros(
            (int(slots.max()) - s0 + 2, grid.words), dtype=np.uint64
        )
        bitmaps = np.stack([bm for _, bm in entries])
        rel = slots - s0
        np.bitwise_or.at(masks, rel, bitmaps)
        np.bitwise_or.at(masks, rel + 1, bitmaps)  # guard the slot boundary
        return TileFootprint(grid.n, s0, masks)

    # -- protocol ---------------------------------------------------------------
    def handle_crossing(self, message: Message) -> Tuple[Optional[Message], dict]:
        if not isinstance(message, AimRequest):
            return None, {"cells": 0}
        info = message.vehicle_info
        vid = info.vehicle_id
        # The reply leaves only after this request's service time, so a
        # viable toa must clear the worst-case compute + network delay —
        # otherwise the vehicle would start the manoeuvre late relative
        # to its reservation.
        out_of_window = (
            message.toa < self.env.now + self.config.wc_rtd
            or message.toa > self.env.now + self.aim_config.max_horizon
        )
        if out_of_window:
            self.stats.rejects += 1
            return (
                AimReject(sender=self.config.address, receiver=message.sender,
                          in_reply_to=message.seq),
                {"cells": 0},
            )
        cells = self.simulate_cells(
            info, message.toa, message.vc, message.accelerate, message.standoff
        )
        self.cells_simulated += len(cells)
        work = {"cells": len(cells)}
        if self.reservations.conflicts(cells, vid):
            self.stats.rejects += 1
            return (
                AimReject(sender=self.config.address, receiver=message.sender,
                          in_reply_to=message.seq),
                work,
            )
        # Re-reservation (e.g. retransmit after a lost accept) replaces
        # the old claim.
        self.reservations.release(vid)
        self.reservations.commit(cells, vid)
        self.stats.accepts += 1
        self.note_grant(message.sender, message.seq)
        response = AimAccept(
            sender=self.config.address,
            receiver=message.sender,
            toa=message.toa,
            vc=message.vc,
            in_reply_to=message.seq,
        )
        return response, work

    def handle_exit(self, message: ExitNotification) -> None:
        vehicle_id = _vehicle_id_from_address(message.sender)
        if vehicle_id is not None:
            self.reservations.release(vehicle_id)
        self.reservations.purge_before(self.env.now - 5.0)

    def invalidate_quiet(self, now: float) -> int:
        """Release tile claims of vehicles that never reported an exit.

        A vehicle whose *entire* reservation lies more than
        ``quiet_timeout`` in the past crossed (or died) without its
        exit notification ever arriving; its claims are withdrawn so
        the per-vehicle book stays bounded.  Claims extending into the
        future are kept — the owner may be silently cruising to its
        slot, which is the protocol's normal behaviour.
        """
        cutoff = self.reservations.slot_of(now - self.config.quiet_timeout)
        released = self.reservations.release_stale(cutoff)
        self.stats.invalidations += released
        return released
