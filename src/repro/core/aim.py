"""AIM: the query-based reservation IM baseline (paper Ch 5.2).

Protocol (Dresner & Stone 2004/2008):  the vehicle proposes "I will
arrive at ``ToA`` at speed ``VC``"; the IM *simulates the trajectory*
over a space-time tile grid and answers accept/reject.  Rejected
vehicles slow down and re-request — the "trial and error scheme" whose
re-simulation cost and message storms the paper measures at up to
16-20X the Crossroads overhead.

No RTD buffer is needed (the vehicle, not the IM, fixes the arrival
time), but the yes/no interface cannot optimise and saturates early.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.core.base import BaseIM, IMConfig
from repro.core.compute import AimComputeModel, ComputeModel
from repro.core.vtim import _vehicle_id_from_address
from repro.des import Environment
from repro.geometry.layout import IntersectionGeometry
from repro.geometry.tiles import TileGrid, TileReservations
from repro.network.channel import Radio
from repro.network.messages import (
    AimAccept,
    AimReject,
    AimRequest,
    ExitNotification,
    Message,
)

__all__ = ["AimConfig", "AimIM"]


class AimConfig:
    """AIM-specific knobs.

    Parameters
    ----------
    tiles_per_side:
        Spatial resolution of the reservation grid.
    slot:
        Temporal resolution of the reservation grid, seconds.
    sim_step:
        Trajectory-simulation time step (should be <= slot / 2 so no
        slot is skipped).
    """

    def __init__(
        self,
        tiles_per_side: int = 16,
        slot: float = 0.08,
        sim_step: float = 0.04,
        max_horizon: float = 20.0,
    ):
        if tiles_per_side < 1:
            raise ValueError("tiles_per_side must be >= 1")
        if slot <= 0 or sim_step <= 0:
            raise ValueError("slot and sim_step must be positive")
        if sim_step > slot:
            raise ValueError("sim_step must not exceed slot")
        if max_horizon <= 0:
            raise ValueError("max_horizon must be positive")
        self.tiles_per_side = tiles_per_side
        self.slot = slot
        self.sim_step = sim_step
        #: Reject proposals further than this in the future outright
        #: (AIM implementations cap the reservation horizon).
        self.max_horizon = max_horizon


class AimIM(BaseIM):
    """First-come-first-served tile-reservation intersection manager."""

    def __init__(
        self,
        env: Environment,
        radio: Radio,
        geometry: IntersectionGeometry,
        config: Optional[IMConfig] = None,
        aim_config: Optional[AimConfig] = None,
        compute: Optional[ComputeModel] = None,
    ):
        super().__init__(
            env,
            radio,
            compute if compute is not None else AimComputeModel(),
            config,
        )
        self.geometry = geometry
        self.aim_config = aim_config if aim_config is not None else AimConfig()
        grid = TileGrid(geometry.box, self.aim_config.tiles_per_side)
        self.reservations = TileReservations(grid, slot=self.aim_config.slot)
        #: Cells simulated across all requests (compute-cost proxy).
        self.cells_simulated = 0

    # -- trajectory simulation ---------------------------------------------
    def simulate_cells(
        self,
        info,
        toa: float,
        vc: float,
        accelerate: bool,
        standoff: float = 0.0,
    ) -> Set[Tuple[Tuple[int, int], int]]:
        """Sweep the buffered footprint over the grid, slot by slot.

        Constant-speed proposals put the front bumper at the stop line
        at ``toa`` moving at ``vc``.  Launch proposals (``accelerate``)
        start from rest ``standoff`` metres *before* the line at ``toa``
        and ramp at ``a_max`` toward the speed limit.  Returns the set
        of claimed (tile, slot) cells.
        """
        spec = info.spec
        path = self.geometry.path(info.movement)
        length = spec.length
        buffer = info.buffer
        v_max = min(spec.v_max, self.config.v_max)
        step = self.aim_config.sim_step
        cells: Set[Tuple[Tuple[int, int], int]] = set()
        t = toa
        # Simulate until the buffered rear clears the path exit.
        while True:
            dt_rel = t - toa
            if accelerate:
                t_ramp = max((v_max - vc) / spec.a_max, 0.0)
                if dt_rel <= t_ramp:
                    s_front = vc * dt_rel + 0.5 * spec.a_max * dt_rel ** 2
                else:
                    ramp_dist = vc * t_ramp + 0.5 * spec.a_max * t_ramp ** 2
                    s_front = ramp_dist + v_max * (dt_rel - t_ramp)
                s_front -= standoff
            else:
                s_front = vc * dt_rel
            if s_front - length - buffer > path.length:
                break
            centre_s = s_front - length / 2.0
            clamped = min(max(centre_s, 0.0), path.length)
            point = path.point_at(clamped)
            heading = path.heading_at(clamped)
            tiles = self.reservations.grid.tiles_for_pose(
                float(point[0]), float(point[1]), heading, length, spec.width, buffer
            )
            slot = self.reservations.slot_of(t)
            for tile in tiles:
                cells.add((tile, slot))
                cells.add((tile, slot + 1))  # guard the slot boundary
            t += step
            if t - toa > 60.0:  # runaway guard for degenerate inputs
                break
        return cells

    # -- protocol ---------------------------------------------------------------
    def handle_crossing(self, message: Message) -> Tuple[Optional[Message], dict]:
        if not isinstance(message, AimRequest):
            return None, {"cells": 0}
        info = message.vehicle_info
        vid = info.vehicle_id
        # The reply leaves only after this request's service time, so a
        # viable toa must clear the worst-case compute + network delay —
        # otherwise the vehicle would start the manoeuvre late relative
        # to its reservation.
        out_of_window = (
            message.toa < self.env.now + self.config.wc_rtd
            or message.toa > self.env.now + self.aim_config.max_horizon
        )
        if out_of_window:
            self.stats.rejects += 1
            return (
                AimReject(sender=self.config.address, receiver=message.sender,
                          in_reply_to=message.seq),
                {"cells": 0},
            )
        cells = self.simulate_cells(
            info, message.toa, message.vc, message.accelerate, message.standoff
        )
        self.cells_simulated += len(cells)
        work = {"cells": len(cells)}
        if self.reservations.conflicts(cells, vid):
            self.stats.rejects += 1
            return (
                AimReject(sender=self.config.address, receiver=message.sender,
                          in_reply_to=message.seq),
                work,
            )
        # Re-reservation (e.g. retransmit after a lost accept) replaces
        # the old claim.
        self.reservations.release(vid)
        self.reservations.commit(cells, vid)
        self.stats.accepts += 1
        self.note_grant(message.sender, message.seq)
        response = AimAccept(
            sender=self.config.address,
            receiver=message.sender,
            toa=message.toa,
            vc=message.vc,
            in_reply_to=message.seq,
        )
        return response, work

    def handle_exit(self, message: ExitNotification) -> None:
        vehicle_id = _vehicle_id_from_address(message.sender)
        if vehicle_id is not None:
            self.reservations.release(vehicle_id)
        self.reservations.purge_before(self.env.now - 5.0)

    def invalidate_quiet(self, now: float) -> int:
        """Release tile claims of vehicles that never reported an exit.

        A vehicle whose *entire* reservation lies more than
        ``quiet_timeout`` in the past crossed (or died) without its
        exit notification ever arriving; its claims are withdrawn so
        the per-vehicle book stays bounded.  Claims extending into the
        future are kept — the owner may be silently cruising to its
        slot, which is the protocol's normal behaviour.
        """
        cutoff = self.reservations.slot_of(now - self.config.quiet_timeout)
        released = self.reservations.release_stale(cutoff)
        self.stats.invalidations += released
        return released
