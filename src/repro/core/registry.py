"""Pluggable policy registry.

A *policy* couples an IM factory with a vehicle agent class under a
canonical name.  The built-ins (``vt-im``, ``crossroads``, ``aim`` and
the ``batch-crossroads`` extension) are registered by
:mod:`repro.core.policy` at import time; plugins register theirs with
:func:`register_policy` (or the :func:`policy` decorator) and from then
on work everywhere the built-ins do — :class:`~repro.sim.world.World`,
the flow-sweep engine, the parallel runner and the CLI all resolve
policies exclusively through this module.

Worker-process resolution
-------------------------
A :class:`~repro.sim.parallel.RunTask` must stay picklable, so it
carries the policy *name*, not the spec.  A forked worker inherits this
registry and resolves plain names directly; a spawned worker (or one
that simply never imported the plugin module) would not — so every spec
records the module that registered it (``provider``) and
:func:`portable_name` returns the qualified ``"module:name"`` form.
:func:`resolve_policy` imports the module half of a qualified name
before looking the policy up, which re-runs the plugin's registration
in the worker.  See ``examples/custom_policy.py``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "PolicySpec",
    "available_policies",
    "extension_policies",
    "iter_policies",
    "normalize_policy",
    "policy",
    "portable_name",
    "register_policy",
    "registry_generation",
    "resolve_policy",
    "unregister_policy",
]


@dataclass(frozen=True)
class PolicySpec:
    """Everything the runner stack needs to know about one policy.

    Attributes
    ----------
    name:
        Canonical policy name (lower-case, dash-separated).
    im_builder:
        Callable ``(env, radio, geometry, conflicts=None, config=None,
        compute=None, aim_config=None)`` returning an attached
        :class:`~repro.core.base.BaseIM`; invoked by
        :func:`repro.core.policy.make_im` after it attaches the radio
        and (when ``needs_conflicts``) builds the conflict table.
    vehicle_cls:
        Vehicle agent class (a :class:`~repro.vehicle.agent.BaseVehicle`
        subclass) implementing the policy's request phase.
    aliases:
        Alternative names accepted by :func:`normalize_policy`.
    extension:
        True for policies beyond the paper's canonical three.
    description:
        One-line summary shown by ``python -m repro policies``.
    provider:
        Dotted module path that registers this policy when imported;
        lets worker processes re-resolve it by qualified name.
    needs_conflicts:
        True when the IM builder wants a
        :class:`~repro.geometry.conflicts.ConflictTable` (the VT-style
        schedulers); tile-based policies compute their own occupancy.
    """

    name: str
    im_builder: Callable
    vehicle_cls: type
    aliases: Tuple[str, ...] = ()
    extension: bool = False
    description: str = ""
    provider: str = ""
    needs_conflicts: bool = True

    @property
    def im_name(self) -> str:
        """Best-effort display name of the IM class/builder."""
        builder = self.im_builder
        return getattr(builder, "__name__", type(builder).__name__)

    @property
    def doc(self) -> str:
        """Description, falling back to the builder's first doc line."""
        if self.description:
            return self.description
        doc = self.im_builder.__doc__ or self.vehicle_cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


#: Canonical name -> spec, in registration order.
_REGISTRY: Dict[str, PolicySpec] = {}
#: Alias (including the canonical name itself) -> canonical name.
_ALIASES: Dict[str, str] = {}
#: Bumped on every successful register/unregister.  Consumers that
#: snapshot the registry across a process boundary (the persistent
#: worker pool forks it at spawn) compare generations to know when
#: their snapshot went stale.
_GENERATION = 0


def registry_generation() -> int:
    """Monotonic counter of registry mutations (see ``_GENERATION``)."""
    return _GENERATION


def _canonical_key(name: str) -> str:
    return name.lower().replace("_", "-").strip()


def register_policy(
    name: str,
    im_builder: Callable,
    vehicle_cls: type,
    *,
    aliases: Tuple[str, ...] = (),
    extension: bool = False,
    description: str = "",
    provider: str = "",
    needs_conflicts: bool = True,
    replace: bool = False,
) -> PolicySpec:
    """Register a policy; returns the stored :class:`PolicySpec`.

    Re-registering the *same* name is an error unless ``replace=True``
    — except when the spec is identical in provider, which makes plugin
    modules idempotent under re-import (the worker-process path).
    """
    key = _canonical_key(name)
    spec = PolicySpec(
        name=key,
        im_builder=im_builder,
        vehicle_cls=vehicle_cls,
        aliases=tuple(_canonical_key(a) for a in aliases),
        extension=extension,
        description=description,
        provider=provider,
        needs_conflicts=needs_conflicts,
    )
    existing = _REGISTRY.get(key)
    if existing is not None and not replace:
        if existing.provider and existing.provider == spec.provider:
            return existing  # idempotent re-import of the same provider
        raise ValueError(f"policy {key!r} is already registered")
    # Validate every alias before mutating anything, so a rejected
    # registration leaves the registry exactly as it was.
    for alias in (key,) + spec.aliases:
        owner = _ALIASES.get(alias)
        if owner is not None and owner != key and not replace:
            raise ValueError(f"alias {alias!r} already maps to policy {owner!r}")
    for alias in (key,) + spec.aliases:
        _ALIASES[alias] = key
    _REGISTRY[key] = spec
    global _GENERATION
    _GENERATION += 1
    return spec


def policy(name: str, *, vehicle_cls: type, **kwargs) -> Callable:
    """Decorator form of :func:`register_policy` for IM builders::

        @policy("metered-crossroads", vehicle_cls=CrossroadsVehicle,
                provider=__name__, extension=True)
        def build_metered_im(env, channel, geometry, **kw):
            ...
    """

    def _decorate(im_builder: Callable) -> Callable:
        register_policy(name, im_builder, vehicle_cls, **kwargs)
        return im_builder

    return _decorate


def unregister_policy(name: str) -> None:
    """Remove a policy and its aliases (tests and plugin teardown)."""
    key = _canonical_key(name)
    spec = _REGISTRY.pop(key, None)
    if spec is None:
        return
    for alias in (key,) + spec.aliases:
        if _ALIASES.get(alias) == key:
            del _ALIASES[alias]
    global _GENERATION
    _GENERATION += 1


def _known_names() -> Tuple[str, ...]:
    return available_policies() + extension_policies()


def normalize_policy(name: str) -> str:
    """Map aliases ("VTIM", "qb-im", ...) to canonical names.

    Qualified ``"module:name"`` forms import ``module`` first, so the
    plugin's registration runs before the lookup (this is how worker
    processes resolve plugin policies; see :func:`portable_name`).
    """
    key = _canonical_key(name)
    if ":" in key:
        module_name, _, key = name.partition(":")
        importlib.import_module(module_name.strip())
        key = _canonical_key(key)
    if key not in _ALIASES:
        # The built-ins register on import of repro.core.policy; make
        # resolution independent of whether the caller imported it.
        importlib.import_module("repro.core.policy")
    if key not in _ALIASES:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {_known_names()}"
        )
    return _ALIASES[key]


def resolve_policy(name) -> PolicySpec:
    """Resolve a name, alias, qualified name or spec to a spec."""
    if isinstance(name, PolicySpec):
        return name
    return _REGISTRY[normalize_policy(name)]


def portable_name(name) -> str:
    """Name that resolves in a fresh process: ``"provider:name"``.

    Built-ins resolve anywhere by plain name; plugin policies are
    qualified with their provider module so that a worker that never
    imported the plugin can.  Falls back to the plain name when the
    spec recorded no provider (then only fork-inherited registries can
    resolve it — register with ``provider=__name__`` to be safe).
    """
    spec = resolve_policy(name)
    if spec.provider and spec.provider != "repro.core.policy":
        return f"{spec.provider}:{spec.name}"
    return spec.name


def iter_policies() -> Tuple[PolicySpec, ...]:
    """All registered specs, in registration order."""
    return tuple(_REGISTRY.values())


def available_policies() -> Tuple[str, ...]:
    """Canonical names of the non-extension policies."""
    return tuple(s.name for s in _REGISTRY.values() if not s.extension)


def extension_policies() -> Tuple[str, ...]:
    """Canonical names of the extension policies."""
    return tuple(s.name for s in _REGISTRY.values() if s.extension)
