"""IM computation-delay models (the "C" in WC-RTD, Ch 4).

The paper measures the testbed IM's worst-case computation delay as
135 ms — four simultaneous arrivals, FIFO-served on one core — and up
to 16-20X more total compute for AIM because every (re-)request runs a
full trajectory simulation over the tile grid.

A :class:`ComputeModel` converts a request's *work* into simulated
service seconds, which the IM holds its (capacity-1) compute resource
for.  Queueing behind earlier requests then emerges naturally in the
DES, exactly like the testbed's FIFO queue.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AimComputeModel", "ComputeModel", "LinearComputeModel"]


class ComputeModel:
    """Base: map request work to service time, accumulate totals."""

    def __init__(self):
        #: Total simulated compute seconds spent.
        self.total_time = 0.0
        #: Number of requests served.
        self.requests = 0

    def service_time(self, **work) -> float:
        """Service seconds for one request (subclass hook)."""
        raise NotImplementedError

    def charge(self, **work) -> float:
        """Record one request and return its service time."""
        t = self.service_time(**work)
        self.total_time += t
        self.requests += 1
        return t


@dataclass
class _LinearParams:
    base: float
    per_reservation: float


class LinearComputeModel(ComputeModel):
    """VT-IM / Crossroads cost: constant plus per-active-reservation.

    Defaults calibrated to the testbed: one isolated request ~= 30 ms,
    so four simultaneous arrivals queue to ~30 + 33 + 35 + 37 ms ~=
    135 ms worst-case computation delay for the last vehicle.

    Parameters
    ----------
    base:
        Fixed cost per request, seconds.
    per_reservation:
        Additional cost per active reservation checked, seconds.
    """

    def __init__(self, base: float = 0.030, per_reservation: float = 0.002):
        super().__init__()
        if base < 0 or per_reservation < 0:
            raise ValueError("costs must be non-negative")
        self.params = _LinearParams(base, per_reservation)

    def service_time(self, *, reservations: int = 0, **_ignored) -> float:
        if reservations < 0:
            raise ValueError("reservations must be non-negative")
        return self.params.base + self.params.per_reservation * reservations


class AimComputeModel(ComputeModel):
    """AIM cost: proportional to the tile-simulation cell count.

    Each request sweeps the vehicle footprint along its full trajectory
    over the space-time grid; the work is the number of (tile, slot)
    cells touched.  Defaults put one straight-through simulation at
    roughly 16X the VT-IM request cost, matching Ch 7.2's "AIM has up
    to 16x higher computation overhead".

    Parameters
    ----------
    base:
        Fixed per-request overhead, seconds.
    per_cell:
        Cost per simulated (tile, slot) cell, seconds.
    """

    def __init__(
        self, base: float = 0.005, per_cell: float = 1e-4, cap: float = 0.125
    ):
        super().__init__()
        if base < 0 or per_cell < 0:
            raise ValueError("costs must be non-negative")
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.base = base
        self.per_cell = per_cell
        #: Real-time budget per request: the IM must answer inside the
        #: protocol's WC computation delay, whatever the sweep size.
        self.cap = cap

    def service_time(self, *, cells: int = 0, **_ignored) -> float:
        if cells < 0:
            raise ValueError("cells must be non-negative")
        return min(self.base + self.per_cell * cells, self.cap)
