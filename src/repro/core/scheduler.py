"""FCFS conflict-aware arrival-slot assignment.

Both VT-style IMs (plain VT-IM and Crossroads) plan vehicles in request
order: the new vehicle receives the earliest time of arrival (ToA) that
is kinematically reachable *and* keeps its buffered body disjoint in
time from every already-scheduled conflicting vehicle on every shared
conflict interval.

Occupancy model
---------------
Every reservation carries the vehicle's full
:class:`~repro.kinematics.MotionProfile` (which extends at its final
velocity beyond its last segment — "maintain until exit").  With the
stop line at profile position ``line``, the buffered body
``[s_front - L - b, s_front + b]`` occupies a conflict interval
``[s_in, s_out]`` (arc lengths from the stop line) during::

    [ t(line + s_in - b) ,  t(line + s_out + L + b) ]

where ``t(s)`` is the profile's exact position-inversion.  This is
exact for accelerating, cruising and stop-and-go trajectories alike —
in particular a vehicle launching from rest at the line is modelled
accelerating *through* the box, not crawling at its line-crossing
speed.

FCFS means a later vehicle may enter each interval only after every
earlier conflicting vehicle has left it.  Because pushing a vehicle's
ToA changes its whole trajectory (a later slot may mean a slower
approach or a timed launch), the solver iterates
(ToA -> plan -> constraint violation -> ToA) to a fixed point; the
push is monotone so a few iterations suffice, and the final candidate
is re-verified before committing — the scheduler never books a plan
that violates a constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import Movement
from repro.kinematics.arrival import ArrivalPlan
from repro.kinematics.profiles import MotionProfile
from repro.obs.events import NULL_LOG

__all__ = ["ConflictScheduler", "ScheduledCrossing", "SlotAssignment"]

#: A planner maps a requested ToA to a concrete plan (or None).
Planner = Callable[[float], Optional[ArrivalPlan]]


@dataclass
class ScheduledCrossing:
    """One committed reservation in the scheduler's book."""

    vehicle_id: int
    movement: Movement
    profile: MotionProfile
    #: Profile position of the stop line.
    line: float
    body_length: float
    buffer: float
    toa: float
    #: Time the buffered tail clears the end of the vehicle's own path.
    clear_time: float

    def interval_occupancy(self, s_in: float, s_out: float) -> "tuple[float, float]":
        """Entry/exit times of the buffered body over ``[s_in, s_out]``.

        ``s_in``/``s_out`` are arc lengths from this vehicle's stop
        line.  A profile that never clears the interval (ends stopped
        inside it) occupies it forever.
        """
        t_in = self.profile.time_at_position(self.line + s_in - self.buffer)
        t_out = self.profile.time_at_position(
            self.line + s_out + self.body_length + self.buffer
        )
        if t_in is None:
            t_in = self.profile.start_time
        if t_out is None:
            t_out = math.inf
        return (t_in, t_out)


@dataclass(frozen=True)
class SlotAssignment:
    """Result of a scheduling query."""

    toa: float
    plan: ArrivalPlan

    @property
    def v_cross(self) -> float:
        """Velocity when crossing the stop line."""
        return self.plan.arrival_velocity


class ConflictScheduler:
    """FCFS slot assigner over a :class:`ConflictTable`.

    Parameters
    ----------
    conflicts:
        Precomputed pairwise conflict intervals.
    v_min:
        Crawl-speed floor assumed by planners (informational here).
    max_book:
        Hard cap on retained reservations (memory guard).
    """

    #: Waitlist entries older than this without a refresh are dropped
    #: (the vehicle exited, or is deferring behind its leader).
    WAITLIST_STALE = 4.0

    def __init__(
        self,
        conflicts: ConflictTable,
        v_min: float = 0.25,
        max_book: int = 4096,
    ):
        if v_min <= 0:
            raise ValueError("v_min must be positive")
        self.conflicts = conflicts
        self.v_min = v_min
        self.max_book = max_book
        self._book: List[ScheduledCrossing] = []
        self._by_vehicle: Dict[int, ScheduledCrossing] = {}
        #: FCFS waitlist: vehicle_id -> (first_seen, movement, last_seen).
        self._waiting: Dict[int, "tuple[float, Movement, float]"] = {}
        #: Number of reservation comparisons done (compute-cost proxy).
        self.comparisons = 0
        #: Observability sink + sim-clock callable; the world injects
        #: both when tracing (the scheduler itself is clock-free).
        self.obs = NULL_LOG
        self.obs_now: Optional[Callable[[], float]] = None

    def _emit(self, kind: str, **data) -> None:
        if self.obs.enabled and self.obs_now is not None:
            self.obs.emit(kind, self.obs_now(), "sched", **data)

    # -- FCFS waitlist -------------------------------------------------------
    def note_request(self, vehicle_id: int, movement: Movement, now: float) -> None:
        """Register/refresh a requester for FCFS admission ordering.

        A vehicle that cannot be granted a slot (it is parked at the
        line and the box is busy) must not be starved by later-arriving
        traffic booking the next free window: admission is gated on
        request seniority, not just on the reservation book.
        """
        first_seen, _, _ = self._waiting.get(vehicle_id, (now, movement, now))
        self._waiting[vehicle_id] = (first_seen, movement, now)
        stale = [
            vid
            for vid, (_, _, seen) in self._waiting.items()
            if seen < now - self.WAITLIST_STALE
        ]
        for vid in stale:
            del self._waiting[vid]

    def _blocked_by_senior_waiter(self, vehicle_id: int, movement: Movement) -> bool:
        """True if an older conflicting requester is still unserved."""
        mine = self._waiting.get(vehicle_id)
        my_key = (mine[0], vehicle_id) if mine else (math.inf, vehicle_id)
        for vid, (first_seen, other_movement, _) in self._waiting.items():
            if vid == vehicle_id:
                continue
            if (first_seen, vid) < my_key and self.conflicts.conflicts(
                movement, other_movement
            ):
                return True
        return False

    # -- bookkeeping --------------------------------------------------------
    @property
    def book(self) -> List[ScheduledCrossing]:
        """Currently retained reservations (oldest first)."""
        return list(self._book)

    def holds(self, vehicle_id: int) -> bool:
        """True while ``vehicle_id`` has a committed reservation.

        The safety oracle uses this as the IM-side ground truth when a
        vehicle's body crosses the stop line: an entry without a live
        reservation is a protocol violation (or a scripted rogue).
        """
        return vehicle_id in self._by_vehicle

    def reservation_for(self, vehicle_id: int) -> Optional[ScheduledCrossing]:
        """The vehicle's committed reservation, or None."""
        return self._by_vehicle.get(vehicle_id)

    def release(self, vehicle_id: int) -> bool:
        """Drop a vehicle's reservation (on exit notification)."""
        entry = self._by_vehicle.pop(vehicle_id, None)
        if entry is None:
            return False
        self._book.remove(entry)
        self._emit("sched.release", vehicle_id=vehicle_id, book=len(self._book))
        return True

    def prune(self, now: float, grace: float = 5.0) -> int:
        """Drop reservations whose tail cleared more than ``grace`` ago."""
        keep = [s for s in self._book if s.clear_time >= now - grace]
        dropped = len(self._book) - len(keep)
        if dropped:
            self._book = keep
            self._by_vehicle = {s.vehicle_id: s for s in keep}
        return dropped

    # -- constraint evaluation ------------------------------------------------
    def _entry_for(
        self,
        profile: MotionProfile,
        line: float,
        s_in: float,
        buffer: float,
    ) -> float:
        t = profile.time_at_position(line + s_in - buffer)
        return t if t is not None else profile.start_time

    def _violation(
        self,
        movement: Movement,
        plan: ArrivalPlan,
        body_length: float,
        buffer: float,
        exclude_id: int,
    ) -> float:
        """Largest required ToA push against the current book (0 if ok)."""
        profile = plan.profile
        line = profile.position_at(plan.arrival_time)
        push = 0.0
        for other in self._book:
            if other.vehicle_id == exclude_id:
                continue
            self.comparisons += 1
            for iv in self.conflicts.intervals(movement, other.movement):
                o_in, o_out = other.interval_occupancy(iv.b_in, iv.b_out)
                t_in = self._entry_for(profile, line, iv.a_in, buffer)
                if t_in < o_out:
                    push = max(push, o_out - t_in)
        return push

    def assign(
        self,
        vehicle_id: int,
        movement: Movement,
        planner: Planner,
        etoa: float,
        body_length: float,
        buffer: float,
        max_iterations: int = 16,
    ) -> Optional[SlotAssignment]:
        """Assign the earliest safe slot reachable via ``planner``.

        ``planner(toa)`` must return a plan arriving at the stop line
        no later than ``toa`` (ideally exactly); ``etoa`` seeds the
        search with the kinematic lower bound.  Returns ``None`` when
        no verifiable slot exists from the current state (the IM then
        stays silent and the vehicle retries, per the retransmit
        clause).
        """
        if self._blocked_by_senior_waiter(vehicle_id, movement):
            self._emit("sched.blocked", vehicle_id=vehicle_id,
                       movement=movement.key)
            return None  # FCFS: an older conflicting requester goes first
        toa = etoa
        final: Optional[ArrivalPlan] = None
        for _ in range(max_iterations):
            plan = planner(toa)
            if plan is None:
                return None
            push = self._violation(movement, plan, body_length, buffer, vehicle_id)
            if push <= 1e-6:
                final = plan
                break
            toa = max(toa, plan.arrival_time) + push + 1e-6
        if final is None:
            plan = planner(toa)
            if plan is None:
                return None
            if self._violation(movement, plan, body_length, buffer, vehicle_id) > 1e-6:
                return None  # unservable from this state; stay silent
            final = plan

        profile = final.profile
        line = profile.position_at(final.arrival_time)
        path_len = self.conflicts.geometry.crossing_distance(movement)
        clear = profile.time_at_position(line + path_len + body_length + buffer)
        entry = ScheduledCrossing(
            vehicle_id=vehicle_id,
            movement=movement,
            profile=profile,
            line=line,
            body_length=body_length,
            buffer=buffer,
            toa=final.arrival_time,
            clear_time=clear if clear is not None else math.inf,
        )
        # Replace any stale reservation for a retransmitting vehicle.
        self.release(vehicle_id)
        self._waiting.pop(vehicle_id, None)
        self._book.append(entry)
        self._by_vehicle[vehicle_id] = entry
        if len(self._book) > self.max_book:
            dropped = self._book.pop(0)
            self._by_vehicle.pop(dropped.vehicle_id, None)
        self._emit(
            "sched.assign", vehicle_id=vehicle_id, movement=movement.key,
            toa=final.arrival_time, book=len(self._book),
        )
        return SlotAssignment(toa=final.arrival_time, plan=final)

    def __len__(self) -> int:
        return len(self._book)
