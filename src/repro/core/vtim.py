"""Plain Velocity-Transaction IM (paper Ch 4 / Algorithms 1-2).

On a request ``(VC, DT, VehicleInfo)`` the IM plans from *its own
current time* as if the vehicle executed the reply instantly — which it
cannot: the reply lands one RTD later, by which point the vehicle has
moved up to ``v * RTD`` metres.  The policy is kept safe the way the
paper describes: every vehicle is scheduled with an **extra RTD buffer**
of ``v_max * WC-RTD`` (0.45 m on the testbed) on top of the sensing
buffer, which is precisely what destroys its throughput at high flow.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.base import BaseIM, IMConfig
from repro.core.compute import ComputeModel, LinearComputeModel
from repro.core.scheduler import ConflictScheduler
from repro.kinematics.arrival import solve_vt_for_toa, vt_plan
from repro.des import Environment
from repro.network.channel import Radio
from repro.network.messages import (
    CrossingRequest,
    ExitNotification,
    Message,
    VelocityCommand,
)

__all__ = ["VtimIM"]


class VtimIM(BaseIM):
    """Velocity-transaction IM with the worst-case-RTD safety buffer.

    Parameters
    ----------
    env, radio, config:
        See :class:`~repro.core.base.BaseIM`.
    scheduler:
        Conflict-aware FCFS slot assigner (shared geometry analysis).
    compute:
        Defaults to the calibrated :class:`LinearComputeModel`.
    """

    def __init__(
        self,
        env: Environment,
        radio: Radio,
        scheduler: ConflictScheduler,
        config: Optional[IMConfig] = None,
        compute: Optional[ComputeModel] = None,
    ):
        super().__init__(
            env,
            radio,
            compute if compute is not None else LinearComputeModel(),
            config,
        )
        self.scheduler = scheduler

    @property
    def rtd_buffer(self) -> float:
        """The extra buffer this policy must assume (Ch 4)."""
        return self.config.wc_rtd * self.config.v_max

    def handle_crossing(self, message: Message) -> Tuple[Optional[Message], dict]:
        if not isinstance(message, CrossingRequest):
            return None, {"reservations": 0}
        self.scheduler.prune(self.env.now)
        info = message.vehicle_info
        self.scheduler.note_request(info.vehicle_id, info.movement, self.env.now)
        spec = info.spec
        distance = max(message.dt, 0.01)
        v_init = min(message.vc, spec.v_max)
        v_max = min(spec.v_max, self.config.v_max)
        start = self.env.now  # naive: plans as if the command applied now

        def planner(toa):
            plan = solve_vt_for_toa(
                distance,
                v_init,
                start,
                toa,
                spec.a_max,
                spec.d_max,
                v_max,
                v_min=self.config.v_min,
            )
            if plan is None:
                return None
            # Refuse sub-crawl target velocities: commanding 0.3 m/s
            # through the box occupies it for ten seconds and snowballs
            # into gridlock.  Staying silent makes the vehicle safe-stop
            # at the line and re-request from rest, where any free
            # window admits it at full speed — the VT protocol's only
            # way to "wait".
            if plan.profile.final_velocity < self.config.v_arrive_floor - 1e-9:
                return None
            return plan

        etoa_plan = vt_plan(distance, v_init, v_max, start, spec.a_max, spec.d_max)
        if etoa_plan is None:
            return None, {"reservations": len(self.scheduler)}
        assignment = self.scheduler.assign(
            vehicle_id=info.vehicle_id,
            movement=info.movement,
            planner=planner,
            etoa=etoa_plan.arrival_time,
            body_length=spec.length,
            buffer=info.buffer + self.rtd_buffer,
        )
        work = {"reservations": len(self.scheduler)}
        if assignment is None:
            return None, work  # vehicle will retransmit
        self.stats.accepts += 1
        self.note_grant(message.sender, message.seq)
        response = VelocityCommand(
            sender=self.config.address,
            receiver=message.sender,
            vt=assignment.plan.profile.final_velocity,
            toa=assignment.toa,
            in_reply_to=message.seq,
        )
        return response, work

    def handle_exit(self, message: ExitNotification) -> None:
        # Vehicle ids are encoded in the sender address ("V<id>").
        vehicle_id = _vehicle_id_from_address(message.sender)
        if vehicle_id is not None:
            self.scheduler.release(vehicle_id)
        self.scheduler.prune(self.env.now)

    def invalidate_quiet(self, now: float) -> int:
        """Drop bookings whose owner should long have cleared the box.

        In fault-free runs every exit notification arrives and the book
        is already clean; under lossy/blackout regimes this watchdog
        sweep is what unblocks cross traffic.
        """
        dropped = self.scheduler.prune(now, grace=self.config.quiet_timeout)
        self.stats.invalidations += dropped
        return dropped


def _vehicle_id_from_address(address: str) -> Optional[int]:
    """Parse the numeric id out of a "V<id>" vehicle address."""
    if address.startswith("V"):
        try:
            return int(address[1:])
        except ValueError:
            return None
    return None
