"""Crossroads: the time-sensitive VT-IM (paper Ch 6 / Algorithms 7-8).

The reply to a request stamped ``TT`` carries an execution time::

    TE = TT + WC-RTD

The vehicle holds its current velocity ``VC`` until its (synchronised)
clock reads ``TE`` and only then begins the commanded trajectory.  Its
position at ``TE`` is therefore deterministic::

    DE = DT - VC * (TE - TT)

so the IM can plan from ``(DE, VC, TE)`` exactly, and **no RTD buffer
is needed** — only the sensing + sync buffer.  This is the whole trick,
and the whole paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.base import BaseIM, IMConfig
from repro.core.compute import ComputeModel, LinearComputeModel
from repro.core.scheduler import ConflictScheduler
from repro.core.vtim import _vehicle_id_from_address
from repro.kinematics.arrival import earliest_arrival_time, plan_arrival
from repro.des import Environment
from repro.network.channel import Radio
from repro.network.messages import (
    CrossingRequest,
    CrossroadsCommand,
    ExitNotification,
    Message,
)

__all__ = ["CrossroadsIM"]


class CrossroadsIM(BaseIM):
    """The time-sensitive intersection manager.

    Parameters mirror :class:`~repro.core.vtim.VtimIM`; the behavioural
    differences are (a) planning from the deterministic execution-time
    state and (b) scheduling with the base buffer only.
    """

    def __init__(
        self,
        env: Environment,
        radio: Radio,
        scheduler: ConflictScheduler,
        config: Optional[IMConfig] = None,
        compute: Optional[ComputeModel] = None,
    ):
        super().__init__(
            env,
            radio,
            compute if compute is not None else LinearComputeModel(),
            config,
        )
        self.scheduler = scheduler

    def execution_time(self, tt: float) -> float:
        """``TE = TT + WC-RTD`` (Ch 6), guarded against overload.

        If the IM is so backlogged that the reply could not reach the
        vehicle before the nominal ``TE``, the execution time is pushed
        to ``now + WC-network`` so the contract "command arrives before
        it must be executed" still holds; the vehicle's retransmit
        timeout makes this path rare.
        """
        return max(tt + self.config.wc_rtd, self.env.now + self.config.wc_network)

    def handle_crossing(self, message: Message) -> Tuple[Optional[Message], dict]:
        if not isinstance(message, CrossingRequest):
            return None, {"reservations": 0}
        self.scheduler.prune(self.env.now)
        info = message.vehicle_info
        self.scheduler.note_request(info.vehicle_id, info.movement, self.env.now)
        spec = info.spec
        te = self.execution_time(message.tt)
        # Deterministic position at TE: the vehicle holds VC until then.
        de = max(message.dt - message.vc * (te - message.tt), 0.01)
        v_init = min(message.vc, spec.v_max)
        v_max = min(spec.v_max, self.config.v_max)

        def planner(toa):
            return plan_arrival(
                de,
                v_init,
                te,
                toa,
                spec.a_max,
                spec.d_max,
                v_max,
                v_min=self.config.v_min,
                launch_below=self.config.v_arrive_floor,
            )

        etoa = te + earliest_arrival_time(de, v_init, v_max, spec.a_max)
        assignment = self.scheduler.assign(
            vehicle_id=info.vehicle_id,
            movement=info.movement,
            planner=planner,
            etoa=etoa,
            body_length=spec.length,
            buffer=info.buffer,
        )
        work = {"reservations": len(self.scheduler)}
        if assignment is None:
            return None, work
        self.stats.accepts += 1
        self.note_grant(message.sender, message.seq)
        response = CrossroadsCommand(
            sender=self.config.address,
            receiver=message.sender,
            te=te,
            toa=assignment.toa,
            vt=assignment.v_cross,
            in_reply_to=message.seq,
        )
        return response, work

    def handle_exit(self, message: ExitNotification) -> None:
        vehicle_id = _vehicle_id_from_address(message.sender)
        if vehicle_id is not None:
            self.scheduler.release(vehicle_id)
        self.scheduler.prune(self.env.now)

    def invalidate_quiet(self, now: float) -> int:
        """Watchdog sweep: withdraw bookings of vehicles gone quiet
        (same semantics as :meth:`VtimIM.invalidate_quiet`)."""
        dropped = self.scheduler.prune(now, grace=self.config.quiet_timeout)
        self.stats.invalidations += dropped
        return dropped
