"""Built-in policy registrations and the IM factory.

The three canonical policies (``vt-im``, ``crossroads``, ``aim``) and
the ``batch-crossroads`` extension are registered with
:mod:`repro.core.registry` when this module is imported; everything
downstream (:class:`~repro.sim.world.World`, the sweep engines, the
CLI) resolves policies through the registry, so a plugin registered the
same way is runnable end-to-end without touching this module.

:func:`make_im` wires up a manager of the requested policy on a
channel: it attaches the IM radio, builds the policy's conflict table
when the spec asks for one, and hands off to the spec's IM builder.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aim import AimConfig, AimIM
from repro.core.base import BaseIM, IMConfig
from repro.core.compute import ComputeModel
from repro.core.crossroads import CrossroadsIM
from repro.core.registry import (
    available_policies,
    extension_policies,
    normalize_policy,
    register_policy,
    resolve_policy,
)
from repro.core.scheduler import ConflictScheduler
from repro.core.vtim import VtimIM
from repro.des import Environment
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.network.channel import Channel
from repro.vehicle.policies import AimVehicle, CrossroadsVehicle, VtimVehicle

__all__ = [
    "EXTENSION_POLICIES",
    "POLICIES",
    "make_im",
    "normalize_policy",
]


def _scheduler_builder(im_cls):
    """IM builder for the conflict-scheduler (VT-style) policies."""

    def build(
        env: Environment,
        radio,
        geometry: IntersectionGeometry,
        conflicts: Optional[ConflictTable] = None,
        config: Optional[IMConfig] = None,
        compute: Optional[ComputeModel] = None,
        aim_config: Optional[AimConfig] = None,
    ) -> BaseIM:
        scheduler = ConflictScheduler(conflicts, v_min=config.v_min)
        return im_cls(env, radio, scheduler, config=config, compute=compute)

    build.__name__ = im_cls.__name__
    build.__doc__ = im_cls.__doc__
    return build


def _build_aim(
    env: Environment,
    radio,
    geometry: IntersectionGeometry,
    conflicts: Optional[ConflictTable] = None,
    config: Optional[IMConfig] = None,
    compute: Optional[ComputeModel] = None,
    aim_config: Optional[AimConfig] = None,
) -> BaseIM:
    return AimIM(
        env, radio, geometry, config=config, aim_config=aim_config, compute=compute
    )


_build_aim.__name__ = AimIM.__name__
_build_aim.__doc__ = AimIM.__doc__


def _build_batch(
    env: Environment,
    radio,
    geometry: IntersectionGeometry,
    conflicts: Optional[ConflictTable] = None,
    config: Optional[IMConfig] = None,
    compute: Optional[ComputeModel] = None,
    aim_config: Optional[AimConfig] = None,
) -> BaseIM:
    from repro.core.batch import BatchCrossroadsIM

    scheduler = ConflictScheduler(conflicts, v_min=config.v_min)
    return BatchCrossroadsIM(env, radio, scheduler, config=config, compute=compute)


_build_batch.__name__ = "BatchCrossroadsIM"


register_policy(
    "vt-im",
    _scheduler_builder(VtimIM),
    VtimVehicle,
    aliases=("vtim",),
    description="Velocity-tagged IM (Algorithm 2): WC-RTD safety buffer.",
    provider=__name__,
)
register_policy(
    "crossroads",
    _scheduler_builder(CrossroadsIM),
    CrossroadsVehicle,
    aliases=("xroads",),
    description="Time-sensitive Crossroads (Algorithm 8): TE/ToA-stamped plans.",
    provider=__name__,
)
register_policy(
    "aim",
    _build_aim,
    AimVehicle,
    aliases=("qb-im", "qbim"),
    description="Query-based AIM (Algorithm 6): space-time tile reservations.",
    provider=__name__,
    needs_conflicts=False,
)
register_policy(
    "batch-crossroads",
    _build_batch,
    CrossroadsVehicle,  # same vehicle protocol
    aliases=("batch",),
    extension=True,
    description="Crossroads with batched (delayed-evaluation) scheduling.",
    provider=__name__,
)

#: The paper's three canonical policies.
POLICIES = available_policies()

#: Extensions beyond the paper (see DESIGN.md).
EXTENSION_POLICIES = extension_policies()


def make_im(
    policy: str,
    env: Environment,
    channel: Channel,
    geometry: IntersectionGeometry,
    conflicts: Optional[ConflictTable] = None,
    config: Optional[IMConfig] = None,
    compute: Optional[ComputeModel] = None,
    aim_config: Optional[AimConfig] = None,
) -> BaseIM:
    """Create and attach an intersection manager.

    ``policy`` may be any registered name, alias, qualified
    ``"module:name"`` or :class:`~repro.core.registry.PolicySpec`.
    ``conflicts`` is only needed for the conflict-scheduler policies
    and is computed from the geometry when omitted.
    """
    spec = resolve_policy(policy)
    config = config if config is not None else IMConfig()
    radio = channel.attach(config.address)
    if spec.needs_conflicts and conflicts is None:
        conflicts = ConflictTable(geometry)
    return spec.im_builder(
        env,
        radio,
        geometry,
        conflicts=conflicts,
        config=config,
        compute=compute,
        aim_config=aim_config,
    )
