"""Policy registry and factory.

``make_im`` wires up a manager of the requested policy on a channel:
it attaches the IM radio, builds the policy's scheduler or tile table,
and returns the IM instance.  The three canonical names are
``"vt-im"``, ``"crossroads"`` and ``"aim"``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aim import AimConfig, AimIM
from repro.core.base import BaseIM, IMConfig
from repro.core.compute import ComputeModel
from repro.core.crossroads import CrossroadsIM
from repro.core.scheduler import ConflictScheduler
from repro.core.vtim import VtimIM
from repro.des import Environment
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.network.channel import Channel

__all__ = ["POLICIES", "make_im"]

#: The paper's three canonical policies.
POLICIES = ("vt-im", "crossroads", "aim")

#: Extensions beyond the paper (see DESIGN.md).
EXTENSION_POLICIES = ("batch-crossroads",)


def normalize_policy(name: str) -> str:
    """Map aliases ("VTIM", "qb-im", ...) to canonical names."""
    key = name.lower().replace("_", "-").strip()
    aliases = {
        "vtim": "vt-im",
        "vt-im": "vt-im",
        "crossroads": "crossroads",
        "xroads": "crossroads",
        "aim": "aim",
        "qb-im": "aim",
        "qbim": "aim",
        "batch": "batch-crossroads",
        "batch-crossroads": "batch-crossroads",
    }
    if key not in aliases:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {POLICIES + EXTENSION_POLICIES}"
        )
    return aliases[key]


def make_im(
    policy: str,
    env: Environment,
    channel: Channel,
    geometry: IntersectionGeometry,
    conflicts: Optional[ConflictTable] = None,
    config: Optional[IMConfig] = None,
    compute: Optional[ComputeModel] = None,
    aim_config: Optional[AimConfig] = None,
) -> BaseIM:
    """Create and attach an intersection manager.

    ``conflicts`` is only needed for the VT-style policies and is
    computed from the geometry when omitted.
    """
    policy = normalize_policy(policy)
    config = config if config is not None else IMConfig()
    radio = channel.attach(config.address)
    if policy == "aim":
        return AimIM(
            env,
            radio,
            geometry,
            config=config,
            aim_config=aim_config,
            compute=compute,
        )
    if conflicts is None:
        conflicts = ConflictTable(geometry)
    scheduler = ConflictScheduler(conflicts, v_min=config.v_min)
    if policy == "batch-crossroads":
        from repro.core.batch import BatchCrossroadsIM

        return BatchCrossroadsIM(env, radio, scheduler, config=config, compute=compute)
    cls = VtimIM if policy == "vt-im" else CrossroadsIM
    return cls(env, radio, scheduler, config=config, compute=compute)
