"""Intersection-management policies — the paper's core.

Three intersection managers share one substrate:

* :class:`VtimIM` — the plain Velocity-Transaction IM of Ch 4.  Replies
  with a target velocity the vehicle executes *on receipt*; must
  therefore schedule with an extra RTD buffer (``v_max * WC-RTD``).
* :class:`AimIM` — the query-based AIM baseline of Ch 5.2 (Dresner &
  Stone).  The vehicle proposes its own arrival time; the IM simulates
  the trajectory over a space-time tile grid and answers yes/no.  No
  RTD buffer, but no optimisation either — and every (re-)request costs
  a full trajectory simulation.
* :class:`CrossroadsIM` — the contribution (Ch 6).  A VT-IM whose reply
  carries an execution time ``TE = TT + WC-RTD``; the vehicle actuates
  exactly at ``TE`` so its position is deterministic and only the
  sensing buffer is needed.

:class:`ConflictScheduler` is the FCFS conflict-aware slot assigner the
two VT-style IMs use; :mod:`repro.core.compute` models IM computation
delay (the "C" in WC-RTD).
"""

from repro.core.aim import AimConfig, AimIM
from repro.core.base import BaseIM, IMConfig, IMStats
from repro.core.compute import AimComputeModel, ComputeModel, LinearComputeModel
from repro.core.crossroads import CrossroadsIM
from repro.core.policy import EXTENSION_POLICIES, POLICIES, make_im, normalize_policy
from repro.core.registry import (
    PolicySpec,
    iter_policies,
    policy,
    portable_name,
    register_policy,
    resolve_policy,
)
from repro.core.scheduler import ConflictScheduler, ScheduledCrossing
from repro.core.vtim import VtimIM

__all__ = [
    "AimComputeModel",
    "AimConfig",
    "AimIM",
    "BaseIM",
    "ComputeModel",
    "ConflictScheduler",
    "CrossroadsIM",
    "EXTENSION_POLICIES",
    "IMConfig",
    "IMStats",
    "LinearComputeModel",
    "POLICIES",
    "PolicySpec",
    "ScheduledCrossing",
    "VtimIM",
    "iter_policies",
    "make_im",
    "normalize_policy",
    "policy",
    "portable_name",
    "register_policy",
    "resolve_policy",
]
