"""Shared intersection-manager machinery.

:class:`BaseIM` runs two DES processes:

* a *receive loop* that services sync requests immediately (the NTP
  responder is trivial) and queues crossing/AIM requests FIFO — the
  paper's "after processing the requests ahead in a FIFO queue";
* a *compute worker* holding a capacity-1 resource, charging each
  request's service time to the policy's
  :class:`~repro.core.compute.ComputeModel` before replying.  Requests
  that arrive together therefore queue, which is exactly how the
  testbed's worst-case computation delay (135 ms for four simultaneous
  arrivals) comes about.

Subclasses implement :meth:`handle_crossing` (build the reply and
report the work done) and :meth:`handle_exit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.compute import ComputeModel
from repro.des import Environment, Store
from repro.obs.events import NULL_LOG
from repro.perf import PerfCounters
from repro.network.channel import Radio
from repro.network.messages import (
    AimRequest,
    CancelReservation,
    CrossingRequest,
    ExitNotification,
    Message,
    SyncRequest,
)
from repro.protocol import SequenceGuard, TimeSyncResponder

__all__ = ["BaseIM", "IMConfig", "IMStats"]


@dataclass
class IMConfig:
    """Policy-independent IM parameters (testbed defaults).

    Attributes
    ----------
    wc_rtd:
        Worst-case round-trip delay bound, seconds (Ch 4: 150 ms).
    wc_network:
        Worst-case one-way network delay, seconds (Ch 4: 7.5 ms).
    base_buffer:
        Sensing + sync buffer every policy assumes, metres (78 mm).
    v_max:
        Intersection speed limit, m/s.
    v_min:
        Crawl-speed floor for approach planning, m/s.
    address:
        The IM's network address.
    """

    wc_rtd: float = 0.150
    wc_network: float = 0.0075
    base_buffer: float = 0.078
    v_max: float = 3.0
    #: Slowest crossing velocity the IM will ever command.  No real
    #: controller commands centimetres per second; this also bounds a
    #: single vehicle's box-occupancy time.
    v_min: float = 0.25
    #: Crossroads only: slowest acceptable crossing speed for a cruise
    #: plan; below it the IM assigns a timed stop-and-go launch (the
    #: time-sensitive interface can express one; the plain VT interface
    #: cannot).  Must match the vehicles' ``AgentConfig.arrive_floor``.
    v_arrive_floor: float = 1.2
    #: Grace period before the IM invalidates the reservation of a
    #: vehicle that should long have cleared the box but was never
    #: heard from again (lost exit notification, radio-dark window,
    #: crashed agent).  Swept by the world's 1 Hz watchdog via
    #: :meth:`BaseIM.invalidate_quiet`.
    quiet_timeout: float = 5.0
    address: str = "IM"

    def __post_init__(self):
        if self.wc_rtd <= 0 or self.wc_network < 0:
            raise ValueError("delays must be positive")
        if self.base_buffer < 0:
            raise ValueError("base_buffer must be non-negative")
        if self.v_max <= 0 or self.v_min <= 0 or self.v_min > self.v_max:
            raise ValueError("need 0 < v_min <= v_max")
        if self.quiet_timeout <= 0:
            raise ValueError("quiet_timeout must be positive")


@dataclass
class IMStats:
    """Aggregate IM-side counters."""

    sync_requests: int = 0
    crossing_requests: int = 0
    accepts: int = 0
    rejects: int = 0
    exits: int = 0
    peak_queue: int = 0
    #: Reservations withdrawn by the quiet-vehicle watchdog (stale
    #: bookings whose owner was never heard from again).
    invalidations: int = 0
    #: Out-of-order (reordered / long-delayed) requests dropped by the
    #: receive loop's per-sender monotonic sequence guard.  Processing
    #: one would reschedule the vehicle from stale state and release
    #: the reservation it is committed to — a collision hazard.
    stale_requests_dropped: int = 0
    #: Per-request service times, seconds (for WC-CD analysis).
    service_times: list = field(default_factory=list)

    @property
    def worst_service_time(self) -> float:
        """Longest single request service time observed."""
        return max(self.service_times) if self.service_times else 0.0


class BaseIM:
    """Abstract intersection manager bound to a radio.

    Parameters
    ----------
    env:
        DES environment.
    radio:
        The IM's attached radio (address must equal ``config.address``).
    compute:
        Computation-delay model.
    config:
        Shared parameters.
    """

    def __init__(
        self,
        env: Environment,
        radio: Radio,
        compute: ComputeModel,
        config: Optional[IMConfig] = None,
    ):
        self.env = env
        self.radio = radio
        self.compute = compute
        self.config = config if config is not None else IMConfig()
        if radio.address != self.config.address:
            raise ValueError("radio address must match config.address")
        self.stats = IMStats()
        #: Observability sink (the world injects its event bus when
        #: tracing; the default null log costs one attribute test).
        self.obs = NULL_LOG
        #: Wall-clock hot-path timers/counters, folded into
        #: :attr:`~repro.sim.metrics.SimResult.perf` by the world.
        self.perf = PerfCounters()
        #: FIFO of sender addresses with work pending; only the *latest*
        #: request per sender is kept (a retransmission supersedes the
        #: original — re-answering every duplicate would melt the queue).
        self._work_queue: Store = Store(env)
        self._pending: dict = {}
        #: Per-sender monotonic request/grant sequence tracking: drops
        #: reordered or duplicated stale requests, and identifies stale
        #: cancels that predate the sender's most recent grant (a cancel
        #: can race a newer request through the compute queue).
        self.guard = SequenceGuard()
        #: NTP answerer: echo ``t0``, stamp ``t1 = t2 = now`` (the IM
        #: is the time reference; its turnaround is absorbed by the
        #: compute model, not the NTP path).
        self.sync_responder = TimeSyncResponder(radio, address=self.config.address)
        env.process(self._receive_loop())
        env.process(self._compute_worker())

    # -- policy hooks --------------------------------------------------------
    def handle_crossing(self, message: Message) -> Tuple[Optional[Message], dict]:
        """Build the reply for a crossing/AIM request.

        Returns ``(response_or_None, work)`` where ``work`` kwargs feed
        the compute model (e.g. ``reservations=`` or ``cells=``).
        """
        raise NotImplementedError

    def handle_exit(self, message: ExitNotification) -> None:
        """Free whatever state the policy holds for the vehicle."""
        raise NotImplementedError

    def note_grant(self, sender: str, request_seq: int) -> None:
        """Record that ``sender``'s request ``request_seq`` was granted."""
        self.guard.note_grant(sender, request_seq)

    def handle_cancel(self, message: CancelReservation) -> None:
        """Withdraw the sender's reservation (defaults to exit logic).

        A cancel that predates the sender's most recent grant is stale:
        the vehicle already renegotiated, and releasing the *new*
        reservation would hand its slot to cross traffic while the
        vehicle is committed to using it.
        """
        if self.guard.stale_cancel(message.sender, message.seq):
            return
        self.handle_exit(message)  # same cleanup for every policy here

    def invalidate_quiet(self, now: float) -> int:
        """Withdraw reservations of vehicles gone quiet (subclass hook).

        Called by the world's watchdog process roughly once per
        simulated second.  A vehicle whose reservation should long have
        cleared the box (``config.quiet_timeout`` past its clear time)
        but never sent an exit notification — lost message, blackout
        window, degraded safe-stop far from the line — must not block
        cross traffic forever.  Returns the number of reservations
        withdrawn; implementations add it to ``stats.invalidations``.
        """
        return 0

    # -- processes -------------------------------------------------------------
    def _receive_loop(self):
        while True:
            message = yield self.radio.receive()
            if isinstance(message, SyncRequest):
                self.stats.sync_requests += 1
                # The IM is the time reference.
                self.sync_responder.respond(message, self.env.now)
            elif isinstance(message, (CrossingRequest, AimRequest)):
                self.stats.crossing_requests += 1
                if self.obs.enabled:
                    self.obs.emit(
                        "im.recv", self.env.now, self.config.address,
                        corr=getattr(message, "corr", 0),
                        msg=type(message).__name__, sender=message.sender,
                        queue=len(self._work_queue),
                    )
                if not self.guard.admit_request(message.sender, message.seq):
                    # Reordered or long-delayed stale request: the
                    # sender has already issued (and may be driving on
                    # the grant of) a newer one.  Rescheduling from this
                    # out-of-date state would release the live
                    # reservation and hand its window to cross traffic.
                    self.stats.stale_requests_dropped += 1
                    if self.obs.enabled:
                        self.obs.emit(
                            "im.drop_stale", self.env.now, self.config.address,
                            corr=getattr(message, "corr", 0),
                            sender=message.sender, seq=message.seq,
                        )
                    continue
                if message.sender not in self._pending:
                    self._work_queue.put_nowait(message.sender)
                self._pending[message.sender] = message
                self.stats.peak_queue = max(self.stats.peak_queue, len(self._work_queue))
            elif isinstance(message, ExitNotification):
                self.stats.exits += 1
                self.handle_exit(message)
            elif isinstance(message, CancelReservation):
                self.handle_cancel(message)
            # Unknown message types are dropped silently, like hardware.

    def _serve_one(self, message: Message):
        """Serve one admitted crossing/AIM request (DES generator).

        Shared by the serial worker and the batch worker
        (:class:`~repro.core.batch.BatchCrossroadsIM`): builds the
        reply, charges the compute model's service time, propagates the
        exchange correlation id onto the reply and sends it.  Emits the
        ``im.compute.begin`` / ``im.compute.end`` / ``im.reply`` (or
        ``im.silent``) observability records and times the policy's
        ``handle_crossing`` under ``perf.timer("im.handle_crossing")``.
        """
        corr = getattr(message, "corr", 0)
        obs = self.obs
        if obs.enabled:
            obs.emit(
                "im.compute.begin", self.env.now, self.config.address,
                corr=corr, sender=message.sender,
            )
        with self.perf.timer("im.handle_crossing"):
            response, work = self.handle_crossing(message)
        service = self.compute.charge(**work)
        self.stats.service_times.append(service)
        yield self.env.timeout(service)
        if obs.enabled:
            obs.emit(
                "im.compute.end", self.env.now, self.config.address,
                corr=corr, service=service,
            )
        if response is not None:
            response.corr = corr
            if obs.enabled:
                data = {"msg": type(response).__name__}
                te = getattr(response, "te", None)
                if te is not None:
                    data["te"] = te
                toa = getattr(response, "toa", None)
                if toa is not None:
                    data["toa"] = toa
                obs.emit(
                    "im.reply", self.env.now, self.config.address,
                    corr=corr, **data,
                )
            self.radio.send(response)
        elif obs.enabled:
            obs.emit(
                "im.silent", self.env.now, self.config.address,
                corr=corr, sender=message.sender,
            )

    def _compute_worker(self):
        while True:
            sender = yield self._work_queue.get()
            message = self._pending.pop(sender, None)
            if message is None:
                continue
            yield from self._serve_one(message)
