"""Batch re-ordering IM — an extension beyond the paper.

The paper's related work (Tachet et al. 2016, "Revisiting street
intersections using slot-based systems") batches requests over a
re-organisation window and re-orders them for a more efficient entrance
sequence, at the cost of extra computation and latency.  The paper
notes the idea but does not implement it; this module does, on top of
the Crossroads machinery, as the library's demonstration extension:

* requests are collected for ``batch_window`` seconds before serving;
* within a batch, a greedy compatibility heuristic chains movements
  that can share the box (e.g. two opposite straights, four right
  turns), so compatible vehicles receive overlapping slots instead of
  whatever order their requests happened to arrive in;
* everything else — TE stamping, the FCFS conflict scheduler, the
  vehicle protocol — is stock Crossroads, so ``CrossroadsVehicle``
  agents work unchanged (the batching latency is absorbed by the TE
  guard and the retransmit clause).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.compute import ComputeModel
from repro.core.crossroads import CrossroadsIM
from repro.core.scheduler import ConflictScheduler
from repro.des import AnyOf, Environment
from repro.network.channel import Radio
from repro.network.messages import CrossingRequest

__all__ = ["BatchCrossroadsIM"]


class BatchCrossroadsIM(CrossroadsIM):
    """Crossroads with a Tachet-style re-organisation window.

    Parameters
    ----------
    batch_window:
        How long to keep collecting requests after the first one
        arrives before scheduling the whole batch, seconds.  Zero
        degenerates to stock Crossroads.  The window is a latency /
        re-ordering-opportunity trade-off: the retransmit-heavy closed
        loop punishes windows beyond a few tens of milliseconds, which
        is itself an instructive result for slot-reorganisation schemes
        under realistic RTDs.
    """

    def __init__(
        self,
        env: Environment,
        radio: Radio,
        scheduler: ConflictScheduler,
        config=None,
        compute: Optional[ComputeModel] = None,
        batch_window: float = 0.05,
    ):
        if batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        self.batch_window = batch_window
        #: Batches served (for tests/metrics).
        self.batches = 0
        #: Largest batch seen.
        self.max_batch = 0
        super().__init__(env, radio, scheduler, config=config, compute=compute)

    # -- batch collection -----------------------------------------------------
    def _compute_worker(self):  # overrides BaseIM's serial worker
        while True:
            first_sender = yield self._work_queue.get()
            senders = [first_sender]
            deadline = self.env.now + self.batch_window
            while self.env.now < deadline - 1e-12:
                get = self._work_queue.get()
                expiry = self.env.timeout(deadline - self.env.now)
                result = yield AnyOf(self.env, [get, expiry])
                if get in result:
                    senders.append(result[get])
                else:
                    self._work_queue.cancel_get(get)
                    break
            messages = [
                self._pending.pop(s) for s in senders if s in self._pending
            ]
            messages = [m for m in messages if m is not None]
            if not messages:
                continue
            self.batches += 1
            self.max_batch = max(self.max_batch, len(messages))
            for message in self.reorder(messages):
                yield from self._serve_one(message)

    # -- re-organisation heuristic ---------------------------------------------
    def reorder(self, messages: List[CrossingRequest]) -> List[CrossingRequest]:
        """Greedy compatibility chaining.

        Start from the request with the earliest timestamp (FCFS
        anchor); repeatedly append, among the remaining requests, one
        whose movement does *not* conflict with the previously chosen
        movement when possible (so the scheduler can overlap their
        slots), falling back to timestamp order.
        """
        remaining = sorted(messages, key=lambda m: m.tt)
        if len(remaining) <= 2:
            return remaining
        ordered = [remaining.pop(0)]
        while remaining:
            last_movement = ordered[-1].vehicle_info.movement
            pick = None
            for candidate in remaining:
                if not self.scheduler.conflicts.conflicts(
                    last_movement, candidate.vehicle_info.movement
                ):
                    pick = candidate
                    break
            if pick is None:
                pick = remaining[0]
            remaining.remove(pick)
            ordered.append(pick)
        return ordered
