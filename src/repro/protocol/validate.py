"""Command staleness validation and deadline-margin accounting.

Every policy's safety argument leans on a freshness clause:

* **VT-IM** — the whole argument *is* the WC-RTD bound: a command whose
  measured round trip exceeded ``max_rtd`` is anchored on state older
  than the IM's buffer covers; executing it would reintroduce exactly
  the position nondeterminism the buffer was sized against.
* **Crossroads / AIM** — a command whose execution deadline (``TE`` /
  ``ToA``) has already passed on the synchronised local clock (delay
  spike past the bound, duplicated old grant) cannot start the planned
  trajectory from the state the IM assumed.

:class:`CommandValidator` centralises both checks and the
``min_command_margin`` bookkeeping the property suite pins (the margin
of an *executed* command never goes negative).  The record sink is
duck-typed — any object with ``rtds``, ``deadline_misses``,
``stale_rejected`` and ``min_command_margin`` attributes works — so the
validator stays free of vehicle-layer imports.
"""

from __future__ import annotations

__all__ = ["CommandValidator"]


class CommandValidator:
    """Freshness clauses shared by the three vehicle protocols.

    Parameters
    ----------
    max_rtd:
        Largest acceptable request->response round trip, seconds
        (the vehicle-side WC-RTD assumption).
    record:
        Duck-typed accounting sink (``rtds`` list, ``deadline_misses``,
        ``stale_rejected``, ``min_command_margin`` attributes).
    """

    #: Tolerance on deadline comparisons (float noise on ``TE - now``).
    EPS = 1e-9

    def __init__(self, max_rtd: float, record):
        if max_rtd <= 0:
            raise ValueError("max_rtd must be positive")
        self.max_rtd = max_rtd
        self.record = record

    def admit_rtd(self, rtd: float) -> bool:
        """Record a measured round trip; True iff within the bound.

        The RTD is logged either way (the WC-RTD analysis wants the
        full distribution); a miss bumps ``deadline_misses``.  Whether
        a miss *rejects* the command is the policy's call: VT-IM must
        reject (its safety argument is the bound), Crossroads/AIM may
        proceed to the deadline check (their safety argument is the
        explicit ``TE``/``ToA``).
        """
        self.record.rtds.append(rtd)
        if rtd > self.max_rtd:
            self.record.deadline_misses += 1
            return False
        return True

    def admit_deadline(self, margin: float) -> bool:
        """Check an execution deadline's remaining margin, seconds.

        ``margin`` is ``TE - now`` (or ``ToA - now``) on the local
        clock at command arrival.  A negative margin means the deadline
        already passed: the command is stale, ``stale_rejected`` is
        bumped and False returned.  Otherwise the margin is folded into
        ``min_command_margin`` and the command may execute.
        """
        if margin < -self.EPS:
            self.record.stale_rejected += 1
            return False
        self.note_executed(margin)
        return True

    def note_executed(self, margin: float) -> None:
        """Record the deadline margin of a command about to execute."""
        self.record.min_command_margin = min(
            self.record.min_command_margin, float(margin)
        )
