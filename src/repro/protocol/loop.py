"""Request/response exchange machinery on one radio.

:class:`RequestLoop` owns the receive-side matching rules every policy
shares (Algorithms 2/6/8's "wait for the answer, else retransmit"):

* :meth:`await_response` — wait up to a timeout for a message of the
  expected type(s), discarding foreign messages and replies correlated
  to a *superseded* request (``in_reply_to`` mismatch): acting on a
  stale grant would commit the vehicle to a reservation window that has
  already drifted away;
* :meth:`exchange` — one send-and-await round with the
  :class:`~repro.protocol.degrade.DegradationMonitor`'s jittered
  retransmit timeout applied at send time.

Both are DES generators, driven with ``yield from`` inside an agent
process.  The loop needs only an environment and a radio — no World,
no vehicle — so the retransmit semantics are unit-testable against a
bare :class:`~repro.network.channel.Channel`.

Observability: :meth:`exchange` mints the *correlation id* of the whole
request/response transaction — the request's ``seq``, stamped onto the
outgoing message's ``corr`` header so the channel and the IM propagate
it — and emits ``span.request`` / ``span.reply`` / ``span.timeout``
records.  A retransmission is a *new* message with a new seq, hence a
new span: retries never double-count latency.  The machine also keeps
the ROADMAP's per-machine counters (:attr:`exchanges`,
:attr:`timeouts`, :attr:`discarded`) regardless of whether tracing is
enabled — counting is cheap and deterministic.
"""

from __future__ import annotations

from typing import Optional

from repro.des import AnyOf, Environment
from repro.network.channel import Radio
from repro.network.messages import Message
from repro.obs.events import NULL_LOG
from repro.protocol.degrade import DegradationMonitor

__all__ = ["RequestLoop"]


class RequestLoop:
    """Typed, correlated request/response matching on ``radio``.

    Parameters
    ----------
    env:
        DES environment.
    radio:
        The endpoint's attached radio.
    monitor:
        Backoff state machine supplying the per-exchange timeout.
    obs:
        Optional :class:`~repro.obs.EventLog`; defaults to the
        zero-cost null sink.
    """

    def __init__(
        self,
        env: Environment,
        radio: Radio,
        monitor: DegradationMonitor,
        obs=None,
    ):
        self.env = env
        self.radio = radio
        self.monitor = monitor
        self.obs = obs if obs is not None else NULL_LOG
        #: Exchanges started (requests sent through :meth:`exchange`).
        self.exchanges = 0
        #: Exchanges that ended in a response timeout.
        self.timeouts = 0
        #: Foreign/stale messages discarded while awaiting a reply.
        self.discarded = 0

    def await_response(self, timeout: float, *types, reply_to: Optional[int] = None):
        """Wait up to ``timeout`` for a message of one of ``types``.

        Non-matching messages are discarded, as are replies correlated
        to a superseded request (``in_reply_to`` mismatch).  Returns the
        message or ``None`` on timeout.
        """
        deadline = self.env.now + timeout
        while True:
            remaining = deadline - self.env.now
            if remaining <= 0:
                return None
            get = self.radio.receive()
            expiry = self.env.timeout(remaining)
            result = yield AnyOf(self.env, [get, expiry])
            if get in result:
                message = result[get]
                if isinstance(message, types):
                    tag = getattr(message, "in_reply_to", 0)
                    if reply_to is None or tag in (0, reply_to):
                        return message
                self.discarded += 1
                if self.obs.enabled:
                    self.obs.emit(
                        "loop.discard", self.env.now, self.radio.address,
                        corr=getattr(message, "corr", 0),
                        msg=type(message).__name__,
                    )
                continue  # stale or foreign message; keep waiting
            # Timed out: withdraw the pending get so it cannot swallow
            # a later delivery meant for the next exchange.
            self.radio.inbox.cancel_get(get)
            return None

    def exchange(self, request: Message, *types, reply_to: Optional[int] = None):
        """Send ``request`` and await a matching reply.

        The response timeout is drawn from the monitor *after* the send
        (jitter at call time, never stored).  Returns the reply message
        or ``None`` on timeout; backoff accounting is the caller's
        decision — a timed-out sync exchange and a timed-out crossing
        request degrade through the same monitor but update different
        records.
        """
        request.corr = request.seq
        self.exchanges += 1
        obs = self.obs
        sent_at = self.env.now
        if obs.enabled:
            data = {"msg": type(request).__name__}
            tt = getattr(request, "tt", None)
            if tt is None:
                tt = getattr(request, "t0", None)
            if tt is not None:
                data["tt"] = tt
            obs.emit(
                "span.request", sent_at, self.radio.address,
                corr=request.corr, **data,
            )
        self.radio.send(request)
        response = yield from self.await_response(
            self.monitor.next_timeout(), *types, reply_to=reply_to
        )
        if response is None:
            self.timeouts += 1
            if obs.enabled:
                obs.emit(
                    "span.timeout", self.env.now, self.radio.address,
                    corr=request.corr,
                )
        elif obs.enabled:
            obs.emit(
                "span.reply", self.env.now, self.radio.address,
                corr=request.corr, msg=type(response).__name__,
                rtd=self.env.now - sent_at,
            )
        return response
