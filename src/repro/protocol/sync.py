"""NTP time-sync: the vehicle-side session and the IM-side responder.

The paper's Ch 3.2 sync state runs once per approach: the vehicle
exchanges four timestamps with the IM and steps its clock by the
minimum-delay sample's offset.  :class:`TimeSyncSession` adds the two
robustness clauses the fault suite demanded:

* **trust bound** — a sample whose measured round trip exceeds
  ``rtt_limit`` is kept (the minimum-delay filter may still fall back
  on it) but not *trusted* on its own: the NTP offset error is bounded
  by half the round-trip delay, so accepting one delay-spiked exchange
  would skew the local clock past the entire sync buffer and let a
  Crossroads vehicle execute its ``TE`` inside cross traffic's window;
* **attempt budget** — after ``attempt_budget`` samples the best
  (minimum-delay) one is used regardless: safe degradation inside a
  forced delay-spike window, not an infinite loop.

:class:`TimeSyncResponder` is the IM half: answer a
:class:`~repro.network.messages.SyncRequest` with the server receive /
transmit timestamps (identical here — the IM's turnaround is absorbed
by its compute model, not the NTP path).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.channel import Radio
from repro.network.messages import SyncRequest, SyncResponse
from repro.protocol.loop import RequestLoop
from repro.timesync.ntp import NtpClient, NtpSample

__all__ = ["TimeSyncResponder", "TimeSyncSession"]


class TimeSyncSession:
    """Vehicle-side NTP exchange: retransmitted, trust-bounded, budgeted.

    Parameters
    ----------
    loop:
        The endpoint's :class:`~repro.protocol.loop.RequestLoop`
        (supplies env, radio and the backoff monitor).
    ntp:
        Minimum-delay sample filter bound to the local clock.
    server:
        Network address of the time reference (the IM).
    local_time:
        Callable returning the current *local clock* reading (the four
        NTP timestamps are clock readings, not simulation time).
    rtt_limit:
        Largest round trip a sample may show and still be trusted alone.
    attempt_budget:
        Samples to collect before settling for the best one.
    """

    def __init__(
        self,
        loop: RequestLoop,
        ntp: NtpClient,
        *,
        server: str,
        local_time: Callable[[], float],
        rtt_limit: float,
        attempt_budget: int = 4,
    ):
        if rtt_limit <= 0:
            raise ValueError("rtt_limit must be positive")
        if attempt_budget < 1:
            raise ValueError("attempt_budget must be >= 1")
        self.loop = loop
        self.ntp = ntp
        self.server = server
        self.local_time = local_time
        self.rtt_limit = rtt_limit
        self.attempt_budget = attempt_budget
        #: Completed sync sessions (clock actually stepped).
        self.sessions = 0
        #: Answered NTP exchanges (samples collected).
        self.samples = 0
        #: Re-exchanges forced by the ``rtt_limit`` trust bound.
        self.resamples = 0

    def run(
        self,
        *,
        should_abort: Optional[Callable[[], bool]] = None,
        on_timeout: Optional[Callable[[], None]] = None,
        on_contact: Optional[Callable[[], None]] = None,
        on_resample: Optional[Callable[[], None]] = None,
    ):
        """DES generator: exchange until synchronised (or aborted).

        ``on_timeout`` fires on every unanswered exchange (the caller's
        backoff/record hook), ``on_contact`` on every answered one, and
        ``on_resample`` whenever a spiked sample forces a re-exchange.
        Returns True once the clock was stepped, False if aborted first.
        """
        attempts = 0
        while should_abort is None or not should_abort():
            t0 = self.local_time()
            request = SyncRequest(
                sender=self.loop.radio.address, receiver=self.server, t0=t0
            )
            response = yield from self.loop.exchange(request, SyncResponse)
            if response is None:
                if on_timeout is not None:
                    on_timeout()
                continue
            t3 = self.local_time()
            sample = NtpSample(t0=response.t0, t1=response.t1, t2=response.t2, t3=t3)
            self.ntp.add_sample(sample)
            self.samples += 1
            if on_contact is not None:
                on_contact()
            attempts += 1
            if sample.delay <= self.rtt_limit or attempts >= self.attempt_budget:
                self.ntp.synchronize()
                self.sessions += 1
                return True
            # Spiked sample: count the re-exchange and try again.
            self.resamples += 1
            if on_resample is not None:
                on_resample()
        return False


class TimeSyncResponder:
    """IM-side NTP answerer: echo ``t0``, stamp ``t1 = t2 = now``."""

    def __init__(self, radio: Radio, address: Optional[str] = None):
        self.radio = radio
        self.address = address if address is not None else radio.address
        #: Sync requests answered.
        self.responses = 0

    def respond(self, message: SyncRequest, now: float) -> None:
        """Answer one sync request; ``now`` is the server clock."""
        self.responses += 1
        response = SyncResponse(
            sender=self.address,
            receiver=message.sender,
            t0=message.t0,
            t1=now,
            t2=now,
        )
        # Propagate the exchange correlation id for observability.
        response.corr = getattr(message, "corr", 0)
        self.radio.send(response)
