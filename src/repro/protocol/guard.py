"""IM-side per-sender sequence guards.

Two holes the fuzz suite found in the receive path, folded into one
small machine:

* **stale requests** — per-sender message seqs are monotonic in *send*
  order, so a request at or below the sender's high-water mark arriving
  later is a reordered or duplicated stale request.  Acting on it would
  replace the sender's live reservation with one planned from
  out-of-date state — a collision hazard at high flow.
* **stale cancels** — a cancel that predates the sender's most recent
  grant means the vehicle already renegotiated; releasing the *new*
  reservation would hand its slot to cross traffic while the vehicle is
  committed to using it.

Pure dictionary state, no DES or radio dependencies.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SequenceGuard"]


class SequenceGuard:
    """Monotonic request-seq and grant-seq tracking per sender."""

    def __init__(self):
        #: Highest request seq seen per sender.
        self._last_request_seq: Dict[str, int] = {}
        #: Seq of the last *granted* request per sender.
        self._last_grant_seq: Dict[str, int] = {}
        #: Requests admitted (fresh, in-order).
        self.admitted = 0
        #: Stale/reordered requests rejected.
        self.drops = 0
        #: Cancels identified as stale (predating the live grant).
        self.stale_cancels = 0

    def admit_request(self, sender: str, seq: int) -> bool:
        """Record a request; False iff it is reordered/duplicated stale."""
        if seq <= self._last_request_seq.get(sender, -1):
            self.drops += 1
            return False
        self._last_request_seq[sender] = seq
        self.admitted += 1
        return True

    def note_grant(self, sender: str, seq: int) -> None:
        """Record that ``sender``'s request ``seq`` was granted."""
        self._last_grant_seq[sender] = seq

    def stale_cancel(self, sender: str, seq: int) -> bool:
        """True iff a cancel with ``seq`` predates the sender's last grant."""
        stale = seq < self._last_grant_seq.get(sender, -1)
        if stale:
            self.stale_cancels += 1
        return stale
