"""The shared protocol layer: small, composable state machines.

Crossroads' core claim is an *interface* property — stamping every
command with ``TE = TT + WC-RTD`` removes the round-trip delay from the
safety buffer — and the machinery that realises it (time sync,
retransmission, command validation, degradation) is policy-independent.
This package makes that machinery an explicit layer between the network
substrate and the policy code:

* :class:`TimeSyncSession` — the vehicle side of the NTP exchange with
  the round-trip trust bound and the sample re-exchange budget, plus
  :class:`TimeSyncResponder`, the IM's trivial four-timestamp answerer;
* :class:`RequestLoop` — request/response matching on one radio:
  typed ``await_response`` with ``in_reply_to`` correlation, and the
  jittered retransmit ``exchange``;
* :class:`CommandValidator` — the staleness clauses (measured RTD vs
  WC-RTD, TE/ToA deadline margins) and ``min_command_margin``
  accounting;
* :class:`DegradationMonitor` — consecutive-silence tracking, the
  multiplicative retransmit backoff with jitter, and the safe-stop
  degraded mode;
* :class:`SequenceGuard` — the IM-side per-sender monotonic request
  guard and stale-cancel filter.

Every machine takes its dependencies (the DES environment, a radio, an
NTP client, an RNG) injected, so each is unit-testable without a
:class:`~repro.sim.world.World`.  Layering is enforced by
``tools/check_layers.py``: this package may import :mod:`repro.des`,
:mod:`repro.network` and :mod:`repro.timesync` but never
:mod:`repro.core`, :mod:`repro.vehicle`, :mod:`repro.sim` or
:mod:`repro.cli`.
"""

from repro.protocol.degrade import DegradationMonitor
from repro.protocol.guard import SequenceGuard
from repro.protocol.loop import RequestLoop
from repro.protocol.sync import TimeSyncResponder, TimeSyncSession
from repro.protocol.validate import CommandValidator

__all__ = [
    "CommandValidator",
    "DegradationMonitor",
    "RequestLoop",
    "SequenceGuard",
    "TimeSyncResponder",
    "TimeSyncSession",
]
