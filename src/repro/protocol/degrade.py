"""Silence tracking, retransmit backoff, and safe-stop degradation.

One :class:`DegradationMonitor` per protocol endpoint owns the three
coupled pieces of "how long since the IM answered" state:

* the current retransmit timeout, grown multiplicatively (capped) on
  every unanswered exchange and reset on any contact;
* the multiplicative retransmit *jitter* applied at call time, so a
  fleet silenced by the same blackout window does not re-request in
  lockstep when the radio comes back (the classic re-request storm);
* the consecutive-silence counter that latches **degraded mode** — the
  only safe command while the IM is unreachable is a stop — after
  ``silence_limit`` unanswered exchanges with no committed plan.

The monitor is deliberately free of DES / radio / record dependencies:
it is pure state fed by :meth:`on_timeout` / :meth:`on_contact`, which
makes it trivially unit-testable and reusable on either side of the
protocol.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["DegradationMonitor"]


class DegradationMonitor:
    """Backoff + degraded-mode state machine.

    Parameters
    ----------
    retry_timeout:
        Base response timeout before retransmitting, seconds.
    backoff_jitter:
        Multiplicative jitter bound: each :meth:`next_timeout` call
        returns ``timeout * (1 + U[0, backoff_jitter])``.
    silence_limit:
        Consecutive unanswered exchanges before entering degraded mode
        (safe-stop hold until contact).
    rng:
        Randomness for the jitter draw (kept separate from any plant
        noise stream so protocol draws never perturb physics mid-run).
    growth:
        Backoff growth factor per unanswered exchange.
    timeout_cap:
        Largest retransmit timeout the backoff may reach, seconds.
    """

    def __init__(
        self,
        retry_timeout: float,
        *,
        backoff_jitter: float = 0.0,
        silence_limit: int = 5,
        rng: Optional[np.random.Generator] = None,
        growth: float = 1.5,
        timeout_cap: float = 0.8,
    ):
        if retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if silence_limit < 1:
            raise ValueError("silence_limit must be >= 1")
        if growth < 1.0:
            raise ValueError("growth must be >= 1.0")
        if timeout_cap < retry_timeout:
            raise ValueError("timeout_cap must be >= retry_timeout")
        self.base_timeout = retry_timeout
        self.backoff_jitter = backoff_jitter
        self.silence_limit = silence_limit
        self.growth = growth
        self.timeout_cap = timeout_cap
        self._rng = rng if rng is not None else np.random.default_rng()
        #: Current (un-jittered) retransmit timeout, seconds.
        self.retry_timeout = retry_timeout
        #: Consecutive unanswered exchanges (reset on any contact).
        self.timeouts_in_a_row = 0
        #: Degraded mode: prolonged peer silence -> safe-stop hold
        #: until the peer is heard from again.
        self.degraded = False
        #: Lifetime unanswered exchanges (never reset — telemetry).
        self.timeouts_total = 0
        #: Lifetime answered exchanges (never reset — telemetry).
        self.contacts = 0
        #: Times the machine latched degraded mode.
        self.degraded_entries = 0
        #: Total time spent degraded, in the caller-supplied clock
        #: (accumulated by :meth:`on_contact` from :attr:`degraded_since`).
        self.degraded_time = 0.0
        #: Clock reading when degraded mode was last entered (callers
        #: pass ``now`` into :meth:`on_timeout` / :meth:`on_contact`).
        self.degraded_since: Optional[float] = None

    def next_timeout(self) -> float:
        """Current retransmit timeout with the call-time jitter applied.

        The jitter is never stored: every call draws fresh, so repeated
        retransmissions of the same request de-synchronise too.
        """
        jitter = self.backoff_jitter
        if jitter <= 0:
            return self.retry_timeout
        return self.retry_timeout * (1.0 + jitter * float(self._rng.random()))

    def on_timeout(self, *, committed: bool = False, now: Optional[float] = None) -> bool:
        """Record one unanswered exchange.

        Grows the retransmit timeout (capped) and bumps the silence
        counter.  ``committed`` is True while the endpoint holds a
        granted plan — a committed vehicle keeps driving its plan and
        must *not* degrade to a stop mid-manoeuvre.  ``now`` (optional,
        any monotonic clock) stamps when degraded mode was entered so
        :attr:`degraded_time` can be accumulated.  Returns True when
        this very timeout pushed the machine into degraded mode.
        """
        self.retry_timeout = min(self.retry_timeout * self.growth, self.timeout_cap)
        self.timeouts_in_a_row += 1
        self.timeouts_total += 1
        if (
            self.timeouts_in_a_row >= self.silence_limit
            and not committed
            and not self.degraded
        ):
            self.degraded = True
            self.degraded_entries += 1
            self.degraded_since = now
            return True
        return False

    def on_contact(self, *, now: Optional[float] = None) -> None:
        """The peer answered: reset backoff and leave degraded mode."""
        self.retry_timeout = self.base_timeout
        self.timeouts_in_a_row = 0
        self.contacts += 1
        if self.degraded and self.degraded_since is not None and now is not None:
            self.degraded_time += max(now - self.degraded_since, 0.0)
        self.degraded = False
        self.degraded_since = None
