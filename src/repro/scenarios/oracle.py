"""Runtime safety-property checker layered on the world's monitor.

The :class:`SafetyOracle` registers a per-tick callback on
``World.safety_checks`` (run by the existing ground-truth safety
monitor every ``safety_dt``) and checks the invariants the collision
counter alone cannot see:

``collision``
    A new body-overlap episode opened (mirrors the world's episode
    counter — the oracle asserts the two always agree).
``reservation_overlap``
    Two committed reservations in the VT/Crossroads scheduler book
    occupy a shared conflict interval at overlapping times.  (AIM's
    tile book enforces this structurally: ``commit`` raises on a
    double-claim, so for AIM the invariant cannot be silently broken.)
``ungranted_entry``
    A vehicle's body crossed the stop line while the IM holds no live
    reservation for it — a revoked or never-granted TE window.
    Scripted emergency vehicles are exempt (they pre-empt by design);
    scripted rogues are *not* (detecting them is the point).
``starvation``
    A spawned vehicle has waited longer than the scenario's
    ``starvation_bound`` without entering the box.

Checks only *observe*: no RNG draws, no DES events, no mutation of
simulation state — attaching an oracle never changes a run's
``summary()`` (the same contract the obs layer keeps).  Violations are
recorded as :class:`Violation` records and, when the world is traced,
emitted as structured ``safety.violation`` events on the obs bus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

__all__ = ["SafetyOracle", "Violation", "VIOLATION_KINDS"]

#: Every kind a :class:`Violation` record can carry.
VIOLATION_KINDS = (
    "collision",
    "reservation_overlap",
    "ungranted_entry",
    "starvation",
)

#: Slack on occupancy-interval comparisons (mirrors the scheduler's
#: commit-time verification tolerance).
_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One detected safety-invariant breach."""

    kind: str
    t: float
    vehicle_id: int
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.t:8.3f}s] {self.kind} V{self.vehicle_id}: {self.detail}"


class SafetyOracle:
    """Attach invariant checks to a (not yet run) :class:`World`.

    Parameters
    ----------
    world:
        The world to monitor; the oracle appends itself to
        ``world.safety_checks`` immediately.
    starvation_bound:
        Spawn-to-box-entry wait, seconds, beyond which a vehicle counts
        as starved.
    """

    def __init__(self, world, starvation_bound: float = 120.0):
        if starvation_bound <= 0:
            raise ValueError("starvation_bound must be positive")
        self.world = world
        self.starvation_bound = starvation_bound
        self.violations: List[Violation] = []
        self._seen_episodes = 0
        self._entered: Set[int] = set()
        self._starved: Set[int] = set()
        self._overlap_pairs: Set[Tuple[int, int]] = set()
        world.safety_checks.append(self._tick)

    # -- results -----------------------------------------------------------
    @property
    def kinds(self) -> Set[str]:
        """Distinct violation kinds observed so far."""
        return {v.kind for v in self.violations}

    def by_kind(self, kind: str) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]

    # -- recording ---------------------------------------------------------
    def _record(self, kind: str, t: float, vehicle_id: int, detail: str) -> None:
        self.violations.append(
            Violation(kind=kind, t=t, vehicle_id=vehicle_id, detail=detail)
        )
        obs = self.world.obs
        if obs is not None and obs.enabled:
            obs.emit(
                "safety.violation", t, "oracle",
                violation=kind, vehicle_id=vehicle_id, detail=detail,
            )

    # -- the per-tick check -------------------------------------------------
    def _tick(self, now: float) -> None:
        self._check_collisions(now)
        self._check_reservation_overlap(now)
        self._check_entries(now)
        self._check_starvation(now)

    def _check_collisions(self, now: float) -> None:
        episodes = self.world.collision_episodes
        # The fuzzer's episode-accounting assertion (satellite fix):
        # the scalar counter and the episode list must never drift.
        assert self.world.collisions == len(episodes), (
            "collision counter drifted from episode list"
        )
        for t, (a, b) in episodes[self._seen_episodes:]:
            self._record("collision", t, a, f"body overlap with V{b}")
        self._seen_episodes = len(episodes)

    def _check_reservation_overlap(self, now: float) -> None:
        scheduler = getattr(self.world.im, "scheduler", None)
        conflicts = self.world.conflicts
        if scheduler is None or conflicts is None:
            return
        book = scheduler.book
        for a, b in itertools.combinations(book, 2):
            pair = (min(a.vehicle_id, b.vehicle_id),
                    max(a.vehicle_id, b.vehicle_id))
            if pair in self._overlap_pairs:
                continue
            for iv in conflicts.intervals(a.movement, b.movement):
                a_in, a_out = a.interval_occupancy(iv.a_in, iv.a_out)
                b_in, b_out = b.interval_occupancy(iv.b_in, iv.b_out)
                if not (a_out <= b_in + _EPS or b_out <= a_in + _EPS):
                    self._overlap_pairs.add(pair)
                    self._record(
                        "reservation_overlap", now, pair[0],
                        f"booked occupancy of V{a.vehicle_id} "
                        f"[{a_in:.3f}, {a_out:.3f}] overlaps "
                        f"V{b.vehicle_id} [{b_in:.3f}, {b_out:.3f}] on "
                        f"{a.movement.key}x{b.movement.key}",
                    )
                    break

    def _grant_source(self):
        """The IM's grant-truth book, or None when the policy exposes
        neither a scheduler nor a tile-reservation table."""
        scheduler = getattr(self.world.im, "scheduler", None)
        if scheduler is not None:
            return scheduler
        return getattr(self.world.im, "reservations", None)

    def _check_entries(self, now: float) -> None:
        source = self._grant_source()
        for vehicle in self.world.vehicles:
            vid = vehicle.info.vehicle_id
            if vid in self._entered or vehicle.record.enter_time is None:
                continue
            self._entered.add(vid)
            if source is None:
                continue
            if getattr(vehicle, "_scenario_emergency", False):
                continue  # pre-emption is sanctioned by the scenario
            if not source.holds(vid):
                self._record(
                    "ungranted_entry", now, vid,
                    "entered the box with no live reservation "
                    f"(crossed at t={vehicle.record.enter_time:.3f})",
                )

    def _check_starvation(self, now: float) -> None:
        for vehicle in self.world.vehicles:
            vid = vehicle.info.vehicle_id
            if vid in self._starved or vehicle.done:
                continue
            if vehicle.record.enter_time is not None:
                continue
            wait = now - vehicle.record.spawn_time
            if wait > self.starvation_bound:
                self._starved.add(vid)
                self._record(
                    "starvation", now, vid,
                    f"no box entry {wait:.1f}s after spawn "
                    f"(bound {self.starvation_bound:.1f}s)",
                )
