"""Compile and execute :class:`~repro.scenarios.ScenarioSpec` s.

:func:`run_spec` is the scenario twin of
:func:`~repro.sim.world.run_scenario`: build the world from the
compiled spec, install the scripted behaviours, attach the safety
oracle, run, and return a :class:`ScenarioResult` bundling the
simulation metrics with the oracle's verdict.

The null path is load-bearing: for a spec with no behaviours, faults
or overrides, ``run_spec`` constructs *exactly* the objects a direct
``run_scenario(policy, PoissonTraffic(flow, seed=s).generate(n),
seed=seed)`` call would (the oracle observes without perturbing), so
the two summaries are bit-identical — serially and across ``--jobs``
worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

from repro.obs.events import EventLog
from repro.scenarios.behaviours import install
from repro.scenarios.oracle import SafetyOracle, Violation
from repro.scenarios.spec import ScenarioSpec
from repro.sim.metrics import SimResult
from repro.sim.parallel import ParallelRunner, RunTask, resolve_jobs
from repro.sim.world import World

__all__ = [
    "ScenarioResult",
    "attach_oracles",
    "run_spec",
    "run_spec_replicated",
]


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario run: metrics + the oracle's findings."""

    spec: ScenarioSpec
    result: SimResult
    violations: "tuple[Violation, ...]"

    @property
    def kinds(self) -> "set[str]":
        """Distinct violation kinds observed."""
        return {v.kind for v in self.violations}

    @property
    def matches_expectation(self) -> bool:
        """True when the observed violation kinds are exactly the
        spec's ``expect`` set (empty expect -> clean run required)."""
        return self.kinds == set(self.spec.expect)

    def __str__(self) -> str:
        verdict = "ok" if self.matches_expectation else "UNEXPECTED"
        kinds = ", ".join(sorted(self.kinds)) or "none"
        return (
            f"{self.spec.name} [{self.spec.policy} seed={self.spec.seed}]: "
            f"violations: {kinds} ({verdict})"
        )


def build_world(
    spec: ScenarioSpec,
    obs: Optional[EventLog] = None,
    oracle: bool = True,
):
    """Compile ``spec`` into a wired :class:`World` (not yet run).

    Returns ``(world, oracle_or_None)``; exposed separately from
    :func:`run_spec` so tests can poke the world mid-flight.
    """
    world = World(
        spec.policy,
        spec.arrivals(),
        config=spec.world_config(),
        seed=spec.seed,
        obs=obs,
    )
    install(world, spec.behaviours)
    checker = (
        SafetyOracle(world, starvation_bound=spec.starvation_bound)
        if oracle
        else None
    )
    return world, checker


def attach_oracles(world, starvation_bound: float = 120.0):
    """Attach one :class:`SafetyOracle` per node of a grid world.

    ``world`` is duck-typed on a ``nodes`` mapping of per-intersection
    node runtimes (:class:`~repro.grid.world.GridWorld`; kept duck-typed
    so the scenario layer needs no grid import).  Each runtime exposes
    the same ``safety_checks``/``collision_episodes``/``im`` seam a
    single-intersection :class:`World` does, so the oracle attaches
    unchanged; the runtime's ``oracle`` slot is set so
    ``GridResult.violations`` can attribute findings per node.  Returns
    the ``{node name: oracle}`` mapping.  Call *before* ``run()`` —
    like ``SafetyOracle`` itself, attaching never perturbs the run.
    """
    oracles = {}
    for name, runtime in world.nodes.items():
        checker = SafetyOracle(runtime, starvation_bound=starvation_bound)
        runtime.oracle = checker
        oracles[name] = checker
    return oracles


def run_spec(
    spec: ScenarioSpec,
    obs: Optional[EventLog] = None,
    oracle: bool = True,
) -> ScenarioResult:
    """Run one scenario to completion."""
    world, checker = build_world(spec, obs=obs, oracle=oracle)
    result = world.run()
    violations = tuple(checker.violations) if checker is not None else ()
    return ScenarioResult(spec=spec, result=result, violations=violations)


def _spec_cell(spec: ScenarioSpec, seed: int) -> ScenarioResult:
    """Module-level worker for one replicate (picklable for the pool)."""
    return run_spec(replace(spec, seed=seed))


def run_spec_replicated(
    spec: ScenarioSpec,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    jobs: Union[int, str, None] = None,
) -> List[ScenarioResult]:
    """Replicate a scenario across world seeds (optionally parallel).

    Each replicate runs ``replace(spec, seed=seed)``.  Pin
    ``spec.traffic.seed`` to keep the *workload* fixed while only the
    world's noise varies (the ``run_replicated`` convention); leave it
    ``None`` to resample the workload per seed.  Results are
    bit-identical across ``jobs`` counts — the spec is pure data and
    each seed fully determines its run.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    tasks = [
        RunTask(_spec_cell, (spec, seed), label=f"{spec.name} seed={seed}")
        for seed in seeds
    ]
    return ParallelRunner(resolve_jobs(jobs)).map(tasks)
