"""Declarative scenarios, adversarial behaviours and the safety fuzzer.

The layer every workload should eventually spawn from: a
:class:`ScenarioSpec` describes spawn distributions, scripted
per-vehicle misbehaviour, fault regimes and oracle expectations as
pure data (JSON round-trip, no parser); :func:`run_spec` compiles and
runs it with the :class:`SafetyOracle` attached; :func:`fuzz` samples
the DSL, shrinks failures and persists minimal reproducers into the
checked-in ``scenarios/`` library.

A null scenario is bit-identical to the equivalent direct
``run_scenario`` call — the DSL adds vocabulary, never noise.
"""

from repro.scenarios.behaviours import BEHAVIOURS, install
from repro.scenarios.fuzz import (
    FuzzReport,
    fuzz,
    is_benign,
    property_failures,
    random_spec,
    shrink,
)
from repro.scenarios.library import (
    load_library,
    random_fault_spec,
    red_light_runner_spec,
    scale_model_specs,
)
from repro.scenarios.oracle import VIOLATION_KINDS, SafetyOracle, Violation
from repro.scenarios.runner import (
    ScenarioResult,
    attach_oracles,
    build_world,
    run_spec,
    run_spec_replicated,
)
from repro.scenarios.spec import (
    BEHAVIOUR_KINDS,
    BehaviourSpec,
    ScenarioSpec,
    SpawnSpec,
    TrafficSpec,
    fault_config_from_dict,
    fault_config_to_dict,
)

__all__ = [
    "BEHAVIOURS",
    "BEHAVIOUR_KINDS",
    "BehaviourSpec",
    "FuzzReport",
    "SafetyOracle",
    "ScenarioResult",
    "ScenarioSpec",
    "SpawnSpec",
    "TrafficSpec",
    "VIOLATION_KINDS",
    "Violation",
    "attach_oracles",
    "build_world",
    "fault_config_from_dict",
    "fault_config_to_dict",
    "fuzz",
    "install",
    "is_benign",
    "load_library",
    "property_failures",
    "random_fault_spec",
    "random_spec",
    "red_light_runner_spec",
    "run_spec",
    "run_spec_replicated",
    "scale_model_specs",
    "shrink",
]
