"""Scenario fuzzing: seed-keyed sampling, shrinking, persistence.

The sampler draws :class:`~repro.scenarios.ScenarioSpec` s from the
whole DSL — traffic distributions, adversarial behaviours, fault
regimes — deterministically per seed.  The test suite drives it with
hypothesis (``-m fuzz``); the ``repro fuzz`` CLI drives it with a plain
seeded loop so fuzzing works without the optional test dependencies.

Two verdicts are kept apart:

* a **property failure** is a bug in the protocols: a
  ``reservation_overlap`` anywhere, or *any* violation on a benign
  (no-behaviour, no-fault) scenario.  These fail the fuzz run.
* an **interesting** outcome is any scenario whose oracle fired — most
  are scripted rogues doing exactly what they were told.  Interesting
  cases are shrunk to minimal reproducers and persisted as JSON (with
  ``expect`` recording the violation kinds) into the checked-in
  scenario library, where the replay suite pins them forever.

Shrinking is greedy and re-verifies the target violation kinds after
every candidate edit: drop behaviours one by one, drop the fault
config, clear overrides, then halve the traffic volume — each step
keeps the candidate only if the shrunk scenario still reproduces every
target kind.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.schedule import random_fault_config
from repro.scenarios.runner import ScenarioResult, run_spec
from repro.scenarios.spec import BEHAVIOUR_KINDS, BehaviourSpec, ScenarioSpec, TrafficSpec

__all__ = [
    "FuzzReport",
    "fuzz",
    "is_benign",
    "property_failures",
    "random_spec",
    "shrink",
]

DEFAULT_POLICIES = ("crossroads", "vt-im", "aim")


def random_spec(
    rng: np.random.Generator,
    index: int = 0,
    policies: Sequence[str] = DEFAULT_POLICIES,
    max_cars: int = 8,
    adversarial: bool = True,
) -> ScenarioSpec:
    """Draw one scenario from the DSL (deterministic per RNG state).

    With ``adversarial=False`` only benign Poisson scenarios are drawn
    (the clean-run property); otherwise roughly half the draws carry
    scripted behaviours and/or a random fault regime.
    """
    policy = policies[int(rng.integers(len(policies)))]
    cars = int(rng.integers(3, max_cars + 1))
    traffic = TrafficSpec(
        flow=float(rng.uniform(0.1, 0.8)),
        cars=cars,
        seed=int(rng.integers(2 ** 31)),
    )
    behaviours: List[BehaviourSpec] = []
    faults = None
    if adversarial:
        n_behaviours = int(rng.integers(0, 3))
        for _ in range(n_behaviours):
            kind = BEHAVIOUR_KINDS[int(rng.integers(len(BEHAVIOUR_KINDS)))]
            behaviours.append(
                BehaviourSpec(
                    kind=kind,
                    vehicle_id=int(rng.integers(cars)),
                    start=float(rng.uniform(0.0, 6.0)),
                    duration=float(rng.uniform(1.0, 4.0)),
                    value=float(rng.uniform(0.0, 3.0)),
                )
            )
        if rng.random() < 0.4:
            faults = random_fault_config(rng, horizon=20.0)
    return ScenarioSpec(
        name=f"fuzz-{index}",
        traffic=traffic,
        policy=policy,
        seed=int(rng.integers(2 ** 31)),
        behaviours=tuple(behaviours),
        faults=faults,
        # Bounded horizon for scripted runs; benign draws keep the
        # null-compile path (no override at all).
        max_sim_time=120.0 if (behaviours or faults is not None) else None,
    )


def is_benign(spec: ScenarioSpec) -> bool:
    """No scripted misbehaviour and no fault regime."""
    return not spec.behaviours and spec.faults is None


def property_failures(outcome: ScenarioResult) -> Set[str]:
    """Violation kinds that indicate a *protocol* bug (not a scripted
    rogue doing its job)."""
    kinds = outcome.kinds
    bad = {"reservation_overlap"} & kinds
    if is_benign(outcome.spec):
        bad |= kinds
    return bad


# -- shrinking ----------------------------------------------------------------

def _candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Single-edit shrink candidates, most aggressive first.

    ``replace()`` revalidates the spec; an edit that produces an
    invalid scenario (e.g. shrinking the traffic below a behaviour's
    ``vehicle_id``) is silently skipped.
    """
    out: List[ScenarioSpec] = []

    def add(**changes) -> None:
        try:
            out.append(replace(spec, **changes))
        except ValueError:
            pass

    for i in range(len(spec.behaviours)):
        add(behaviours=spec.behaviours[:i] + spec.behaviours[i + 1:])
    if spec.faults is not None:
        add(faults=None)
    if spec.clock_offset_bound is not None or spec.clock_drift_bound is not None:
        add(clock_offset_bound=None, clock_drift_bound=None)
    traffic = spec.traffic
    if traffic.kind == "poisson" and traffic.cars > 1:
        for cars in sorted({traffic.cars // 2, traffic.cars - 1}):
            if cars >= 1:
                add(traffic=replace(traffic, cars=cars))
    return out


def shrink(
    spec: ScenarioSpec,
    target_kinds: Set[str],
    max_runs: int = 48,
) -> Tuple[ScenarioSpec, int]:
    """Greedily minimise ``spec`` while every target kind reproduces.

    Returns ``(minimal_spec, runs_used)``.  Every accepted edit was
    re-verified by a full run, so the returned spec deterministically
    reproduces ``target_kinds`` from its recorded seeds.
    """
    if not target_kinds:
        raise ValueError("need at least one target violation kind")
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate in _candidates(spec):
            if runs >= max_runs:
                break
            runs += 1
            if target_kinds <= run_spec(candidate).kinds:
                spec = candidate
                improved = True
                break
    return spec, runs


# -- the fuzz loop ------------------------------------------------------------

@dataclass
class FuzzReport:
    """Outcome of one fuzz session."""

    draws: int = 0
    #: Scenarios whose oracle fired (scripted rogues included).
    interesting: List[ScenarioResult] = field(default_factory=list)
    #: Subset indicating real protocol bugs (see module docstring).
    failures: List[ScenarioResult] = field(default_factory=list)
    #: Paths of newly persisted minimal reproducers.
    saved: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _persist(spec: ScenarioSpec, kinds: Set[str], out_dir: str, draw: int) -> Optional[str]:
    """Write a minimal reproducer (skip if the name already exists)."""
    tag = "-".join(sorted(kinds))
    name = f"found-{tag}-{spec.policy}-s{spec.seed}"
    path = os.path.join(out_dir, f"{name}.json")
    if os.path.exists(path):
        return None
    os.makedirs(out_dir, exist_ok=True)
    final = replace(spec, name=name, expect=tuple(sorted(kinds)))
    final.to_json(path)
    return path


def fuzz(
    seed: int = 0,
    max_examples: int = 25,
    budget_s: Optional[float] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    max_cars: int = 8,
    adversarial: bool = True,
    out_dir: Optional[str] = None,
    shrink_runs: int = 32,
    verbose: bool = False,
) -> FuzzReport:
    """Sample-run-shrink loop (the engine behind ``repro fuzz``).

    Stops after ``max_examples`` draws or once ``budget_s`` wall
    seconds elapse, whichever comes first.  With ``out_dir`` set, every
    interesting case is shrunk and persisted as a JSON reproducer.
    """
    import time

    rng = np.random.default_rng(seed)
    report = FuzzReport()
    deadline = (time.monotonic() + budget_s) if budget_s is not None else None
    for index in range(max_examples):
        if deadline is not None and time.monotonic() >= deadline:
            break
        spec = random_spec(
            rng, index=index, policies=policies, max_cars=max_cars,
            adversarial=adversarial,
        )
        outcome = run_spec(spec)
        report.draws += 1
        if verbose:
            print(f"  draw {index}: {outcome}")
        if property_failures(outcome):
            report.failures.append(outcome)
        if not outcome.kinds:
            continue
        report.interesting.append(outcome)
        if out_dir is not None:
            minimal, _ = shrink(spec, outcome.kinds, max_runs=shrink_runs)
            # Record what the *minimal* spec actually produces (a
            # shrink can add kinds beyond the target set); the replay
            # suite then pins exact reproduction, not a subset.
            final_kinds = run_spec(minimal).kinds
            path = _persist(minimal, final_kinds, out_dir, index)
            if path is not None:
                report.saved.append(path)
    return report
