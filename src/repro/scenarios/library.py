"""Builders and loaders for the checked-in scenario library.

The repository ships a ``scenarios/`` directory of JSON
:class:`~repro.scenarios.ScenarioSpec` files: the ten scale-model
cases of Fig 7.1 as declarative specs, the canonical adversarial
cases, and minimal reproducers persisted by the fuzzer.  The replay
suite (``tests/test_scenario_fuzz.py``) runs every entry and checks
its ``expect`` contract: benign entries replay clean, adversarial
entries reproduce exactly their recorded violation kinds.

This module also hosts the *promoted* ad-hoc setups that used to live
as bespoke test code: the fault-matrix workload of
``tests/test_fault_properties.py`` (:func:`random_fault_spec`) and the
red-light-runner construction (:func:`red_light_runner_spec`).
"""

from __future__ import annotations

import glob
import os
from typing import List, Optional, Sequence

import numpy as np

from repro.faults.schedule import random_fault_config
from repro.scenarios.spec import BehaviourSpec, ScenarioSpec, SpawnSpec, TrafficSpec

__all__ = [
    "load_library",
    "random_fault_spec",
    "red_light_runner_spec",
    "scale_model_specs",
]


def scale_model_specs(
    n_vehicles: int = 5,
    seed: int = 2017,
    policy: str = "crossroads",
) -> List[ScenarioSpec]:
    """The ten Fig 7.1 scenarios as declarative specs (S1..S10).

    The spawn tables are frozen from
    :func:`~repro.traffic.scale_model_scenarios`, so the DSL form and
    the imperative form drive identical workloads.
    """
    from repro.traffic.scenarios import scale_model_scenarios

    return [
        ScenarioSpec(
            name=scenario.name,
            traffic=TrafficSpec.explicit(scenario.arrivals),
            policy=policy,
            seed=seed,
        )
        for scenario in scale_model_scenarios(n_vehicles, seed=seed)
    ]


def random_fault_spec(
    policy: str,
    seed: int,
    n: int = 8,
    flow: float = 0.4,
) -> ScenarioSpec:
    """The fault-matrix cell as a spec (promoted from the fault tests).

    Compiles to exactly ``PoissonTraffic(flow, seed=seed).generate(n)``
    under ``random_fault_config(default_rng(seed), horizon=20)`` with
    world seed ``seed`` — the replayable ``(policy, seed)`` draw the
    fault-property suite has always pinned.
    """
    return ScenarioSpec(
        name=f"fault-matrix-{policy}-{seed}",
        traffic=TrafficSpec(flow=flow, cars=n, seed=seed),
        policy=policy,
        seed=seed,
        faults=random_fault_config(np.random.default_rng(seed), horizon=20.0),
    )


def red_light_runner_spec(
    policy: str = "crossroads",
    seed: int = 2017,
    start: float = 0.3,
    expect: Sequence[str] = (),
) -> ScenarioSpec:
    """Two crossing vehicles; vehicle 0 barrels through ungranted.

    The canonical TE-window violator: a north-approach vehicle
    self-commits a full-speed cruise at ``start`` (before its grant
    lands), cancelling any reservation — the oracle must flag its box
    entry, and depending on timing the east-approach vehicle's granted
    crossing turns into a body collision.
    """
    return ScenarioSpec(
        name=f"red-light-runner-{policy}",
        traffic=TrafficSpec(
            kind="explicit",
            spawns=(
                SpawnSpec(time=0.0, entry="N", turn="straight", speed=3.0),
                SpawnSpec(time=0.2, entry="E", turn="straight", speed=3.0),
            ),
        ),
        policy=policy,
        seed=seed,
        behaviours=(
            BehaviourSpec(kind="run_red_light", vehicle_id=0, start=start,
                          value=3.0),
        ),
        max_sim_time=60.0,
        expect=tuple(expect),
    )


def load_library(directory: str) -> List[ScenarioSpec]:
    """Load every ``*.json`` spec under ``directory`` (recursively),
    sorted by path for a stable replay order."""
    paths = sorted(
        glob.glob(os.path.join(directory, "**", "*.json"), recursive=True)
    )
    return [ScenarioSpec.from_file(path) for path in paths]
