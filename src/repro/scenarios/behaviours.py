"""The adversarial behaviour-hook library.

Each behaviour is a DES process attached to one spawned vehicle via the
world's ``on_spawn`` hook.  Behaviours script *misbehaviour* — they
bypass the protocol stack on purpose, so the safety oracle (and the
fuzzer built on it) has real violations to detect.  None of them draws
from a random stream: a scenario with behaviours differs from its
benign twin only through the scripted actions themselves.

Knob semantics per kind (``BehaviourSpec.start/duration/value``):

``run_red_light``
    At sim-time ``start`` the vehicle cancels any reservation and
    self-commits a cruise plan at ``value`` m/s (0 -> its approach
    speed) with **no IM grant** — the classic TE-window violator.  The
    plan is then frozen so a late grant cannot legitimise the entry.
``stall_in_box``
    Once the front bumper is ``value`` metres past the stop line, the
    vehicle commands zero velocity for ``duration`` seconds (dead
    engine in the box), then resumes tracking its (now stale) plan.
``emergency_preempt``
    Like ``run_red_light`` at ``value`` m/s (0 -> v_max), but flagged
    as an emergency: the oracle exempts it from the TE-window
    invariant while still collision-checking it.
``sensor_dropout``
    From ``start`` the odometry freezes for ``duration`` seconds: the
    plant keeps moving but ``measured_position()`` reports the value
    at dropout onset, so plan tracking and the safe-stop clause act on
    stale state mid-approach.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.network.messages import CancelReservation
from repro.scenarios.spec import BehaviourSpec

__all__ = ["BEHAVIOURS", "install"]


def _cancel_reservation(vehicle) -> None:
    vehicle.radio.send(
        CancelReservation(
            sender=vehicle.radio.address, receiver=vehicle.im_address
        )
    )


def _hijack_plan(vehicle, speed: float) -> None:
    """Self-commit a cruise plan and freeze it against later grants."""
    spec = vehicle.info.spec
    v = min(speed if speed > 0 else max(vehicle.approach_speed, 1.0),
            spec.v_max)
    vehicle._commit_cruise_plan(v)
    # Shadow _set_plan on the instance: an in-flight IM reply landing
    # after the hijack must not replace the rogue plan (the point of
    # the behaviour is an entry the IM never sanctioned).
    vehicle._set_plan = lambda plan: None


def _run_red_light(world, vehicle, spec: BehaviourSpec):
    delay = spec.start - world.env.now
    if delay > 0:
        yield world.env.timeout(delay)
    if vehicle.done:
        return
    vehicle._scenario_rogue = True
    _cancel_reservation(vehicle)
    _hijack_plan(vehicle, spec.value)


def _emergency_preempt(world, vehicle, spec: BehaviourSpec):
    delay = spec.start - world.env.now
    if delay > 0:
        yield world.env.timeout(delay)
    if vehicle.done:
        return
    vehicle._scenario_emergency = True
    _cancel_reservation(vehicle)
    _hijack_plan(vehicle, spec.value if spec.value > 0
                 else vehicle.info.spec.v_max)


def _stall_in_box(world, vehicle, spec: BehaviourSpec):
    dt = vehicle.config.dt
    target = vehicle.approach_length + max(spec.value, 0.0)
    while not vehicle.done and vehicle.front < target:
        yield world.env.timeout(dt)
    if vehicle.done:
        return
    vehicle._scenario_stalled = True
    vehicle._commanded_velocity = lambda: 0.0
    yield world.env.timeout(spec.duration)
    # Restore the class method; the tracking loop then recovers the
    # accumulated plan lag (clipped at the plant's velocity limit).
    vehicle.__dict__.pop("_commanded_velocity", None)


def _sensor_dropout(world, vehicle, spec: BehaviourSpec):
    delay = spec.start - world.env.now
    if delay > 0:
        yield world.env.timeout(delay)
    if vehicle.done:
        return
    vehicle._scenario_dropout = True
    frozen = vehicle.plant.measured_position()
    vehicle.plant.measured_position = lambda: frozen
    yield world.env.timeout(spec.duration)
    vehicle.plant.__dict__.pop("measured_position", None)


#: kind -> generator(world, vehicle, spec) (a DES process body).
BEHAVIOURS = {
    "run_red_light": _run_red_light,
    "stall_in_box": _stall_in_box,
    "emergency_preempt": _emergency_preempt,
    "sensor_dropout": _sensor_dropout,
}


def install(world, behaviours: Sequence[BehaviourSpec]) -> None:
    """Wire behaviour processes into a (not yet run) world.

    Sets ``world.on_spawn`` so each targeted vehicle gets its scripted
    processes the moment it spawns.  With an empty behaviour list this
    is a no-op — the hook stays ``None`` and the run is bit-identical
    to an uninstrumented one.
    """
    by_vid: Dict[int, List[BehaviourSpec]] = {}
    for b in behaviours:
        by_vid.setdefault(b.vehicle_id, []).append(b)
    if not by_vid:
        return

    def hook(vehicle):
        for b in by_vid.get(vehicle.info.vehicle_id, ()):
            world.env.process(BEHAVIOURS[b.kind](world, vehicle, b))

    world.on_spawn = hook
