"""The declarative scenario DSL: dataclasses + JSON round-trip.

A :class:`ScenarioSpec` is *pure data* describing one adversarial (or
benign) experiment: the traffic distribution (Poisson parameters or an
explicit spawn table), per-vehicle misbehaviour hooks, an optional
fault regime and clock/plant overrides, plus the oracle's expectations.
No parser — specs are built in Python or loaded from JSON, and every
spec round-trips ``from_json(to_json(spec)) == spec`` exactly.

Compilation is deliberately thin: :meth:`ScenarioSpec.arrivals` builds
the workload and :meth:`ScenarioSpec.world_config` the
:class:`~repro.sim.world.WorldConfig`.  A **null** scenario (Poisson
traffic, no behaviours, no faults, no overrides) compiles to the exact
``PoissonTraffic(flow, seed=seed).generate(cars)`` call and a ``None``
config, so running it through :func:`repro.scenarios.run_spec` is
bit-identical to today's ``run_scenario`` path — the regression tests
pin this under jobs=1 and jobs=2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import FaultConfig, FaultSchedule, FaultWindow
from repro.geometry.layout import Approach, Movement, Turn
from repro.traffic.generator import Arrival, PoissonTraffic, TurnMix

__all__ = [
    "BEHAVIOUR_KINDS",
    "BehaviourSpec",
    "ScenarioSpec",
    "SpawnSpec",
    "TrafficSpec",
    "fault_config_from_dict",
    "fault_config_to_dict",
]

#: Adversarial per-vehicle hooks the behaviour library implements (see
#: :mod:`repro.scenarios.behaviours` for the exact semantics of the
#: ``start`` / ``duration`` / ``value`` fields per kind).
BEHAVIOUR_KINDS = (
    "run_red_light",
    "stall_in_box",
    "emergency_preempt",
    "sensor_dropout",
)


# -- fault-config serialisation ------------------------------------------------

def fault_config_to_dict(config: FaultConfig) -> Dict:
    """Flatten a :class:`FaultConfig` (scalars + window list) to JSON."""
    data = {
        f.name: getattr(config, f.name)
        for f in fields(FaultConfig)
        if f.name != "schedule"
    }
    data["windows"] = [
        {"start": w.start, "end": w.end, "kind": w.kind,
         "direction": w.direction}
        for w in config.schedule.windows
    ]
    return data


def fault_config_from_dict(data: Dict) -> FaultConfig:
    """Inverse of :func:`fault_config_to_dict`."""
    scalars = dict(data)
    windows = scalars.pop("windows", [])
    return FaultConfig(
        schedule=FaultSchedule(tuple(FaultWindow(**w) for w in windows)),
        **scalars,
    )


# -- spawn / traffic -----------------------------------------------------------

@dataclass(frozen=True)
class SpawnSpec:
    """One explicit vehicle appearance at the transmission line."""

    time: float
    entry: str = "N"
    turn: str = "straight"
    speed: float = 3.0

    def __post_init__(self):
        Approach(self.entry)  # raises on unknown arm
        Turn(self.turn)
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if self.speed <= 0:
            raise ValueError("speed must be positive")

    def to_arrival(self) -> Arrival:
        return Arrival(
            time=self.time,
            movement=Movement(Approach(self.entry), Turn(self.turn)),
            speed=self.speed,
        )

    @classmethod
    def from_arrival(cls, arrival: Arrival) -> "SpawnSpec":
        return cls(
            time=arrival.time,
            entry=arrival.movement.entry.value,
            turn=arrival.movement.turn.value,
            speed=arrival.speed,
        )


@dataclass(frozen=True)
class TrafficSpec:
    """Distribution (or explicit table) over spawn times/lanes/routes.

    ``kind="poisson"`` mirrors :class:`~repro.traffic.PoissonTraffic`
    parameter-for-parameter (the defaults below *are* its defaults, so
    a default-constructed spec consumes the generator's RNG stream
    identically); ``kind="explicit"`` carries a fixed spawn table.
    """

    kind: str = "poisson"
    flow: float = 0.4
    cars: int = 8
    #: Workload seed; ``None`` inherits the scenario seed.
    seed: Optional[int] = None
    turn_left: float = 0.25
    turn_straight: float = 0.50
    turn_right: float = 0.25
    speed_min: float = 2.0
    speed_max: float = 3.0
    min_headway: float = 0.5
    spawns: Tuple[SpawnSpec, ...] = ()

    def __post_init__(self):
        if self.kind not in ("poisson", "explicit"):
            raise ValueError("kind must be 'poisson' or 'explicit'")
        object.__setattr__(self, "spawns", tuple(self.spawns))
        if self.kind == "explicit" and not self.spawns:
            raise ValueError("explicit traffic needs at least one spawn")
        if self.kind == "poisson" and self.cars < 1:
            raise ValueError("cars must be >= 1")

    @property
    def n_vehicles(self) -> int:
        return len(self.spawns) if self.kind == "explicit" else self.cars

    def arrivals(self, default_seed: Optional[int] = None) -> List[Arrival]:
        """Sample (or unpack) the workload, deterministically per seed."""
        if self.kind == "explicit":
            return sorted(
                (s.to_arrival() for s in self.spawns), key=lambda a: a.time
            )
        seed = self.seed if self.seed is not None else default_seed
        traffic = PoissonTraffic(
            self.flow,
            turn_mix=TurnMix(self.turn_left, self.turn_straight,
                             self.turn_right),
            speed_range=(self.speed_min, self.speed_max),
            min_headway=self.min_headway,
            seed=seed,
        )
        return traffic.generate(self.cars)

    @classmethod
    def explicit(cls, arrivals) -> "TrafficSpec":
        """Freeze an arrival list into an explicit spawn table."""
        return cls(
            kind="explicit",
            spawns=tuple(SpawnSpec.from_arrival(a) for a in arrivals),
        )


# -- behaviours ---------------------------------------------------------------

@dataclass(frozen=True)
class BehaviourSpec:
    """One scripted misbehaviour bound to one vehicle.

    The three numeric knobs are interpreted per ``kind`` (documented in
    :mod:`repro.scenarios.behaviours`): ``start`` is a sim-time trigger
    (or, for ``stall_in_box``, ignored), ``duration`` a hold length and
    ``value`` a speed or a depth into the box.
    """

    kind: str
    vehicle_id: int
    start: float = 0.0
    duration: float = 1.0
    value: float = 0.0

    def __post_init__(self):
        if self.kind not in BEHAVIOUR_KINDS:
            raise ValueError(
                f"kind must be one of {BEHAVIOUR_KINDS} (got {self.kind!r})"
            )
        if self.vehicle_id < 0:
            raise ValueError("vehicle_id must be non-negative")
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


# -- the scenario -------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """One complete declarative scenario (see module docstring)."""

    name: str
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    policy: str = "crossroads"
    #: Master world seed (clocks, plants, channel).
    seed: int = 2017
    behaviours: Tuple[BehaviourSpec, ...] = ()
    faults: Optional[FaultConfig] = None
    #: Clock-regime overrides (None keeps the WorldConfig default).
    clock_offset_bound: Optional[float] = None
    clock_drift_bound: Optional[float] = None
    max_sim_time: Optional[float] = None
    ideal_vehicles: bool = False
    #: Oracle knob: spawn-to-box-entry waits beyond this are starvation.
    starvation_bound: float = 120.0
    #: Violation kinds a library replay must reproduce *exactly* (empty
    #: for benign entries, which must replay clean).
    expect: Tuple[str, ...] = ()
    #: Optional corridor compile hook: when set, :meth:`grid_spec`
    #: yields an n-node :class:`~repro.grid.GridSpec` for this policy.
    grid_nodes: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("name must be non-empty")
        object.__setattr__(self, "behaviours", tuple(self.behaviours))
        object.__setattr__(self, "expect", tuple(self.expect))
        n = self.traffic.n_vehicles
        for b in self.behaviours:
            if b.vehicle_id >= n:
                raise ValueError(
                    f"behaviour targets vehicle {b.vehicle_id} but the "
                    f"traffic spec spawns only {n}"
                )
        if self.starvation_bound <= 0:
            raise ValueError("starvation_bound must be positive")

    # -- compilation -------------------------------------------------------
    def is_null(self) -> bool:
        """True when compiling adds *nothing* over a plain
        ``run_scenario(policy, PoissonTraffic(...), seed=seed)`` call —
        the bit-identity contract of the DSL."""
        return (
            not self.behaviours
            and self.faults is None
            and self.clock_offset_bound is None
            and self.clock_drift_bound is None
            and self.max_sim_time is None
            and not self.ideal_vehicles
        )

    def arrivals(self) -> List[Arrival]:
        """The workload (seed-keyed deterministic)."""
        return self.traffic.arrivals(self.seed)

    def world_config(self):
        """The compiled :class:`~repro.sim.world.WorldConfig`, or
        ``None`` when every knob is at its default (the null path)."""
        from repro.sim.world import WorldConfig

        if self.is_null():
            return None
        kwargs = {}
        if self.faults is not None:
            kwargs["faults"] = self.faults
        if self.clock_offset_bound is not None:
            kwargs["clock_offset_bound"] = self.clock_offset_bound
        if self.clock_drift_bound is not None:
            kwargs["clock_drift_bound"] = self.clock_drift_bound
        if self.max_sim_time is not None:
            kwargs["max_sim_time"] = self.max_sim_time
        if self.ideal_vehicles:
            kwargs["ideal_vehicles"] = True
        return WorldConfig(**kwargs)

    def grid_spec(self):
        """Corridor :class:`~repro.grid.GridSpec` when ``grid_nodes``
        is set, else ``None`` (lazy import: grid is a sibling layer)."""
        if self.grid_nodes is None:
            return None
        from repro.grid import corridor_spec

        return corridor_spec(self.grid_nodes, policy=self.policy)

    # -- JSON round-trip ----------------------------------------------------
    def to_dict(self) -> Dict:
        data: Dict = {
            "name": self.name,
            "policy": self.policy,
            "seed": self.seed,
            "traffic": self._traffic_dict(),
        }
        if self.behaviours:
            data["behaviours"] = [
                {"kind": b.kind, "vehicle_id": b.vehicle_id,
                 "start": b.start, "duration": b.duration, "value": b.value}
                for b in self.behaviours
            ]
        if self.faults is not None:
            data["faults"] = fault_config_to_dict(self.faults)
        for key in ("clock_offset_bound", "clock_drift_bound",
                    "max_sim_time", "grid_nodes"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.ideal_vehicles:
            data["ideal_vehicles"] = True
        if self.starvation_bound != 120.0:
            data["starvation_bound"] = self.starvation_bound
        if self.expect:
            data["expect"] = list(self.expect)
        return data

    def _traffic_dict(self) -> Dict:
        t = self.traffic
        if t.kind == "explicit":
            return {
                "kind": "explicit",
                "spawns": [
                    {"time": s.time, "entry": s.entry, "turn": s.turn,
                     "speed": s.speed}
                    for s in t.spawns
                ],
            }
        data = {"kind": "poisson", "flow": t.flow, "cars": t.cars}
        if t.seed is not None:
            data["seed"] = t.seed
        defaults = TrafficSpec()
        for key in ("turn_left", "turn_straight", "turn_right",
                    "speed_min", "speed_max", "min_headway"):
            if getattr(t, key) != getattr(defaults, key):
                data[key] = getattr(t, key)
        return data

    def to_json(self, path: Optional[str] = None) -> str:
        """JSON form; also written to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=2)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        if "name" not in data:
            raise ValueError("scenario spec needs a 'name'")
        traffic_data = dict(data.get("traffic", {}))
        spawns = traffic_data.pop("spawns", None)
        if spawns is not None:
            traffic_data["spawns"] = tuple(SpawnSpec(**s) for s in spawns)
        traffic = TrafficSpec(**traffic_data)
        behaviours = tuple(
            BehaviourSpec(**b) for b in data.get("behaviours", [])
        )
        faults = (
            fault_config_from_dict(data["faults"])
            if "faults" in data
            else None
        )
        return cls(
            name=data["name"],
            traffic=traffic,
            policy=data.get("policy", "crossroads"),
            seed=data.get("seed", 2017),
            behaviours=behaviours,
            faults=faults,
            clock_offset_bound=data.get("clock_offset_bound"),
            clock_drift_bound=data.get("clock_drift_bound"),
            max_sim_time=data.get("max_sim_time"),
            ideal_vehicles=data.get("ideal_vehicles", False),
            starvation_bound=data.get("starvation_bound", 120.0),
            expect=tuple(data.get("expect", [])),
            grid_nodes=data.get("grid_nodes"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        with open(path) as fh:
            return cls.from_json(fh.read())
