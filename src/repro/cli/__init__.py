"""Command-line interface: ``python -m repro <command>``.

Commands mirror the examples and benchmarks:

* ``run`` — one scenario/flow under one policy, per-vehicle table;
* ``sweep`` — the Fig 7.2 policy-by-flow grid (micro or analytic engine);
* ``scenarios`` — the Fig 7.1 ten-scenario comparison;
* ``buffer`` — the Ch 3 safety-buffer estimation experiment;
* ``info`` — version, policies and testbed constants.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
