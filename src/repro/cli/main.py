"""Argument parsing and command dispatch for the ``repro`` CLI."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Crossroads intersection-management reproduction (DAC 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload under one policy")
    _add_workload_arguments(run)
    run.add_argument("--perf", action="store_true",
                     help="print repro.perf timers/counters after the run")
    run.add_argument("--trace", metavar="FILE", default=None,
                     help="record the run on the repro.obs event bus and "
                          "write a Chrome trace-event file FILE (open it "
                          "at https://ui.perfetto.dev)")
    _add_metrics_argument(run)
    _add_plugin_argument(run)

    trace = sub.add_parser(
        "trace",
        help="traced run: Chrome trace (Perfetto) + span statistics",
    )
    _add_workload_arguments(trace)
    trace.add_argument("--out", metavar="FILE", default="out.trace.json",
                       help="Chrome trace-event output file "
                            "(default: out.trace.json)")
    trace.add_argument("--jsonl", metavar="FILE", default=None,
                       help="also dump the raw event stream as JSON Lines")
    trace.add_argument("--kernel", action="store_true",
                       help="also record per-DES-event des.step records "
                            "(high volume)")
    _add_plugin_argument(trace)

    sweep = sub.add_parser("sweep", help="Fig 7.2: throughput vs flow grid")
    sweep.add_argument("--policies", nargs="+",
                       default=["aim", "vt-im", "crossroads"])
    sweep.add_argument("--flows", nargs="+", type=float,
                       default=[0.05, 0.1, 0.3, 0.6, 1.0])
    sweep.add_argument("--cars", type=int, default=40)
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--engine", choices=("micro", "analytic"),
                       default="micro",
                       help="micro = full protocol simulation; analytic = "
                            "ideal-vehicle fast engine (VT-style IMs only)")
    sweep.add_argument("--jobs", default=None,
                       help="worker processes for the micro engine: an "
                            "integer, 'auto' (one per CPU), or unset to "
                            "honour $REPRO_JOBS (default: serial); results "
                            "are bit-identical to a serial run")
    sweep.add_argument("--perf", action="store_true",
                       help="print the merged repro.perf timers/counters "
                            "of every sweep cell (micro engine only)")
    _add_plugin_argument(sweep)

    grid = sub.add_parser(
        "grid",
        help="multi-intersection corridor: routed graph of IMs with "
             "per-hop hand-off",
    )
    topo = grid.add_mutually_exclusive_group()
    topo.add_argument("--grid", metavar="FILE", default=None,
                      help="load a GridSpec from a JSON file "
                           "(see repro.grid.GridSpec.to_json)")
    topo.add_argument("--spec", metavar="FILE", default=None,
                      help="synonym for --grid: load a saved GridSpec "
                           "JSON (round-trips with --save-spec)")
    topo.add_argument("--nodes", type=int, default=3, metavar="N",
                      help="build a two-way west-east corridor of N "
                           "intersections (default: 3)")
    grid.add_argument("--policy", default="crossroads",
                      help="IM policy run at every node (for --nodes)")
    grid.add_argument("--policies", nargs="+", default=None, metavar="P",
                      help="per-node policies (one per node, for --nodes); "
                           "mixed policies are allowed")
    grid.add_argument("--link-length", type=float, default=6.0,
                      help="box-exit to transmission-line link distance, m")
    grid.add_argument("--flow", type=float, default=0.10,
                      help="Poisson boundary flow, cars/lane/second")
    grid.add_argument("--cars", type=int, default=20,
                      help="total boundary vehicles")
    grid.add_argument("--seed", type=int, default=2017)
    grid.add_argument("--seeds", nargs="+", type=int, default=None,
                      metavar="S",
                      help="replicate the corridor across these seeds on "
                           "the parallel runner instead of one full run")
    grid.add_argument("--jobs", default=None,
                      help="worker processes for --seeds replication "
                           "(int | 'auto' | unset for $REPRO_JOBS); "
                           "results are bit-identical to a serial run")
    grid.add_argument("--trace", metavar="FILE", default=None,
                      help="record the run on the repro.obs event bus "
                           "(grid.handoff + per-node spans) and write a "
                           "Chrome trace-event file FILE")
    grid.add_argument("--save-spec", metavar="FILE", default=None,
                      help="also write the resolved GridSpec as JSON")
    _add_metrics_argument(grid)
    _add_plugin_argument(grid)

    met = sub.add_parser(
        "metrics",
        help="streaming metrics: run one workload with the time-series "
             "registry, print the series summary, optionally export",
    )
    _add_workload_arguments(met)
    met.add_argument("--bucket", type=float, default=1.0, metavar="SECONDS",
                     help="time-series bucket width in simulated seconds "
                          "(default: 1.0)")
    met.add_argument("--out", metavar="FILE", default=None,
                     help="export the snapshot; format by extension: "
                          ".prom/.txt Prometheus text, .csv per-bucket "
                          "series, .jsonl one JSON object per series")
    _add_plugin_argument(met)

    fuzz = sub.add_parser(
        "fuzz",
        help="scenario fuzzer: sample the scenario DSL, shrink failures, "
             "persist minimal reproducers",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="sampler seed; the whole session is replayable "
                           "from it (default: 0)")
    fuzz.add_argument("--examples", type=int, default=25,
                      help="maximum scenarios to draw (default: 25)")
    fuzz.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                      help="wall-clock budget; stop drawing once it elapses")
    fuzz.add_argument("--policies", nargs="+",
                      default=["crossroads", "vt-im", "aim"])
    fuzz.add_argument("--max-cars", type=int, default=8,
                      help="traffic volume ceiling per draw (default: 8)")
    fuzz.add_argument("--benign", action="store_true",
                      help="draw only benign scenarios (clean-run property: "
                           "any violation is a failure)")
    fuzz.add_argument("--out", metavar="DIR", default=None,
                      help="shrink interesting cases and persist minimal "
                           "JSON reproducers into DIR (e.g. scenarios/found)")
    fuzz.add_argument("--replay", metavar="DIR", default=None,
                      help="instead of fuzzing, replay every spec under DIR "
                           "and check its 'expect' contract")
    fuzz.add_argument("-v", "--verbose", action="store_true",
                      help="print every draw's outcome")

    serve = sub.add_parser(
        "serve",
        help="IM-as-a-service: host one IM over TCP speaking the "
             "wire-framed protocol messages, WC-RTD measured online",
    )
    serve.add_argument("--policy", default="crossroads",
                       help="vt-im | crossroads | aim | batch-crossroads")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411,
                       help="TCP port; 0 picks an ephemeral port "
                            "(printed on startup; default: 7411)")
    serve.add_argument("--http-port", type=int, default=None, metavar="PORT",
                       help="also serve GET /metrics (Prometheus text) and "
                            "/healthz on this port (0 for ephemeral)")
    serve.add_argument("--time-scale", type=float, default=1.0,
                       help="simulated seconds per wall second (default: 1)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="IM work-queue bound; requests beyond it are "
                            "shed with an AimReject (default: 64)")
    serve.add_argument("--safety-factor", type=float, default=2.0,
                       help="WC-RTD estimator safety multiplier (default: 2)")
    serve.add_argument("--static-wc-rtd", action="store_true",
                       help="keep the configured WC-RTD constant; report "
                            "the online estimate without applying it")
    serve.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="stop (drain + flush) after this wall time "
                            "(default: run until SIGINT/SIGTERM)")
    serve.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="flush the final metrics snapshot here on "
                            "shutdown (format by extension, like "
                            "'run --metrics')")
    _add_plugin_argument(serve)

    bench = sub.add_parser("bench", help="load-test harnesses")
    bench_sub = bench.add_subparsers(dest="bench_target", required=True)
    bserve = bench_sub.add_parser(
        "serve",
        help="open-loop rate sweep against a self-hosted serve-mode IM: "
             "sustained TPS, p99 RTD, overload degradation",
    )
    bserve.add_argument("--rate", type=float, nargs="+",
                        default=[40.0, 120.0, 800.0], metavar="TPS",
                        help="wall transactions/sec to sweep "
                             "(default: 40 120 800)")
    bserve.add_argument("--duration", type=float, default=2.0,
                        metavar="SECONDS",
                        help="wall seconds of sending per rate (default: 2)")
    bserve.add_argument("--policy", default="crossroads")
    bserve.add_argument("--time-scale", type=float, default=10.0,
                        help="simulated seconds per wall second "
                             "(default: 10; capacity ~ time_scale / 30 ms)")
    bserve.add_argument("--max-queue", type=int, default=64)
    bserve.add_argument("--out", metavar="FILE", default=None,
                        help="write the BENCH_serve-style JSON payload here")

    scen = sub.add_parser("scenarios", help="Fig 7.1: the 10 scale-model cases")
    scen.add_argument("--repeats", type=int, default=3)
    scen.add_argument("--policies", nargs="+", default=["vt-im", "crossroads"])

    sub.add_parser("buffer", help="Ch 3: safety-buffer estimation experiment")
    sub.add_parser("info", help="library, policies and testbed constants")

    pol = sub.add_parser("policies", help="list registered IM policies")
    _add_plugin_argument(pol)
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """The workload knobs shared by ``run`` and ``trace``."""
    parser.add_argument("--policy", default="crossroads",
                        help="vt-im | crossroads | aim | batch-crossroads")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--scenario", type=int, metavar="N",
                       help="scale-model scenario number 1..10")
    group.add_argument("--flow", type=float, metavar="RATE",
                       help="Poisson flow, cars/lane/second")
    parser.add_argument("--cars", type=int, default=20,
                        help="vehicles for --flow")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="fault-injection spec, e.g. 'burst,spike', "
                             "'chaos', 'spike=0.1:0.05:0.4,blackout=40:45' "
                             "(see repro.faults.FaultConfig.from_spec); "
                             "runs are replayable: same --seed + same spec "
                             "=> identical fault trace and metrics")


def _build_workload(args):
    """Resolve the shared workload args.

    Returns ``(status, arrivals, label, config, fault_config)``;
    ``status`` is 0 on success, 2 (argparse's usage-error code) when
    the arguments were invalid (an error was already printed).
    """
    from repro.faults import FaultConfig
    from repro.sim.world import WorldConfig
    from repro.traffic import PoissonTraffic, scale_model_scenarios

    config = None
    fault_config = None
    if args.faults is not None:
        try:
            fault_config = FaultConfig.from_spec(args.faults)
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2, None, None, None, None
        config = WorldConfig(faults=fault_config)

    if args.flow is not None:
        arrivals = PoissonTraffic(args.flow, seed=args.seed).generate(args.cars)
        label = f"flow {args.flow} car/lane/s, {args.cars} cars"
    else:
        number = args.scenario if args.scenario is not None else 1
        if not 1 <= number <= 10:
            print("scenario must be 1..10", file=sys.stderr)
            return 2, None, None, None, None
        scenario = scale_model_scenarios()[number - 1]
        arrivals = scenario.arrivals
        label = f"scenario {scenario.name}"
    return 0, arrivals, label, config, fault_config


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="attach the streaming-metrics registry and export its "
             "snapshot to FILE (format by extension: .prom/.txt "
             "Prometheus text, .csv per-bucket series, .jsonl)")


def _make_registry(args):
    """The registry for a ``--metrics FILE`` flag (None when unset)."""
    if getattr(args, "metrics", None) is None:
        return None
    from repro.obs import MetricsRegistry

    return MetricsRegistry()


def _export_metrics(snapshot, path: str) -> None:
    """Write ``snapshot`` to ``path``, format chosen by extension
    (Prometheus text when unrecognised)."""
    from repro.obs import metrics_to_csv, metrics_to_jsonl, to_prometheus

    if path.endswith(".csv"):
        metrics_to_csv(snapshot, path=path)
    elif path.endswith(".jsonl"):
        metrics_to_jsonl(snapshot, path=path)
    else:
        with open(path, "w") as handle:
            handle.write(to_prometheus(snapshot))


def _add_plugin_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--plugin", action="append", default=[], metavar="MODULE",
        help="import MODULE first so its policy registrations are available "
             "(repeatable), e.g. --plugin examples.custom_policy")


def _load_plugins(modules: List[str]) -> int:
    """Import plugin modules for their registration side effects.

    Returns 0 on success, 2 (the argparse usage-error convention) if any
    module fails to import.
    """
    import importlib

    for module in modules:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            print(f"cannot import plugin {module!r}: {exc}", file=sys.stderr)
            return 2
    return 0


# -- commands -----------------------------------------------------------------

def _cmd_run(args) -> int:
    from repro.analysis import render_table
    from repro.sim import run_scenario

    status = _load_plugins(args.plugin)
    if status:
        return status
    status, arrivals, label, config, fault_config = _build_workload(args)
    if status:
        return status

    log = None
    if args.trace is not None:
        from repro.obs import EventLog

        log = EventLog()
    registry = _make_registry(args)
    result = run_scenario(
        args.policy, arrivals, config=config, seed=args.seed, obs=log,
        metrics=registry,
    )
    print(f"{args.policy} on {label}")
    if fault_config is not None:
        print(f"faults: {fault_config.describe()} (seed {args.seed})")
    print()
    rows = [
        [f"V{r.vehicle_id}", r.movement_key, r.spawn_time, r.delay,
         r.requests_sent, r.came_to_stop]
        for r in sorted(result.records, key=lambda r: r.vehicle_id)
    ]
    print(render_table(
        ["vehicle", "movement", "spawn (s)", "wait (s)", "requests", "stopped"],
        rows, precision=2,
    ))
    print(f"\navg wait {result.average_delay:.3f} s | throughput "
          f"{result.throughput:.3f} | messages {result.messages_sent} | "
          f"IM compute {result.compute_time:.2f} s | safe {result.safe}")
    losses = ", ".join(
        f"{reason}={n}" for reason, n in result.losses_by_reason.items()
    ) or "none"
    print(f"losses by reason: {losses} | "
          f"dup dropped {result.duplicates_dropped}")
    if fault_config is not None:
        injected = ", ".join(
            f"{kind}={n}" for kind, n in result.fault_injections.items()
        ) or "none"
        print(
            f"robustness: finished {result.n_finished}/{len(result.records)} | "
            f"stale rejected {result.stale_rejected} | "
            f"deadline misses {result.deadline_misses} | "
            f"retries {result.retries} | "
            f"degraded {result.degraded_time:.2f} s "
            f"({result.degraded_entries} entries) | "
            f"invalidations {result.reservation_invalidations} | "
            f"stale reqs dropped {result.stale_requests_dropped}"
        )
        print(f"injected: {injected}")
    if args.perf and result.perf:
        print("\nperf counters (repro.perf):")
        for name, value in sorted(result.perf.items()):
            print(f"  {name:28s} {value:.6g}")
    if log is not None:
        from repro.obs import to_chrome_trace

        to_chrome_trace(log.events, path=args.trace)
        print(f"\ntrace: {len(log)} events -> {args.trace} "
              f"(open at https://ui.perfetto.dev)")
        _print_span_stats(result.obs)
    if registry is not None:
        _export_metrics(result.metrics, args.metrics)
        print(f"metrics: {len(registry)} series -> {args.metrics}")
    return 0 if result.safe else 1


def _print_span_stats(stats) -> None:
    if not stats:
        return
    print(
        "spans: {total:.0f} total, {complete:.0f} complete, "
        "{retried:.0f} retried | RTD p50 {p50:.1f} ms, p95 {p95:.1f} ms, "
        "max {mx:.1f} ms | IM compute p95 {cp95:.1f} ms".format(
            total=stats["spans_total"],
            complete=stats["spans_complete"],
            retried=stats["spans_retried"],
            p50=stats["rtd_p50_s"] * 1000,
            p95=stats["rtd_p95_s"] * 1000,
            mx=stats["rtd_max_s"] * 1000,
            cp95=stats["compute_p95_s"] * 1000,
        )
    )


def _cmd_trace(args) -> int:
    from repro.obs import EventLog, to_chrome_trace, to_jsonl
    from repro.sim import run_scenario

    status = _load_plugins(args.plugin)
    if status:
        return status
    status, arrivals, label, config, fault_config = _build_workload(args)
    if status:
        return status

    log = EventLog(kernel=args.kernel)
    result = run_scenario(
        args.policy, arrivals, config=config, seed=args.seed, obs=log
    )
    print(f"{args.policy} on {label} (traced)")
    if fault_config is not None:
        print(f"faults: {fault_config.describe()} (seed {args.seed})")
    to_chrome_trace(log.events, path=args.out)
    print(f"trace: {len(log)} events ({log.dropped} evicted) -> {args.out} "
          f"(open at https://ui.perfetto.dev)")
    if args.jsonl is not None:
        to_jsonl(log.events, path=args.jsonl)
        print(f"jsonl: {args.jsonl}")
    _print_span_stats(result.obs)
    machines = {
        k: v for k, v in result.perf.items() if k.startswith("count.machine.")
    }
    if machines:
        print("\nper-machine counters:")
        for name, value in sorted(machines.items()):
            print(f"  {name:44s} {value:.6g}")
    return 0 if result.safe else 1


def _cmd_sweep(args) -> int:
    from repro.analysis import flow_sweep_rows, render_table, speedup_summary

    status = _load_plugins(args.plugin)
    if status:
        return status
    if args.engine == "analytic":
        from repro.geometry import ConflictTable, IntersectionGeometry
        from repro.sim import run_analytic
        from repro.sim.flowsweep import FlowPoint
        from repro.traffic import PoissonTraffic

        geometry = IntersectionGeometry()
        conflicts = ConflictTable(geometry)
        sweep = {}
        for policy in args.policies:
            points = []
            for flow in args.flows:
                arrivals = PoissonTraffic(
                    flow, seed=args.seed + int(flow * 1000)
                ).generate(args.cars)
                result = run_analytic(
                    policy, arrivals, geometry=geometry, conflicts=conflicts
                )
                points.append(FlowPoint(policy=result.policy, flow_rate=flow,
                                        result=result))
            sweep[points[0].policy] = points
    else:
        from repro.sim import run_flow_sweep

        sweep = run_flow_sweep(
            policies=args.policies, flow_rates=args.flows,
            n_cars=args.cars, seed=args.seed, jobs=args.jobs,
        )

    headers, rows = flow_sweep_rows(sweep)
    print(render_table(headers, rows, precision=4))
    if "crossroads" in sweep and len(sweep) > 1:
        print("\nCrossroads advantage:")
        for baseline, stats in speedup_summary(sweep, subject="crossroads").items():
            print(f"  vs {baseline:12s} worst {stats['worst_case']:.2f}X, "
                  f"avg {stats['average']:.2f}X")
    if getattr(args, "perf", False):
        from repro.perf import merge_snapshots

        snapshots = [
            point.result.perf
            for points in sweep.values()
            for point in points
            if getattr(point.result, "perf", None)
        ]
        merged = merge_snapshots(snapshots)
        if merged:
            print("\nperf counters (merged over "
                  f"{len(snapshots)} sweep cells):")
            for name, value in sorted(merged.items()):
                print(f"  {name:44s} {value:.6g}")
        else:
            print("\nperf counters: none recorded "
                  "(the analytic engine keeps no perf state)")
    return 0


def _cmd_grid(args) -> int:
    from repro.analysis import render_table
    from repro.grid import GridSpec, corridor_spec, run_grid, sweep_grid

    status = _load_plugins(args.plugin)
    if status:
        return status
    spec_file = args.grid if args.grid is not None else args.spec
    try:
        if spec_file is not None:
            spec = GridSpec.from_file(spec_file)
            label = f"spec {spec_file}"
        else:
            spec = corridor_spec(
                args.nodes,
                link_length=args.link_length,
                policy=args.policy,
                policies=args.policies,
            )
            label = f"{args.nodes}-node corridor"
    except (ValueError, OSError) as exc:
        print(f"bad grid spec: {exc}", file=sys.stderr)
        return 2
    if args.save_spec is not None:
        spec.to_json(args.save_spec)
        print(f"spec -> {args.save_spec}")

    if args.seeds is not None:
        if args.metrics is not None:
            print("--metrics applies to single corridor runs, not --seeds "
                  "replication", file=sys.stderr)
            return 2
        cells = sweep_grid(
            spec, args.cars, seeds=args.seeds, flow_rate=args.flow,
            jobs=args.jobs,
        )
        headers = ["seed", "completed", "avg corridor (s)", "avg wait (s)",
                   "handoffs", "delayed", "collisions"]
        rows = [
            [c["seed"], c["summary"]["completed"],
             c["summary"]["avg_corridor_time_s"],
             c["summary"]["avg_delay_s"], c["summary"]["handoffs"],
             c["summary"]["handoffs_delayed"], c["summary"]["collisions"]]
            for c in cells
        ]
        print(f"{label}: {len(spec)} nodes, flow {args.flow}, "
              f"{args.cars} cars x {len(args.seeds)} seeds")
        print(render_table(headers, rows, precision=3))
        return 0 if all(
            c["summary"]["collisions"] == 0 for c in cells
        ) else 1

    log = None
    if args.trace is not None:
        from repro.obs import EventLog

        log = EventLog()
    registry = _make_registry(args)
    result = run_grid(
        spec, args.cars, flow_rate=args.flow, seed=args.seed, obs=log,
        metrics=registry,
    )
    print(f"{label}: flow {args.flow} car/lane/s, {args.cars} cars, "
          f"seed {args.seed}\n")
    rows = []
    for name, node in result.per_node.items():
        rows.append([
            name, node.policy, node.n_finished, node.average_delay,
            node.messages_sent, node.compute_time, node.collisions,
        ])
    print(render_table(
        ["node", "policy", "served", "avg wait (s)", "messages",
         "IM compute (s)", "collisions"],
        rows, precision=3,
    ))
    summary = result.summary()
    print(f"\ncorridor: {result.n_completed}/{result.n_vehicles} trips "
          f"complete | avg corridor time {summary['avg_corridor_time_s']:.3f} s | "
          f"avg wait {summary['avg_delay_s']:.3f} s | "
          f"handoffs {result.handoffs} ({result.handoffs_delayed} delayed, "
          f"{result.handoff_wait_s:.2f} s waiting) | safe {result.safe}")
    if log is not None:
        from repro.obs import to_chrome_trace

        to_chrome_trace(log.events, path=args.trace)
        print(f"\ntrace: {len(log)} events -> {args.trace} "
              f"(open at https://ui.perfetto.dev)")
        _print_span_stats(result.obs)
    if registry is not None:
        _export_metrics(result.metrics, args.metrics)
        print(f"metrics: {len(registry)} series -> {args.metrics}")
    return 0 if result.safe else 1


def _cmd_metrics(args) -> int:
    from repro.analysis import render_table
    from repro.obs import MetricsRegistry
    from repro.sim import run_scenario

    status = _load_plugins(args.plugin)
    if status:
        return status
    status, arrivals, label, config, fault_config = _build_workload(args)
    if status:
        return status
    try:
        registry = MetricsRegistry(bucket_dt=args.bucket)
    except ValueError as exc:
        print(f"bad --bucket: {exc}", file=sys.stderr)
        return 2

    result = run_scenario(
        args.policy, arrivals, config=config, seed=args.seed,
        metrics=registry,
    )
    print(f"{args.policy} on {label} (metered, bucket {args.bucket:g} s)")
    if fault_config is not None:
        print(f"faults: {fault_config.describe()} (seed {args.seed})")
    print()
    rows = [
        [name, f"{value:.6g}"]
        for name, value in sorted(registry.flat().items())
    ]
    print(render_table(["series", "value"], rows))
    print(f"\n{len(registry)} series over {result.sim_duration:.1f} "
          f"simulated seconds | safe {result.safe}")
    if args.out is not None:
        _export_metrics(result.metrics, args.out)
        print(f"metrics -> {args.out}")
    return 0 if result.safe else 1


def _cmd_fuzz(args) -> int:
    from repro.scenarios import fuzz, load_library, property_failures, run_spec

    if args.replay is not None:
        specs = load_library(args.replay)
        if not specs:
            print(f"no scenario specs under {args.replay}", file=sys.stderr)
            return 2
        bad = 0
        for spec in specs:
            outcome = run_spec(spec)
            status = "ok" if outcome.matches_expectation else "MISMATCH"
            if not outcome.matches_expectation or property_failures(outcome):
                bad += 1
            print(f"  {status:8s} {spec.name}: {outcome}")
        print(f"\nreplayed {len(specs)} scenario(s), {bad} failure(s)")
        return 0 if bad == 0 else 1

    report = fuzz(
        seed=args.seed,
        max_examples=args.examples,
        budget_s=args.budget,
        policies=args.policies,
        max_cars=args.max_cars,
        adversarial=not args.benign,
        out_dir=args.out,
        verbose=args.verbose,
    )
    print(f"draws: {report.draws} | interesting: {len(report.interesting)} | "
          f"property failures: {len(report.failures)}")
    for outcome in report.failures:
        print(f"  FAIL {outcome.spec.name}: {outcome} "
              f"(kinds: {', '.join(sorted(property_failures(outcome)))})")
    for path in report.saved:
        print(f"  saved {path}")
    return 0 if report.ok else 1


def _cmd_scenarios(args) -> int:
    from repro.analysis import render_table
    from repro.sim import run_scenario
    from repro.traffic import scale_model_scenarios

    rows = []
    for scenario in scale_model_scenarios():
        row = [scenario.name]
        for policy in args.policies:
            delays = [
                run_scenario(policy, scenario.arrivals, seed=100 + rep).average_delay
                for rep in range(args.repeats)
            ]
            row.append(float(np.mean(delays)))
        rows.append(row)
    headers = ["scenario"] + [f"{p} wait (s)" for p in args.policies]
    print(render_table(headers, rows, precision=2))
    return 0


def _cmd_buffer(_args) -> int:
    from repro.analysis import render_table
    from repro.sensors import SafetyBufferCalculator, worst_case_elong

    bound, up, down = worst_case_elong(trials=20, rng=np.random.default_rng(2017))
    print(render_table(
        ["profile", "mean Elong (mm)", "max |Elong| (mm)"],
        [
            ["0.1 -> 3.0 m/s", up.mean_elong * 1000, up.max_abs_elong * 1000],
            ["3.0 -> 0.1 m/s", down.mean_elong * 1000, down.max_abs_elong * 1000],
        ],
        precision=1,
    ))
    b = SafetyBufferCalculator(elong=bound).breakdown()
    print(f"\nElong bound {bound * 1000:.1f} mm (paper: 75 mm); "
          f"base buffer {b.base * 1000:.1f} mm; VT-IM total {b.total:.3f} m")
    return 0


def _cmd_info(_args) -> int:
    import repro
    from repro.core.base import IMConfig
    from repro.core.registry import available_policies, extension_policies
    import repro.core.policy  # noqa: F401  (registers the built-ins)

    config = IMConfig()
    print(f"repro {repro.__version__} — Crossroads reproduction (DAC 2017)")
    print(f"policies   : {', '.join(available_policies())}")
    print(f"extensions : {', '.join(extension_policies())}")
    print(f"WC-RTD     : {config.wc_rtd * 1000:.0f} ms")
    print(f"base buffer: {config.base_buffer * 1000:.0f} mm")
    print(f"RTD buffer : {config.wc_rtd * config.v_max:.2f} m (VT-IM only)")
    return 0


def _cmd_policies(args) -> int:
    from repro.analysis import render_table
    from repro.core import registry
    import repro.core.policy  # noqa: F401  (registers the built-ins)

    status = _load_plugins(args.plugin)
    if status:
        return status
    rows = []
    for spec in registry.iter_policies():
        rows.append([
            spec.name + (" (ext)" if spec.extension else ""),
            ", ".join(spec.aliases) or "-",
            spec.im_name,
            spec.vehicle_cls.__name__,
            spec.doc,
        ])
    print(render_table(
        ["policy", "aliases", "IM", "vehicle", "description"], rows
    ))
    print("\nResolve any name/alias with --policy; plugins register via "
          "repro.core.registry.register_policy (see README 'Adding a new "
          "policy').")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import ImServer, ServeConfig

    status = _load_plugins(args.plugin)
    if status:
        return status
    config = ServeConfig(
        policy=args.policy,
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        time_scale=args.time_scale,
        max_queue=args.max_queue,
        safety_factor=args.safety_factor,
        apply_estimate=not args.static_wc_rtd,
    )

    async def _serve() -> int:
        server = ImServer(config)
        await server.start()
        line = (
            f"serving {config.policy} IM on tcp {config.host}:{server.port}"
            f" (time scale {config.time_scale:g}x, queue bound "
            f"{config.max_queue})"
        )
        if server.http_port is not None:
            line += f"; metrics on http://{config.host}:{server.http_port}/metrics"
        print(line, flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # e.g. Windows event loops; KeyboardInterrupt still works
        if args.duration is not None:
            loop.call_later(args.duration, server.request_shutdown)
        try:
            await server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - handler fallback
            await server.shutdown()
        if args.metrics_out:
            _export_metrics(server.metrics.snapshot(), args.metrics_out)
            print(f"metrics snapshot -> {args.metrics_out}", flush=True)
        stats = server.im.stats
        print(
            f"serve: drained and stopped; {stats.crossing_requests} requests"
            f" ({stats.accepts} accepts, {stats.rejects} rejects,"
            f" {stats.exits} exits), wc-rtd estimate"
            f" {server.wc_rtd_estimate() * 1000.0:.1f} ms"
            f" ({server.estimator.count} ack samples)",
            flush=True,
        )
        return 0

    return asyncio.run(_serve())


def _cmd_bench(args) -> int:
    import json

    from repro.serve import bench_serve

    payload = bench_serve(
        rates=tuple(args.rate),
        duration_s=args.duration,
        policy=args.policy,
        time_scale=args.time_scale,
        max_queue=args.max_queue,
    )
    print(f"{'rate':>8} {'sent':>6} {'tps':>8} {'p50 ms':>8} {'p99 ms':>8} "
          f"{'rejects':>8} {'timeouts':>9}")
    for report in payload["sweep"].values():
        print(f"{report['rate']:>8g} {report['sent']:>6d} "
              f"{report['tps']:>8.1f} "
              f"{report['rtd_p50_wall_s'] * 1000.0:>8.2f} "
              f"{report['rtd_p99_wall_s'] * 1000.0:>8.2f} "
              f"{report['rejects']:>8d} {report['timeouts']:>9d}")
    overload = payload["overload"]
    print(f"overload: {overload['rejects']} shed "
          f"(by_reason['overload']), peak backlog "
          f"{overload['peak_backlog']}, alive after: "
          f"{overload['alive_after_overload']}")
    server_info = payload["server"]
    print(f"wc-rtd estimate: {server_info['wc_rtd_estimate_s'] * 1000.0:.1f} ms "
          f"({server_info['rtd_samples']} ack samples, worst service "
          f"{server_info['worst_service_s'] * 1000.0:.1f} ms)")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"bench payload -> {args.out}")
    return 0 if overload["alive_after_overload"] else 1


_COMMANDS = {
    "run": _cmd_run,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "sweep": _cmd_sweep,
    "grid": _cmd_grid,
    "metrics": _cmd_metrics,
    "fuzz": _cmd_fuzz,
    "scenarios": _cmd_scenarios,
    "buffer": _cmd_buffer,
    "info": _cmd_info,
    "policies": _cmd_policies,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
