"""Lightweight performance instrumentation (timers + counters).

The ROADMAP's north star is "as fast as the hardware allows"; this
module is how speedups are *measured* instead of asserted.  A
:class:`PerfCounters` instance holds

* **counters** — monotonically increasing integers (DES events
  processed, tile cells tested, footprint-cache hits/misses, cells
  purged, ...);
* **timers** — accumulated wall-clock seconds per named subsystem,
  measured with :func:`time.perf_counter` via the :meth:`~PerfCounters.timer`
  context manager.

Everything is plain dictionaries of floats, so snapshots are picklable
(they travel back from :mod:`repro.sim.parallel` worker processes),
mergeable across runs, and JSON-serialisable for the benchmark
artefacts (``BENCH_parallel.json``).

Wall-clock numbers vary run to run, so perf snapshots are deliberately
kept **out of** :meth:`repro.sim.metrics.SimResult.summary` — parallel
and serial executions of the same seeds must stay bit-identical on the
scientific metrics while still reporting their own timings here.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["PerfCounters", "hit_rate", "merge_snapshots"]


def hit_rate(hits: float, misses: float) -> float:
    """Cache hit rate in [0, 1]; 0.0 when the cache was never consulted."""
    total = hits + misses
    return hits / total if total > 0 else 0.0


class PerfCounters:
    """Named monotonic counters and accumulated wall-clock timers."""

    __slots__ = ("counts", "times")

    def __init__(
        self,
        counts: Optional[Dict[str, float]] = None,
        times: Optional[Dict[str, float]] = None,
    ):
        #: name -> cumulative count.
        self.counts: Dict[str, float] = dict(counts or {})
        #: name -> cumulative wall seconds.
        self.times: Dict[str, float] = dict(times or {})

    # -- counters ----------------------------------------------------------
    def incr(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use).

        Counters are documented as monotonic: a negative increment
        would silently corrupt merged snapshots, so it is rejected.
        """
        if n < 0:
            raise ValueError(f"counter increments must be non-negative, got {n!r}")
        self.counts[name] = self.counts.get(name, 0) + n

    def count(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counts.get(name, 0)

    # -- timers ------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time under ``name``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.times[name] = self.times.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager accumulating the enclosed wall time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def time_of(self, name: str) -> float:
        """Accumulated seconds under ``name`` (0.0 when never timed)."""
        return self.times.get(name, 0.0)

    # -- aggregation -------------------------------------------------------
    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Fold ``other``'s counters and timers into self (returns self)."""
        for name, value in other.counts.items():
            self.incr(name, value)
        for name, value in other.times.items():
            self.add_time(name, value)
        return self

    def hit_rate(self, hits: str, misses: str) -> float:
        """Hit rate of a hits/misses counter pair."""
        return hit_rate(self.count(hits), self.count(misses))

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{"count.<name>": .., "time.<name>_s": ..}`` dict.

        The flat form is what rides on ``SimResult.perf``, prints in the
        CLI and lands in benchmark JSON files.
        """
        out: Dict[str, float] = {}
        for name in sorted(self.counts):
            out[f"count.{name}"] = float(self.counts[name])
        for name in sorted(self.times):
            out[f"time.{name}_s"] = float(self.times[name])
        return out

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, float]) -> "PerfCounters":
        """Rebuild counters/timers from a :meth:`snapshot` dict.

        Keys outside the ``count.`` / ``time.*_s`` scheme (derived
        ratios such as ``tile_cache_hit_rate``) are skipped — they are
        not additive and must be recomputed after a merge.
        """
        counters = cls()
        for key, value in snapshot.items():
            if key.startswith("count."):
                counters.incr(key[len("count."):], float(value))
            elif key.startswith("time.") and key.endswith("_s"):
                counters.add_time(key[len("time."):-len("_s")], float(value))
        return counters

    def reset(self) -> None:
        """Zero every counter and timer."""
        self.counts.clear()
        self.times.clear()

    def __repr__(self) -> str:
        return (
            f"PerfCounters(counts={len(self.counts)}, timers={len(self.times)})"
        )


def merge_snapshots(snapshots: "list[Dict[str, float]]") -> Dict[str, float]:
    """Fold flat :meth:`PerfCounters.snapshot` dicts from several runs
    (e.g. parallel workers or sweep cells) into one combined snapshot.

    Only additive ``count.`` / ``time.*_s`` keys participate; derived
    ratios are dropped (recompute them from the merged counters).
    """
    merged = PerfCounters()
    for snapshot in snapshots:
        merged.merge(PerfCounters.from_snapshot(snapshot))
    return merged.snapshot()
