"""Traffic generation: Poisson flows and the 10 scale-model scenarios.

The Matlab evaluation (Fig 7.2) sweeps Poisson input flows of
0.05-1.25 cars/lane/second routing 160 cars; the scale-model
evaluation (Fig 7.1) runs 10 five-vehicle scenarios where Scenario 1
is the engineered worst case (simultaneous arrivals on all approaches)
and Scenario 10 the engineered best case (arrivals so sparse that the
buffers never interact).
"""

from repro.traffic.generator import Arrival, PoissonTraffic, TurnMix
from repro.traffic.scenarios import Scenario, scale_model_scenarios

__all__ = [
    "Arrival",
    "PoissonTraffic",
    "Scenario",
    "TurnMix",
    "scale_model_scenarios",
]
