"""Random traffic generation.

:class:`PoissonTraffic` draws per-approach Poisson arrival processes at
a given flow (cars/lane/second), assigns each vehicle a turn from a
:class:`TurnMix` and an entry speed, and enforces a same-lane minimum
headway so vehicles do not spawn inside each other (a physical
transmission line cannot be crossed by two cars at once either).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geometry.layout import Approach, Movement, Turn
from repro.vehicle.spec import VehicleSpec

__all__ = ["Arrival", "PoissonTraffic", "TurnMix"]


@dataclass(frozen=True)
class Arrival:
    """One vehicle's appearance at the transmission line."""

    time: float
    movement: Movement
    speed: float
    spec: VehicleSpec = field(default_factory=VehicleSpec)

    def __post_init__(self):
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if not 0 < self.speed <= self.spec.v_max + 1e-9:
            raise ValueError("speed must be in (0, v_max]")


@dataclass(frozen=True)
class TurnMix:
    """Probability of each turn (must sum to 1)."""

    left: float = 0.25
    straight: float = 0.50
    right: float = 0.25

    def __post_init__(self):
        if min(self.left, self.straight, self.right) < 0:
            raise ValueError("probabilities must be non-negative")
        if abs(self.left + self.straight + self.right - 1.0) > 1e-9:
            raise ValueError("turn probabilities must sum to 1")

    def draw(self, rng: np.random.Generator) -> Turn:
        """Sample one turn."""
        r = rng.random()
        if r < self.left:
            return Turn.LEFT
        if r < self.left + self.straight:
            return Turn.STRAIGHT
        return Turn.RIGHT


class PoissonTraffic:
    """Poisson arrivals on every approach.

    Parameters
    ----------
    flow_rate:
        Cars per lane per second (the Fig 7.2 x-axis).
    turn_mix:
        Turn distribution.
    speed_range:
        Uniform entry-speed range, m/s.
    min_headway:
        Minimum same-lane arrival separation, seconds.
    spec:
        Vehicle spec given to every car.
    seed:
        Seed for reproducible workloads.
    """

    def __init__(
        self,
        flow_rate: float,
        turn_mix: Optional[TurnMix] = None,
        speed_range: Sequence[float] = (2.0, 3.0),
        min_headway: float = 0.5,
        spec: Optional[VehicleSpec] = None,
        seed: Optional[int] = None,
    ):
        if flow_rate <= 0:
            raise ValueError("flow_rate must be positive")
        if len(speed_range) != 2 or not 0 < speed_range[0] <= speed_range[1]:
            raise ValueError("speed_range must be (low, high) with 0 < low <= high")
        if min_headway < 0:
            raise ValueError("min_headway must be non-negative")
        self.flow_rate = flow_rate
        self.turn_mix = turn_mix if turn_mix is not None else TurnMix()
        self.speed_range = tuple(speed_range)
        self.min_headway = min_headway
        self.spec = spec if spec is not None else VehicleSpec()
        self.rng = np.random.default_rng(seed)

    def generate(self, n_cars: int) -> List[Arrival]:
        """Generate ``n_cars`` arrivals across the four approaches.

        Inter-arrival gaps per lane are exponential with the per-lane
        rate, floored at ``min_headway``; the global list is merged and
        time-sorted.
        """
        if n_cars < 1:
            raise ValueError("n_cars must be >= 1")
        # Each lane is an independent Poisson process at the per-lane
        # rate; generating n_cars per lane guarantees the merged stream
        # has at least n_cars, the earliest of which are kept.
        candidates: List[Arrival] = []
        for approach in Approach:
            t = 0.0
            for _ in range(n_cars):
                gap = self.rng.exponential(1.0 / self.flow_rate)
                t += max(float(gap), self.min_headway)
                turn = self.turn_mix.draw(self.rng)
                low, high = self.speed_range
                v_cap = min(high, self.spec.v_max)
                speed = float(self.rng.uniform(low, v_cap)) if v_cap > low else low
                candidates.append(
                    Arrival(
                        time=t,
                        movement=Movement(approach, turn),
                        speed=speed,
                        spec=self.spec,
                    )
                )
        candidates.sort(key=lambda a: a.time)
        return candidates[:n_cars]
