"""The ten scale-model traffic scenarios of Ch 7.1 / Fig 7.1.

The paper pre-designs two of the ten cases:

* **Scenario 1** — the VT-IM worst case: "all the cars arrive at the
  intersection at almost the same time", so the extra RTD buffer
  directly serialises them.
* **Scenario 10** — the best case: "the traffic is so sparse that the
  presence/absence of the safety buffer does not matter much".

Scenarios 2-9 use randomly selected orders and spacings, reproduced
here with fixed seeds so every run sees the same workloads.  Each
scenario routes five vehicles (the physical test of Fig 1.1 uses five
cars) at the 3 m/s testbed speed limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geometry.layout import Approach, Movement, Turn
from repro.traffic.generator import Arrival, TurnMix
from repro.vehicle.spec import VehicleSpec

__all__ = ["Scenario", "scale_model_scenarios"]


@dataclass(frozen=True)
class Scenario:
    """A named, fixed arrival list."""

    name: str
    arrivals: "tuple[Arrival, ...]"

    @property
    def n_vehicles(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        """Time of the last arrival."""
        return max(a.time for a in self.arrivals) if self.arrivals else 0.0


_APPROACH_CYCLE = [
    Approach.NORTH,
    Approach.EAST,
    Approach.SOUTH,
    Approach.WEST,
    Approach.NORTH,
]


def _worst_case(spec: VehicleSpec, n: int) -> Scenario:
    """Scenario 1: near-simultaneous arrivals on every approach."""
    arrivals = tuple(
        Arrival(
            time=0.01 * i,  # "almost the same time"
            movement=Movement(_APPROACH_CYCLE[i % len(_APPROACH_CYCLE)], Turn.STRAIGHT),
            speed=spec.v_max,
            spec=spec,
        )
        for i in range(n)
    )
    return Scenario(name="S1-worst", arrivals=arrivals)


def _best_case(spec: VehicleSpec, n: int, spacing: float = 4.0) -> Scenario:
    """Scenario 10: arrivals so sparse that buffers never interact."""
    arrivals = tuple(
        Arrival(
            time=spacing * i,
            movement=Movement(_APPROACH_CYCLE[i % len(_APPROACH_CYCLE)], Turn.STRAIGHT),
            speed=spec.v_max,
            spec=spec,
        )
        for i in range(n)
    )
    return Scenario(name="S10-best", arrivals=arrivals)


def _random_case(
    index: int, spec: VehicleSpec, n: int, rng: np.random.Generator
) -> Scenario:
    """Scenarios 2-9: random order and spacing over a short window."""
    mix = TurnMix()
    times = np.sort(rng.uniform(0.0, 2.5 * n / 4.0, size=n))
    approaches = rng.permutation(
        [_APPROACH_CYCLE[i % 4] for i in range(n)]
    )
    arrivals = []
    last_per_lane = {}
    for t, approach in zip(times, approaches):
        # Keep a physical same-lane headway.
        t = max(t, last_per_lane.get(approach, -1.0) + 0.6)
        last_per_lane[approach] = t
        arrivals.append(
            Arrival(
                time=float(t),
                movement=Movement(approach, mix.draw(rng)),
                speed=float(rng.uniform(2.0, spec.v_max)),
                spec=spec,
            )
        )
    arrivals.sort(key=lambda a: a.time)
    return Scenario(name=f"S{index}", arrivals=tuple(arrivals))


def scale_model_scenarios(
    n_vehicles: int = 5,
    spec: Optional[VehicleSpec] = None,
    seed: int = 2017,
) -> List[Scenario]:
    """The ten Fig 7.1 scenarios, S1 (worst) ... S10 (best)."""
    if n_vehicles < 1:
        raise ValueError("n_vehicles must be >= 1")
    spec = spec if spec is not None else VehicleSpec()
    rng = np.random.default_rng(seed)
    scenarios = [_worst_case(spec, n_vehicles)]
    for i in range(2, 10):
        scenarios.append(_random_case(i, spec, n_vehicles, rng))
    scenarios.append(_best_case(spec, n_vehicles))
    return scenarios
