"""The medium seam: attach / detach / transmit behind a protocol class.

:class:`Transport` is the only surface the simulation engines see of
the wireless medium.  The in-process :class:`~repro.network.channel.Channel`
is the default implementation (reached through
:func:`default_transport`, so engine/world/grid code never names it);
future deployments — sharded grids with per-shard bridges, an
IM-as-a-service socket fabric — implement the same three calls and
drop in underneath every existing world.

The accounting contract rides along: implementations expose ``stats``
shaped like :class:`~repro.network.channel.NetworkStats`, whose
``by_endpoint`` counters attribute the shared medium's traffic per
address — on a single-IM world ``by_endpoint[im] == sent``, the
identity the grid/world equivalence suite pins.
"""

from __future__ import annotations

import abc

__all__ = ["Transport", "default_transport"]


class Transport(abc.ABC):
    """Abstract medium: endpoints attach radios and transmit messages.

    Beyond the three abstract calls, implementations carry:

    ``env``
        The DES environment deliveries are scheduled on.
    ``stats``
        A :class:`~repro.network.channel.NetworkStats`-shaped counter
        object (global totals plus ``by_endpoint`` /
        ``bytes_by_endpoint`` / ``dupes_by_endpoint`` attribution).
    """

    @abc.abstractmethod
    def attach(self, address: str):
        """Create and register an endpoint; returns its radio."""

    @abc.abstractmethod
    def detach(self, address: str) -> None:
        """Remove an endpoint.

        Detaching never raises — not for an unknown address, and not
        when traffic to the endpoint is still in flight.  Messages
        addressed to a detached (or never-attached) endpoint are
        dropped silently and attributed to ``by_reason["no_route"]``
        in :attr:`stats`; senders observe only the missing reply.
        Both :class:`~repro.network.channel.Channel` and
        :class:`repro.serve.SocketTransport` honour this contract
        (pinned by the transport test suite).
        """

    @abc.abstractmethod
    def transmit(self, message) -> None:
        """Schedule delivery of ``message`` to its receiver."""


def default_transport(
    env,
    delay_model=None,
    loss_probability: float = 0.0,
    rng=None,
    faults=None,
    obs=None,
    metrics=None,
) -> Transport:
    """The stock in-process medium.

    Lazily imports the :class:`~repro.network.channel.Channel`
    implementation so the callers that must stay behind the seam
    (``repro.sim``, ``repro.grid`` — lint-enforced) never import it.
    """
    from repro.network.channel import Channel

    return Channel(
        env,
        delay_model=delay_model,
        loss_probability=loss_probability,
        rng=rng,
        faults=faults,
        obs=obs,
        metrics=metrics,
    )
