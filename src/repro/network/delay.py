"""One-way network delay models.

Each model exposes ``sample(rng)`` for the stochastic per-message delay
and ``worst_case`` for the bound the protocol designer assumes (the
"WC" in WC-RTD).  Samples are always clipped to ``worst_case`` because
the testbed's retransmit clause makes deliveries later than the bound
look like losses, which the channel models separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConstantDelay", "DelayModel", "GammaDelay", "UniformDelay"]


class DelayModel:
    """Base class for one-way delay models."""

    #: Worst-case one-way delay in seconds.
    worst_case: float

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay value in ``[0, worst_case]``."""
        raise NotImplementedError

    def _clip(self, value: float) -> float:
        return float(min(max(value, 0.0), self.worst_case))


@dataclass
class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` seconds."""

    delay: float

    def __post_init__(self):
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        self.worst_case = self.delay

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay


@dataclass
class UniformDelay(DelayModel):
    """Delay uniform in ``[low, high]``; ``high`` is the worst case."""

    low: float
    high: float

    def __post_init__(self):
        if not 0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")
        self.worst_case = self.high

    def sample(self, rng: np.random.Generator) -> float:
        return self._clip(rng.uniform(self.low, self.high))


@dataclass
class GammaDelay(DelayModel):
    """Gamma-distributed delay clipped at ``worst``.

    A right-skewed distribution is the usual empirical fit for wireless
    MAC delays: most packets are fast, a tail queues behind retries.

    Parameters
    ----------
    shape, scale:
        Gamma parameters; the mean is ``shape * scale``.
    worst:
        Hard clip / protocol bound.
    """

    shape: float
    scale: float
    worst: float

    def __post_init__(self):
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be positive")
        if self.worst <= 0:
            raise ValueError("worst must be positive")
        self.worst_case = self.worst

    def sample(self, rng: np.random.Generator) -> float:
        return self._clip(rng.gamma(self.shape, self.scale))


def testbed_delay_model() -> GammaDelay:
    """Delay model matching the testbed's NRF24L01+ measurements.

    The paper reports 15 ms worst-case *round-trip* network delay, i.e.
    7.5 ms one-way.  We use a gamma with ~2 ms mean and the 7.5 ms clip.
    """
    return GammaDelay(shape=2.0, scale=1.0e-3, worst=7.5e-3)
