"""V2I network substrate: messages, delay models, channels, radios.

The testbed used NRF24L01+ 2.4 GHz serial adapters with a measured
worst-case one-way delay of 7.5 ms (15 ms round trip).  We model the
medium as a :class:`Channel` that delivers messages to per-node
:class:`Radio` inboxes after a sampled delay, with optional loss.  All
traffic is counted by :class:`NetworkStats`, which feeds the Ch 7.2
"network overhead" comparison (AIM generates up to ~20X more messages
than Crossroads because of its re-request storms).
"""

from repro.network.channel import Channel, NetworkStats, Radio
from repro.network.transport import Transport, default_transport
from repro.network.delay import (
    ConstantDelay,
    DelayModel,
    GammaDelay,
    UniformDelay,
    testbed_delay_model,
)
from repro.network.messages import (
    Ack,
    AimAccept,
    AimReject,
    AimRequest,
    CancelReservation,
    CrossingRequest,
    CrossroadsCommand,
    ExitNotification,
    Message,
    SyncRequest,
    SyncResponse,
    VelocityCommand,
)

__all__ = [
    "Ack",
    "AimAccept",
    "AimReject",
    "AimRequest",
    "CancelReservation",
    "Channel",
    "ConstantDelay",
    "CrossingRequest",
    "CrossroadsCommand",
    "DelayModel",
    "ExitNotification",
    "GammaDelay",
    "Message",
    "NetworkStats",
    "Radio",
    "SyncRequest",
    "SyncResponse",
    "Transport",
    "UniformDelay",
    "VelocityCommand",
    "default_transport",
    "testbed_delay_model",
]
