"""Protocol message types exchanged between vehicles and the IM.

These mirror the packets described in the paper:

* ``SyncRequest`` / ``SyncResponse`` — the NTP exchange of the vehicle's
  *Sync* state (Ch 2).
* ``CrossingRequest`` — the VT-IM / Crossroads request carrying the
  transmission timestamp ``TT``, distance to intersection ``DT``,
  current velocity ``VC`` and the ``VehicleInfo`` packet (Ch 4, Ch 6).
* ``VelocityCommand`` — the plain VT-IM reply (a target velocity the
  vehicle executes *on receipt*).
* ``CrossroadsCommand`` — the time-sensitive reply ``(TE, ToA, VT)``
  executed exactly at ``TE`` (Ch 6).
* ``AimRequest`` / ``AimAccept`` / ``AimReject`` — the query-based AIM
  exchange: the vehicle proposes a time of arrival at its current speed
  and the IM answers yes/no (Ch 5.2).
* ``ExitNotification`` — the exit timestamp that lets the IM free the
  intersection and track per-vehicle wait time.
* ``Ack`` — link-level acknowledgement used to *measure* network delay
  (Ch 4).

Sizes are representative on-air byte counts used only for the network
overhead metric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Ack",
    "AimAccept",
    "AimReject",
    "AimRequest",
    "CancelReservation",
    "CrossingRequest",
    "CrossroadsCommand",
    "ExitNotification",
    "Message",
    "SyncRequest",
    "SyncResponse",
    "VelocityCommand",
]

_seq = itertools.count(1)


@dataclass
class Message:
    """Base class: addressing plus a unique sequence number."""

    sender: str
    receiver: str
    seq: int = field(default_factory=lambda: next(_seq), init=False)
    #: Correlation id tying the message to one request/response
    #: exchange for observability (the request's ``seq``; 0 when the
    #: message belongs to no exchange).  Set by attribute assignment —
    #: :class:`~repro.protocol.loop.RequestLoop` mints it on requests,
    #: the IM echoes it onto replies.
    corr: int = field(default=0, init=False)

    #: Representative on-air size in bytes (header only for the base).
    SIZE = 8

    @property
    def size(self) -> int:
        """On-air size in bytes (class constant)."""
        return self.SIZE


@dataclass
class SyncRequest(Message):
    """NTP request; ``t0`` is the client clock at transmission."""

    t0: float = 0.0
    SIZE = 16


@dataclass
class SyncResponse(Message):
    """NTP reply; echoes ``t0`` and adds server receive/send stamps."""

    t0: float = 0.0
    t1: float = 0.0
    t2: float = 0.0
    SIZE = 32


@dataclass
class CrossingRequest(Message):
    """VT-IM / Crossroads entrance request.

    Attributes
    ----------
    tt:
        Transmission timestamp on the *vehicle's* (synced) clock.
    dt:
        Distance to the intersection stop line, metres.
    vc:
        Current velocity, m/s.
    vehicle_info:
        The ``VehicleInfo`` packet (a :class:`repro.vehicle.VehicleSpec`
        plus movement), opaque to the network layer.
    """

    tt: float = 0.0
    dt: float = 0.0
    vc: float = 0.0
    vehicle_info: Any = None
    SIZE = 48


@dataclass
class VelocityCommand(Message):
    """Plain VT-IM reply: target velocity ``vt``, executed on receipt."""

    vt: float = 0.0
    toa: float = 0.0
    #: seq of the request this answers (stale replies are discarded).
    in_reply_to: int = 0
    SIZE = 24


@dataclass
class CrossroadsCommand(Message):
    """Time-sensitive reply: actuate at ``te``, arrive at ``toa``."""

    te: float = 0.0
    toa: float = 0.0
    vt: float = 0.0
    #: seq of the request this answers (stale replies are discarded).
    in_reply_to: int = 0
    SIZE = 32


@dataclass
class AimRequest(Message):
    """Query-based request: "may I arrive at ``toa`` at speed ``vc``?".

    ``accelerate`` marks a launch-from-stop proposal: at time ``toa``
    the vehicle starts accelerating at its ``a_max`` toward ``v_max``
    from rest, ``standoff`` metres before the stop line (AIM vehicles
    that were forced to stop propose this; for launch proposals ``toa``
    is the *launch* time, not the line-crossing time).
    """

    toa: float = 0.0
    vc: float = 0.0
    vehicle_info: Any = None
    accelerate: bool = False
    standoff: float = 0.0
    SIZE = 48


@dataclass
class AimAccept(Message):
    """Reservation confirmed for the proposed ``toa``/``vc``."""

    toa: float = 0.0
    vc: float = 0.0
    #: seq of the request this answers (stale replies are discarded).
    in_reply_to: int = 0
    SIZE = 16


@dataclass
class AimReject(Message):
    """Reservation denied; the vehicle slows down and re-requests."""

    #: seq of the request this answers (stale replies are discarded).
    in_reply_to: int = 0
    SIZE = 12


@dataclass
class CancelReservation(Message):
    """Withdraw a previously granted slot/reservation.

    Sent when a vehicle abandons its committed plan (e.g. it is stuck
    behind a slower leader and must renegotiate) so the IM can free the
    slot immediately instead of letting a ghost reservation block
    cross traffic.  AIM's original protocol (Dresner & Stone 2008) has
    an equivalent CANCEL message.
    """

    SIZE = 12


@dataclass
class ExitNotification(Message):
    """Sent when the vehicle clears the intersection box."""

    exit_time: float = 0.0
    SIZE = 16


@dataclass
class Ack(Message):
    """Link-level acknowledgement of message ``acked_seq``."""

    acked_seq: int = 0
    SIZE = 10
