"""Shared wireless channel and per-node radios.

The :class:`Channel` is the medium; each node owns a :class:`Radio`
registered under a unique address.  ``radio.send(msg)`` hands the message
to the channel, which delivers it into the destination radio's inbox
after a delay drawn from the channel's :class:`~repro.network.delay.DelayModel`
(unless the message is lost).  Receiving is a blocking DES ``get`` on the
inbox store.

The channel also keeps :class:`NetworkStats` — message and byte counters
per message type — which the Ch 7.2 overhead comparison reads.  Losses
are attributed per reason (``by_reason``): random ``channel`` loss,
injected ``burst``/``blackout`` faults, and ``no_route`` for messages
addressed to a detached or never-attached radio — previously all three
were conflated into one counter.

A :class:`~repro.faults.FaultInjector` may be attached to overlay
correlated bursts, out-of-bound delay spikes, duplication and
reordering on top of the base loss/delay models.  The injector draws
from its *own* RNG stream, so a null injector leaves the channel's
random sequence — and therefore the whole simulation — bit-identical
to the fault-free path.  Radios de-duplicate deliveries by sequence
number (a bounded recent-seq window), so injected duplicates are
counted and dropped instead of re-entering the protocol machines.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.des import Environment, Event, Store
from repro.network.delay import ConstantDelay, DelayModel
from repro.network.messages import Message
from repro.network.transport import Transport
from repro.obs.events import NULL_LOG

__all__ = ["Channel", "NetworkStats", "Radio"]


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one channel."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    bytes_sent: int = 0
    by_type: Counter = field(default_factory=Counter)
    #: Loss/drop attribution: "channel" (i.i.d. loss), "burst"
    #: (Gilbert–Elliott), "blackout" (scripted window), "no_route"
    #: (detached/unknown receiver), "duplicate" (receiver-side dedup).
    by_reason: Counter = field(default_factory=Counter)
    #: Per-endpoint attribution: sent messages / bytes / dedup drops
    #: keyed by participating address.  Every message increments both
    #: its sender's and its receiver's bucket, so on a *shared* medium
    #: carrying several intersection managers (the corridor grid) the
    #: traffic involving one IM is simply ``by_endpoint[im_address]``.
    #: On a single-IM world every message involves the IM, making
    #: ``by_endpoint[im] == sent`` — the grid/world equivalence test
    #: relies on that identity.
    by_endpoint: Counter = field(default_factory=Counter)
    bytes_by_endpoint: Counter = field(default_factory=Counter)
    dupes_by_endpoint: Counter = field(default_factory=Counter)
    #: Extra copies injected by the fault layer.
    duplicates_injected: int = 0
    #: Copies dropped by receiver-side dedup (not counted in ``lost``:
    #: the original was delivered).
    duplicates_dropped: int = 0

    def record_send(self, message: Message) -> None:
        self.sent += 1
        self.bytes_sent += message.size
        self.by_type[type(message).__name__] += 1
        for endpoint in (message.sender, message.receiver):
            self.by_endpoint[endpoint] += 1
            self.bytes_by_endpoint[endpoint] += message.size

    def record_delivery(self) -> None:
        self.delivered += 1

    def record_loss(self, reason: str = "channel") -> None:
        self.lost += 1
        self.by_reason[reason] += 1

    def record_duplicate_injected(self) -> None:
        self.duplicates_injected += 1

    def record_duplicate_dropped(self, message: Optional[Message] = None) -> None:
        self.duplicates_dropped += 1
        self.by_reason["duplicate"] += 1
        if message is not None:
            for endpoint in (message.sender, message.receiver):
                self.dupes_by_endpoint[endpoint] += 1


class Radio:
    """A network endpoint with an address and a FIFO inbox.

    The radio remembers the last :attr:`DEDUP_WINDOW` delivered
    sequence numbers and refuses re-deliveries — the receiver-side
    half of duplicate suppression (fault-injected copies carry the
    *same* seq; protocol retransmissions are new messages with new
    seqs and pass through untouched).
    """

    #: Recent-seq window size for duplicate suppression.
    DEDUP_WINDOW = 1024

    def __init__(self, channel: "Channel", address: str):
        self.channel = channel
        self.address = address
        self.inbox: Store = Store(channel.env)
        self._seen: Set[int] = set()
        self._seen_order: deque = deque()

    def send(self, message: Message) -> None:
        """Transmit ``message`` (fire and forget, like the testbed)."""
        if message.sender != self.address:
            raise ValueError(
                f"radio {self.address!r} cannot send on behalf of "
                f"{message.sender!r}"
            )
        self.channel.transmit(message)

    def accept(self, message: Message) -> bool:
        """Deliver into the inbox unless ``message.seq`` was already
        seen; returns False for a suppressed duplicate."""
        if message.seq in self._seen:
            return False
        self._seen.add(message.seq)
        self._seen_order.append(message.seq)
        if len(self._seen_order) > self.DEDUP_WINDOW:
            self._seen.discard(self._seen_order.popleft())
        self.inbox.put_nowait(message)
        return True

    def receive(self) -> Event:
        """DES event yielding the next delivered message."""
        return self.inbox.get()

    def pending(self) -> int:
        """Number of delivered-but-unread messages."""
        return len(self.inbox)

    def __repr__(self) -> str:
        return f"Radio({self.address!r})"


class Channel(Transport):
    """Broadcast medium with per-message delay and loss — the default
    in-process :class:`~repro.network.transport.Transport`.

    Parameters
    ----------
    env:
        DES environment.
    delay_model:
        One-way delay model (default: zero delay).
    loss_probability:
        Independent per-message loss probability in ``[0, 1)``.
    rng:
        Random generator for delay/loss draws.
    faults:
        Optional :class:`~repro.faults.FaultInjector`.  Consulted per
        transmission; owns its own RNG, so a null injector changes
        nothing about the channel's random sequence.
    obs:
        Optional :class:`~repro.obs.EventLog`.  When given, the channel
        emits ``net.send`` / ``net.deliver`` / ``net.drop`` records
        (tracing never touches the channel RNG, so a traced run stays
        bit-identical to an untraced one).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  When given (and
        enabled), the channel keeps ``net.sent`` / ``net.delivered`` /
        per-reason ``net.dropped`` counters and a ``net.inflight``
        gauge of messages currently in the air.  Like tracing, metrics
        never touch the channel RNG and never schedule a DES event.
    """

    def __init__(
        self,
        env: Environment,
        delay_model: Optional[DelayModel] = None,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        faults: Optional["FaultInjector"] = None,
        obs=None,
        metrics=None,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.env = env
        self.delay_model = delay_model if delay_model is not None else ConstantDelay(0.0)
        self.loss_probability = loss_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.faults = faults
        self.obs = obs if obs is not None else NULL_LOG
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        self._inflight = 0
        if self.metrics is not None:
            self._m_sent = self.metrics.counter("net.sent")
            self._m_delivered = self.metrics.counter("net.delivered")
            self._m_inflight = self.metrics.gauge("net.inflight")
            self._m_dropped: Dict[str, object] = {}
        self.stats = NetworkStats()
        self._radios: Dict[str, Radio] = {}

    def attach(self, address: str) -> Radio:
        """Create and register a radio under ``address``."""
        if address in self._radios:
            raise ValueError(f"address {address!r} already attached")
        radio = Radio(self, address)
        self._radios[address] = radio
        return radio

    def detach(self, address: str) -> None:
        """Remove a radio; in-flight messages to it are dropped and
        attributed to ``no_route`` in :attr:`NetworkStats.by_reason`."""
        self._radios.pop(address, None)

    def _emit_drop(self, message: Message, reason: str) -> None:
        if self.metrics is not None:
            counter = self._m_dropped.get(reason)
            if counter is None:
                counter = self._m_dropped.setdefault(
                    reason,
                    self.metrics.counter("net.dropped", labels={"reason": reason}),
                )
            counter.inc(1.0, self.env.now)
        if self.obs.enabled:
            self.obs.emit(
                "net.drop", self.env.now, message.sender,
                corr=getattr(message, "corr", 0),
                msg=type(message).__name__, reason=reason,
            )

    def transmit(self, message: Message) -> None:
        """Schedule delivery of ``message`` to its receiver."""
        self.stats.record_send(message)
        if self.metrics is not None:
            self._m_sent.inc(1.0, self.env.now)
        if self.obs.enabled:
            self.obs.emit(
                "net.send", self.env.now, message.sender,
                corr=getattr(message, "corr", 0),
                msg=type(message).__name__, to=message.receiver,
                size=message.size,
            )
        extra_delay = 0.0
        duplicate_delay = None
        if self.faults is not None:
            verdict = self.faults.on_transmit(message, self.env.now)
            if verdict.drop_reason is not None:
                self.stats.record_loss(verdict.drop_reason)
                self._emit_drop(message, verdict.drop_reason)
                return
            extra_delay = verdict.extra_delay
            duplicate_delay = verdict.duplicate_delay
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.stats.record_loss("channel")
            self._emit_drop(message, "channel")
            return
        delay = self.delay_model.sample(self.rng) + extra_delay
        self.env.process(self._deliver(message, delay))
        self._inflight += 1
        if duplicate_delay is not None:
            self.stats.record_duplicate_injected()
            self.env.process(
                self._deliver(message, delay + duplicate_delay, duplicate=True)
            )
            self._inflight += 1
        if self.metrics is not None:
            self._m_inflight.set(self._inflight, self.env.now)

    def _deliver(self, message: Message, delay: float, duplicate: bool = False):
        yield self.env.timeout(delay)
        self._inflight -= 1
        if self.metrics is not None:
            self._m_inflight.set(self._inflight, self.env.now)
        radio = self._radios.get(message.receiver)
        if radio is None:
            self.stats.record_loss("no_route")
            self._emit_drop(message, "no_route")
            return
        if radio.accept(message):
            self.stats.record_delivery()
            if self.metrics is not None:
                self._m_delivered.inc(1.0, self.env.now)
            if self.obs.enabled:
                self.obs.emit(
                    "net.deliver", self.env.now, message.receiver,
                    corr=getattr(message, "corr", 0),
                    msg=type(message).__name__, sender=message.sender,
                    duplicate=duplicate,
                )
        else:
            self.stats.record_duplicate_dropped(message)
            self._emit_drop(message, "duplicate")
