"""Shared wireless channel and per-node radios.

The :class:`Channel` is the medium; each node owns a :class:`Radio`
registered under a unique address.  ``radio.send(msg)`` hands the message
to the channel, which delivers it into the destination radio's inbox
after a delay drawn from the channel's :class:`~repro.network.delay.DelayModel`
(unless the message is lost).  Receiving is a blocking DES ``get`` on the
inbox store.

The channel also keeps :class:`NetworkStats` — message and byte counters
per message type — which the Ch 7.2 overhead comparison reads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.des import Environment, Event, Store
from repro.network.delay import ConstantDelay, DelayModel
from repro.network.messages import Message

__all__ = ["Channel", "NetworkStats", "Radio"]


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one channel."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    bytes_sent: int = 0
    by_type: Counter = field(default_factory=Counter)

    def record_send(self, message: Message) -> None:
        self.sent += 1
        self.bytes_sent += message.size
        self.by_type[type(message).__name__] += 1

    def record_delivery(self) -> None:
        self.delivered += 1

    def record_loss(self) -> None:
        self.lost += 1


class Radio:
    """A network endpoint with an address and a FIFO inbox."""

    def __init__(self, channel: "Channel", address: str):
        self.channel = channel
        self.address = address
        self.inbox: Store = Store(channel.env)

    def send(self, message: Message) -> None:
        """Transmit ``message`` (fire and forget, like the testbed)."""
        if message.sender != self.address:
            raise ValueError(
                f"radio {self.address!r} cannot send on behalf of "
                f"{message.sender!r}"
            )
        self.channel.transmit(message)

    def receive(self) -> Event:
        """DES event yielding the next delivered message."""
        return self.inbox.get()

    def pending(self) -> int:
        """Number of delivered-but-unread messages."""
        return len(self.inbox)

    def __repr__(self) -> str:
        return f"Radio({self.address!r})"


class Channel:
    """Broadcast medium with per-message delay and loss.

    Parameters
    ----------
    env:
        DES environment.
    delay_model:
        One-way delay model (default: zero delay).
    loss_probability:
        Independent per-message loss probability in ``[0, 1)``.
    rng:
        Random generator for delay/loss draws.
    """

    def __init__(
        self,
        env: Environment,
        delay_model: Optional[DelayModel] = None,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.env = env
        self.delay_model = delay_model if delay_model is not None else ConstantDelay(0.0)
        self.loss_probability = loss_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.stats = NetworkStats()
        self._radios: Dict[str, Radio] = {}

    def attach(self, address: str) -> Radio:
        """Create and register a radio under ``address``."""
        if address in self._radios:
            raise ValueError(f"address {address!r} already attached")
        radio = Radio(self, address)
        self._radios[address] = radio
        return radio

    def detach(self, address: str) -> None:
        """Remove a radio; in-flight messages to it are dropped."""
        self._radios.pop(address, None)

    def transmit(self, message: Message) -> None:
        """Schedule delivery of ``message`` to its receiver."""
        self.stats.record_send(message)
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.stats.record_loss()
            return
        delay = self.delay_model.sample(self.rng)
        self.env.process(self._deliver(message, delay))

    def _deliver(self, message: Message, delay: float):
        yield self.env.timeout(delay)
        radio = self._radios.get(message.receiver)
        if radio is None:
            self.stats.record_loss()
            return
        radio.inbox.put_nowait(message)
        self.stats.record_delivery()
