"""Versioned wire codec for the protocol messages.

The serve mode (``repro.serve``) ships the exact
:mod:`repro.network.messages` dataclasses over TCP.  Frames are::

    [4-byte big-endian payload length][payload]
    payload = [magic byte][version byte][compact JSON body]

The JSON body carries the message kind, addressing, ``seq``/``corr``
and the per-type payload fields (``vehicle_info`` as a nested dict).
Every malformed input — truncated frame, bad magic, unknown version,
garbage JSON, unknown kind, missing/extra/badly-typed fields —
raises :class:`WireError` (never an arbitrary exception), so server
loops can treat one ``except WireError`` as the complete hardening
boundary.

Decoding rebuilds messages with ``cls.__new__`` + ``setattr`` instead
of calling the dataclass constructor: constructing normally would
consume the global message sequence counter, and decode must restore
the *sender's* ``seq`` verbatim.  That property is what makes
:class:`CodecChannel` (every transmission round-tripped through the
codec) bit-identical to the stock :class:`~repro.network.channel.Channel`.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.network import messages as _messages
from repro.network.channel import Channel
from repro.network.messages import Message

__all__ = [
    "CodecChannel",
    "FrameAssembler",
    "MAX_FRAME",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireError",
    "codec_transport",
    "decode_message",
    "encode_frame",
    "encode_message",
]

#: First payload byte; rejects frames from non-repro peers early.
WIRE_MAGIC = 0xC5
#: Wire format version; bumped on any incompatible change.
WIRE_VERSION = 1
#: Upper bound on a single payload — anything larger is an attack or a
#: corrupted length prefix, not a protocol message.
MAX_FRAME = 1 << 20

_HEADER = struct.Struct(">I")


class WireError(Exception):
    """Typed decode/encode failure: the frame is not a valid message."""


#: Message registry: wire ``kind`` -> dataclass.
_TYPES: Dict[str, Type[Message]] = {
    name: getattr(_messages, name)
    for name in _messages.__all__
    if name != "Message"
}

_ADDRESSING = ("sender", "receiver", "seq", "corr")

#: Per-class payload field specs: (name, kind) where kind is one of
#: "bool" / "int" / "float" / "vinfo".  Inferred once from the
#: dataclass defaults so new message types pick up codec support
#: automatically.
_SPEC_CACHE: Dict[Type[Message], Tuple[Tuple[str, str], ...]] = {}


def _field_specs(cls: Type[Message]) -> Tuple[Tuple[str, str], ...]:
    cached = _SPEC_CACHE.get(cls)
    if cached is not None:
        return cached
    specs = []
    for f in dataclasses.fields(cls):
        if f.name in _ADDRESSING:
            continue
        if f.name == "vehicle_info":
            specs.append((f.name, "vinfo"))
        elif isinstance(f.default, bool):
            specs.append((f.name, "bool"))
        elif isinstance(f.default, int):
            specs.append((f.name, "int"))
        elif isinstance(f.default, float):
            specs.append((f.name, "float"))
        else:  # pragma: no cover - no such field exists today
            raise WireError(
                f"{cls.__name__}.{f.name} has no wire representation"
            )
    result = tuple(specs)
    _SPEC_CACHE[cls] = result
    return result


def _encode_vehicle_info(info: Any) -> Optional[dict]:
    if info is None:
        return None
    try:
        spec = info.spec
        movement = info.movement
        return {
            "vehicle_id": int(info.vehicle_id),
            "buffer": float(info.buffer),
            "spec": {
                "length": float(spec.length),
                "width": float(spec.width),
                "a_max": float(spec.a_max),
                "d_max": float(spec.d_max),
                "v_max": float(spec.v_max),
                "wheelbase": float(spec.wheelbase),
            },
            "movement": {
                "entry": movement.entry.value,
                "turn": movement.turn.value,
            },
        }
    except (AttributeError, TypeError, ValueError) as exc:
        raise WireError(f"unencodable vehicle_info: {exc}") from exc


def _decode_vehicle_info(payload: Any) -> Any:
    if payload is None:
        return None
    # network is layer 1; vehicle/geometry classes are imported lazily
    # (the sanctioned escape hatch in tools/check_layers.py).
    from repro.geometry.layout import Approach, Movement, Turn
    from repro.vehicle.spec import VehicleInfo, VehicleSpec

    if not isinstance(payload, dict):
        raise WireError("vehicle_info must be null or an object")
    try:
        spec_d = payload["spec"]
        move_d = payload["movement"]
        spec = VehicleSpec(
            length=float(spec_d["length"]),
            width=float(spec_d["width"]),
            a_max=float(spec_d["a_max"]),
            d_max=float(spec_d["d_max"]),
            v_max=float(spec_d["v_max"]),
            wheelbase=float(spec_d["wheelbase"]),
        )
        movement = Movement(
            entry=Approach(move_d["entry"]),
            turn=Turn(move_d["turn"]),
        )
        return VehicleInfo(
            vehicle_id=int(payload["vehicle_id"]),
            spec=spec,
            movement=movement,
            buffer=float(payload["buffer"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad vehicle_info: {exc}") from exc


def encode_message(message: Message) -> bytes:
    """Serialise ``message`` to a wire payload (no length prefix)."""
    cls = type(message)
    if _TYPES.get(cls.__name__) is not cls:
        raise WireError(f"not a wire message type: {cls!r}")
    fields: Dict[str, Any] = {}
    for name, kind in _field_specs(cls):
        value = getattr(message, name)
        fields[name] = _encode_vehicle_info(value) if kind == "vinfo" else value
    body = {
        "kind": cls.__name__,
        "sender": message.sender,
        "receiver": message.receiver,
        "seq": message.seq,
        "corr": message.corr,
        "fields": fields,
    }
    try:
        text = json.dumps(
            body, allow_nan=False, separators=(",", ":"), sort_keys=True
        )
    except (TypeError, ValueError) as exc:
        raise WireError(f"unencodable message: {exc}") from exc
    return bytes((WIRE_MAGIC, WIRE_VERSION)) + text.encode("utf-8")


def _require(condition: bool, note: str) -> None:
    if not condition:
        raise WireError(note)


def _coerce(name: str, kind: str, value: Any) -> Any:
    if kind == "bool":
        _require(isinstance(value, bool), f"field {name!r} must be a bool")
        return value
    if kind == "int":
        _require(
            isinstance(value, int) and not isinstance(value, bool),
            f"field {name!r} must be an int",
        )
        return value
    if kind == "float":
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"field {name!r} must be a number",
        )
        return float(value)
    return _decode_vehicle_info(value)


def decode_message(payload: bytes) -> Message:
    """Parse a wire payload back into its message dataclass.

    Raises :class:`WireError` on any malformed input.  The returned
    object carries the sender's ``seq``/``corr`` verbatim (the global
    sequence counter is not consumed).
    """
    _require(isinstance(payload, (bytes, bytearray)), "payload must be bytes")
    _require(len(payload) >= 3, "payload truncated")
    _require(payload[0] == WIRE_MAGIC, f"bad magic byte 0x{payload[0]:02x}")
    _require(
        payload[1] == WIRE_VERSION,
        f"unsupported wire version {payload[1]} (speaking {WIRE_VERSION})",
    )
    try:
        body = json.loads(bytes(payload[2:]).decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(f"bad JSON body: {exc}") from exc
    _require(isinstance(body, dict), "body must be an object")
    kind = body.get("kind")
    cls = _TYPES.get(kind) if isinstance(kind, str) else None
    _require(cls is not None, f"unknown message kind {kind!r}")
    _require(
        set(body) == {"kind", "sender", "receiver", "seq", "corr", "fields"},
        "bad body keys",
    )
    _require(
        isinstance(body["sender"], str) and isinstance(body["receiver"], str),
        "sender/receiver must be strings",
    )
    for name in ("seq", "corr"):
        _require(
            isinstance(body[name], int) and not isinstance(body[name], bool),
            f"{name} must be an int",
        )
    raw_fields = body["fields"]
    _require(isinstance(raw_fields, dict), "fields must be an object")
    specs = _field_specs(cls)
    _require(
        set(raw_fields) == {name for name, _ in specs},
        f"bad field set for {cls.__name__}",
    )
    # __new__ + setattr: does not consume the global seq counter.
    message = cls.__new__(cls)
    message.sender = body["sender"]
    message.receiver = body["receiver"]
    message.seq = body["seq"]
    message.corr = body["corr"]
    for name, field_kind in specs:
        setattr(message, name, _coerce(name, field_kind, raw_fields[name]))
    return message


def encode_frame(message: Message) -> bytes:
    """Length-prefixed frame ready to write to a stream."""
    payload = encode_message(message)
    if len(payload) > MAX_FRAME:
        raise WireError(f"payload of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(payload)) + payload


class FrameAssembler:
    """Incremental splitter of a byte stream into wire payloads.

    Feed arbitrary chunks; complete payloads come back in order.  A
    declared length outside ``(0, MAX_FRAME]`` raises :class:`WireError`
    immediately — the stream is unrecoverable past a corrupt prefix.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer.extend(data)
        payloads: List[bytes] = []
        while len(self._buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length == 0 or length > MAX_FRAME:
                raise WireError(f"frame length {length} out of bounds")
            if len(self._buffer) < _HEADER.size + length:
                break
            end = _HEADER.size + length
            payloads.append(bytes(self._buffer[_HEADER.size:end]))
            del self._buffer[:end]
        return payloads

    def pending(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer)


class CodecChannel(Channel):
    """A :class:`Channel` that encode/decodes every transmission.

    The in-process equivalence harness: if the codec is lossless, a
    world running on this transport is bit-identical to the stock
    channel (same RNG draws, same stats, same delivered values).
    """

    def transmit(self, message: Message) -> None:
        super().transmit(decode_message(encode_message(message)))


def codec_transport(
    env,
    delay_model=None,
    loss_probability: float = 0.0,
    rng=None,
    faults=None,
    obs=None,
    metrics=None,
) -> CodecChannel:
    """Factory with the :func:`~repro.network.transport.default_transport`
    signature, for :class:`~repro.sim.world.World`'s ``transport_factory``
    seam."""
    return CodecChannel(
        env,
        delay_model=delay_model,
        loss_probability=loss_probability,
        rng=rng,
        faults=faults,
        obs=obs,
        metrics=metrics,
    )
