"""Vehicle kinematics: 1-D motion profiles and the 2-D bicycle model.

The intersection managers reason about vehicles longitudinally — a
vehicle on an approach lane is a point moving along a 1-D coordinate
with bounded acceleration.  :mod:`repro.kinematics.profiles` provides
piecewise-constant-acceleration :class:`MotionProfile` objects with
exact (closed-form) position/velocity evaluation and inversion.

:mod:`repro.kinematics.arrival` implements the paper's Ch 6 equations:
the earliest time of arrival ``EToA`` reachable under max acceleration,
its latest-arrival dual, and :func:`plan_arrival`, which constructs the
trajectory the IM commands (cruise-to-line, or stop-and-go when the
assigned slot is far in the future).

:mod:`repro.kinematics.bicycle` integrates the paper's Eq 7.1 kinematic
bicycle model with RK4 plus a pure-pursuit path tracker; the Matlab
simulators used the same equations.

:mod:`repro.kinematics.batch` evaluates the closed-form planners over
whole cohorts as numpy arrays, elementwise bit-identical to the scalar
solvers (NaN stands in for ``None``).
"""

from repro.kinematics.arrival import (
    ArrivalPlan,
    earliest_arrival_time,
    latest_arrival_time,
    plan_arrival,
    solve_cruise_velocity,
)
from repro.kinematics.batch import (
    earliest_arrival_time_batch,
    latest_arrival_time_batch,
    solve_cruise_velocity_batch,
    two_phase_time_batch,
)
from repro.kinematics.bicycle import BicycleModel, BicycleState, PurePursuitTracker
from repro.kinematics.profiles import (
    MotionProfile,
    ProfileBuilder,
    Segment,
    brake_distance,
    brake_time,
)

__all__ = [
    "ArrivalPlan",
    "BicycleModel",
    "BicycleState",
    "MotionProfile",
    "ProfileBuilder",
    "PurePursuitTracker",
    "Segment",
    "brake_distance",
    "brake_time",
    "earliest_arrival_time",
    "earliest_arrival_time_batch",
    "latest_arrival_time",
    "latest_arrival_time_batch",
    "plan_arrival",
    "solve_cruise_velocity",
    "solve_cruise_velocity_batch",
    "two_phase_time_batch",
]
